//! Hash-consed bitvector terms.
//!
//! Terms are created through a [`TermPool`] which interns structurally equal
//! terms so that a [`TermId`] is a cheap, copyable handle and structural
//! equality is pointer equality. The pool also owns the symbolic-variable
//! table and the registry of *opaque functions* (checksums, MACs, digests):
//! functions that the solver treats as black boxes until all arguments are
//! concrete, at which point a registered Rust evaluator is invoked — this is
//! how Achilles models `CRC(msg)` and PBFT authenticators.

use std::collections::HashMap;
use std::fmt;

use crate::width::Width;

/// Handle to an interned term. Obtained from [`TermPool`] constructors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Handle to a symbolic variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl VarId {
    /// Raw index of this variable in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a registered opaque function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunId(pub(crate) u32);

impl fmt::Debug for FunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// The operator of a term node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Bitvector constant (value truncated to the node width).
    Const(u64),
    /// Symbolic variable.
    Var(VarId),
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Two's-complement negation.
    Neg,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,
    /// Bitwise not.
    BitNot,
    /// Left shift by a constant embedded in the second argument.
    Shl,
    /// Logical right shift.
    Lshr,
    /// Zero-extension to the node width.
    ZExt,
    /// Sign-extension to the node width.
    SExt,
    /// Bit extraction: the node width lowest bits starting at bit `lo`.
    Extract {
        /// Lowest extracted bit of the argument.
        lo: u8,
    },
    /// Concatenation: first argument forms the high bits.
    Concat,
    /// Equality (boolean result).
    Eq,
    /// Unsigned less-than (boolean result).
    Ult,
    /// Unsigned less-or-equal (boolean result).
    Ule,
    /// Boolean negation.
    Not,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// If-then-else: `args[0]` boolean, branches of node width.
    Ite,
    /// Application of an opaque function.
    Fun(FunId),
}

/// An interned term node: operator, arguments, and result width.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TermData {
    /// Operator.
    pub op: Op,
    /// Argument term ids (empty for leaves).
    pub args: Vec<TermId>,
    /// Result width.
    pub width: Width,
}

/// Metadata about a symbolic variable.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// Human-readable name (e.g. `msg.address`); used in reports.
    pub name: String,
    /// Width of the variable.
    pub width: Width,
}

/// Concrete evaluator of an opaque function.
///
/// Stored behind an `Arc` so that pools can be cloned cheaply — parallel
/// exploration hands every worker a snapshot of the base pool.
pub type FunEval = std::sync::Arc<dyn Fn(&[u64]) -> u64 + Send + Sync>;

/// A registered opaque function: name plus a concrete Rust evaluator.
#[derive(Clone)]
pub struct FunInfo {
    /// Human-readable name (e.g. `crc16`).
    pub name: String,
    /// Result width of every application.
    pub width: Width,
    eval: FunEval,
}

impl fmt::Debug for FunInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunInfo")
            .field("name", &self.name)
            .field("width", &self.width)
            .finish_non_exhaustive()
    }
}

/// Interner and factory for terms, variables and opaque functions.
///
/// All constructors perform light *local* simplification (constant folding,
/// identity elimination) so that trivially true/false conditions never reach
/// the search engine.
///
/// # Examples
///
/// ```
/// use achilles_solver::{TermPool, Width};
///
/// let mut pool = TermPool::new();
/// let x = pool.fresh_var("x", Width::W8);
/// let xv = pool.var(x);
/// let five = pool.constant(5, Width::W8);
/// let sum = pool.add(xv, five);
/// assert_eq!(pool.width(sum), Width::W8);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TermPool {
    nodes: Vec<TermData>,
    /// Structural fingerprint per node (parallel to `nodes`): equal across
    /// pools for structurally equal terms, regardless of `TermId` numbering.
    fps: Vec<u128>,
    intern: HashMap<TermData, TermId>,
    vars: Vec<VarInfo>,
    /// Identity fingerprint per variable (parallel to `vars`).
    var_fps: Vec<u128>,
    /// Reverse map used when importing terms or models from another pool.
    var_fp_index: HashMap<u128, VarId>,
    funs: Vec<FunInfo>,
    /// Distinguishes *untagged* variables created after a [`TermPool::fork`]
    /// so independent workers never alias each other's ad-hoc variables.
    fp_nonce: u64,
    true_id: Option<TermId>,
    false_id: Option<TermId>,
}

/// 128-bit mixing for structural fingerprints (two decoupled 64-bit lanes of
/// splitmix-style avalanche; not cryptographic, collision odds are ~2^-64 per
/// pair even across millions of terms).
fn fp_mix(acc: u128, word: u64) -> u128 {
    const M_LO: u64 = 0xBF58_476D_1CE4_E5B9;
    const M_HI: u64 = 0x94D0_49BB_1331_11EB;
    let lo = (acc as u64) ^ word;
    let hi = ((acc >> 64) as u64) ^ word.rotate_left(32);
    let mut lo = lo.wrapping_mul(M_LO);
    lo ^= lo >> 29;
    let mut hi = hi.wrapping_mul(M_HI);
    hi ^= hi >> 31;
    ((hi as u128) << 64) | lo as u128
}

fn fp_mix128(acc: u128, word: u128) -> u128 {
    fp_mix(fp_mix(acc, word as u64), (word >> 64) as u64)
}

fn fp_str(acc: u128, s: &str) -> u128 {
    let mut h = fp_mix(acc, s.len() as u64);
    for chunk in s.as_bytes().chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = fp_mix(h, u64::from_le_bytes(w));
    }
    h
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> TermPool {
        TermPool::default()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool has no terms.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    fn mk(&mut self, data: TermData) -> TermId {
        if let Some(&id) = self.intern.get(&data) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        let fp = self.node_fp(&data);
        self.nodes.push(data.clone());
        self.fps.push(fp);
        self.intern.insert(data, id);
        id
    }

    /// Structural fingerprint of a node: a pure function of the operator, the
    /// operand fingerprints, and the width — stable across pools.
    fn node_fp(&self, data: &TermData) -> u128 {
        let mut h = fp_mix(0x5EED_FACE_u64 as u128, u64::from(data.width.bits()));
        h = match data.op {
            Op::Const(v) => fp_mix(fp_mix(h, 1), v),
            Op::Var(v) => fp_mix128(fp_mix(h, 2), self.var_fps[v.0 as usize]),
            Op::Add => fp_mix(h, 3),
            Op::Sub => fp_mix(h, 4),
            Op::Mul => fp_mix(h, 5),
            Op::Neg => fp_mix(h, 6),
            Op::BitAnd => fp_mix(h, 7),
            Op::BitOr => fp_mix(h, 8),
            Op::BitXor => fp_mix(h, 9),
            Op::BitNot => fp_mix(h, 10),
            Op::Shl => fp_mix(h, 11),
            Op::Lshr => fp_mix(h, 12),
            Op::ZExt => fp_mix(h, 13),
            Op::SExt => fp_mix(h, 14),
            Op::Extract { lo } => fp_mix(fp_mix(h, 15), u64::from(lo)),
            Op::Concat => fp_mix(h, 16),
            Op::Eq => fp_mix(h, 17),
            Op::Ult => fp_mix(h, 18),
            Op::Ule => fp_mix(h, 19),
            Op::Not => fp_mix(h, 20),
            Op::And => fp_mix(h, 21),
            Op::Or => fp_mix(h, 22),
            Op::Ite => fp_mix(h, 23),
            Op::Fun(f) => {
                let info = &self.funs[f.0 as usize];
                fp_str(fp_mix(fp_mix(h, 24), u64::from(f.0)), &info.name)
            }
        };
        for &a in &data.args {
            h = fp_mix128(h, self.fps[a.0 as usize]);
        }
        h
    }

    /// Structural fingerprint of a term.
    ///
    /// Two structurally equal terms have equal fingerprints even when they
    /// live in different pools (e.g. per-worker snapshots of a base pool), as
    /// long as their variables share identity fingerprints — which holds for
    /// variables created before a [`TermPool::fork`] and for tagged variables
    /// ([`TermPool::fresh_var_tagged`]) with equal tags.
    pub fn term_fp(&self, t: TermId) -> u128 {
        self.fps[t.0 as usize]
    }

    /// Identity fingerprint of a variable.
    pub fn var_fp(&self, v: VarId) -> u128 {
        self.var_fps[v.0 as usize]
    }

    /// Looks up a variable by identity fingerprint.
    pub fn var_by_fp(&self, fp: u128) -> Option<VarId> {
        self.var_fp_index.get(&fp).copied()
    }

    /// Snapshots this pool for an independent worker.
    ///
    /// The clone shares all existing `TermId`s/`VarId`s with the base pool.
    /// `nonce` must be unique per worker: it salts the fingerprints of
    /// *untagged* variables created after the fork so that ad-hoc variables
    /// from different workers can never alias in shared caches.
    pub fn fork(&self, nonce: u64) -> TermPool {
        let mut snapshot = self.clone();
        snapshot.fp_nonce = nonce;
        snapshot
    }

    /// Returns the node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this pool.
    pub fn node(&self, id: TermId) -> &TermData {
        &self.nodes[id.0 as usize]
    }

    /// Width of a term.
    pub fn width(&self, id: TermId) -> Width {
        self.node(id).width
    }

    /// Returns `Some(value)` if the term is a constant.
    pub fn as_const(&self, id: TermId) -> Option<u64> {
        match self.node(id).op {
            Op::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `Some(var)` if the term is a bare variable.
    pub fn as_var(&self, id: TermId) -> Option<VarId> {
        match self.node(id).op {
            Op::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Creates a fresh variable with the given name hint.
    ///
    /// The variable's identity fingerprint is derived from its creation index
    /// and the pool's fork nonce, so it is stable for variables created
    /// before a [`TermPool::fork`] and worker-unique afterwards. Variables
    /// that must keep a *shared* identity across independently forked pools
    /// should use [`TermPool::fresh_var_tagged`] instead.
    pub fn fresh_var(&mut self, name: &str, width: Width) -> VarId {
        let h = fp_mix(fp_mix(0xF8E5_u128, self.fp_nonce), self.vars.len() as u64);
        let fp = fp_str(fp_mix(h, u64::from(width.bits())), name);
        self.push_var(name, width, fp)
    }

    /// Creates a fresh variable whose identity fingerprint depends only on
    /// `tag` and `width`.
    ///
    /// This is the hook parallel exploration uses: re-executed programs
    /// intern their symbolic inputs by a deterministic key (call index, name,
    /// width), and passing a hash of that key as `tag` makes "the same"
    /// variable created independently in different worker pools carry the
    /// same fingerprint — which in turn makes structurally equal constraints
    /// shareable through the cross-worker solver cache.
    pub fn fresh_var_tagged(&mut self, name: &str, width: Width, tag: u64) -> VarId {
        let fp = fp_mix(
            fp_mix(fp_mix(0x7A66_u128, tag), u64::from(width.bits())),
            tag.rotate_left(17),
        );
        self.push_var(name, width, fp)
    }

    fn push_var(&mut self, name: &str, width: Width, fp: u128) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.to_string(),
            width,
        });
        self.var_fps.push(fp);
        self.var_fp_index.entry(fp).or_insert(id);
        id
    }

    /// Metadata for a variable.
    pub fn var_info(&self, v: VarId) -> &VarInfo {
        &self.vars[v.0 as usize]
    }

    /// Registers an opaque function evaluated by `eval` once all arguments
    /// are concrete.
    pub fn register_fun(
        &mut self,
        name: &str,
        width: Width,
        eval: impl Fn(&[u64]) -> u64 + Send + Sync + 'static,
    ) -> FunId {
        let id = FunId(self.funs.len() as u32);
        self.funs.push(FunInfo {
            name: name.to_string(),
            width,
            eval: std::sync::Arc::new(eval),
        });
        id
    }

    /// Metadata for an opaque function.
    pub fn fun_info(&self, f: FunId) -> &FunInfo {
        &self.funs[f.0 as usize]
    }

    /// Evaluates a registered opaque function on concrete arguments.
    pub fn eval_fun(&self, f: FunId, args: &[u64]) -> u64 {
        let info = &self.funs[f.0 as usize];
        info.width.truncate((info.eval)(args))
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// A bitvector constant, truncated to `width`.
    pub fn constant(&mut self, value: u64, width: Width) -> TermId {
        let value = width.truncate(value);
        self.mk(TermData {
            op: Op::Const(value),
            args: vec![],
            width,
        })
    }

    /// A signed constant, encoded two's complement at `width`.
    pub fn constant_signed(&mut self, value: i64, width: Width) -> TermId {
        self.constant(width.from_signed(value), width)
    }

    /// The boolean constant `true`.
    pub fn tt(&mut self) -> TermId {
        if let Some(id) = self.true_id {
            return id;
        }
        let id = self.constant(1, Width::BOOL);
        self.true_id = Some(id);
        id
    }

    /// The boolean constant `false`.
    pub fn ff(&mut self) -> TermId {
        if let Some(id) = self.false_id {
            return id;
        }
        let id = self.constant(0, Width::BOOL);
        self.false_id = Some(id);
        id
    }

    /// A boolean constant.
    pub fn boolean(&mut self, b: bool) -> TermId {
        if b {
            self.tt()
        } else {
            self.ff()
        }
    }

    /// The term for variable `v`.
    pub fn var(&mut self, v: VarId) -> TermId {
        let width = self.vars[v.0 as usize].width;
        self.mk(TermData {
            op: Op::Var(v),
            args: vec![],
            width,
        })
    }

    /// Creates a fresh variable and returns its term in one step.
    pub fn fresh(&mut self, name: &str, width: Width) -> TermId {
        let v = self.fresh_var(name, width);
        self.var(v)
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    fn binop_width(&self, a: TermId, b: TermId, what: &str) -> Width {
        let (wa, wb) = (self.width(a), self.width(b));
        assert_eq!(wa, wb, "{what}: width mismatch {wa:?} vs {wb:?}");
        wa
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b, "add");
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(x.wrapping_add(y), w),
            (Some(0), None) => b,
            (None, Some(0)) => a,
            _ => self.mk(TermData {
                op: Op::Add,
                args: vec![a, b],
                width: w,
            }),
        }
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b, "sub");
        if a == b {
            return self.constant(0, w);
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(x.wrapping_sub(y), w),
            (None, Some(0)) => a,
            _ => self.mk(TermData {
                op: Op::Sub,
                args: vec![a, b],
                width: w,
            }),
        }
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b, "mul");
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(x.wrapping_mul(y), w),
            (Some(1), None) => b,
            (None, Some(1)) => a,
            (Some(0), None) | (None, Some(0)) => self.constant(0, w),
            _ => self.mk(TermData {
                op: Op::Mul,
                args: vec![a, b],
                width: w,
            }),
        }
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        match self.as_const(a) {
            Some(x) => self.constant(x.wrapping_neg(), w),
            None => self.mk(TermData {
                op: Op::Neg,
                args: vec![a],
                width: w,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Bitwise
    // ------------------------------------------------------------------

    /// Bitwise and.
    pub fn bit_and(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b, "bit_and");
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(x & y, w),
            _ => self.mk(TermData {
                op: Op::BitAnd,
                args: vec![a, b],
                width: w,
            }),
        }
    }

    /// Bitwise or.
    pub fn bit_or(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b, "bit_or");
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(x | y, w),
            _ => self.mk(TermData {
                op: Op::BitOr,
                args: vec![a, b],
                width: w,
            }),
        }
    }

    /// Bitwise xor.
    pub fn bit_xor(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b, "bit_xor");
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(x ^ y, w),
            _ => self.mk(TermData {
                op: Op::BitXor,
                args: vec![a, b],
                width: w,
            }),
        }
    }

    /// Bitwise not.
    pub fn bit_not(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        match self.as_const(a) {
            Some(x) => self.constant(!x, w),
            None => self.mk(TermData {
                op: Op::BitNot,
                args: vec![a],
                width: w,
            }),
        }
    }

    /// Left shift.
    pub fn shl(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b, "shl");
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => {
                let v = if y >= 64 { 0 } else { x << y };
                self.constant(v, w)
            }
            _ => self.mk(TermData {
                op: Op::Shl,
                args: vec![a, b],
                width: w,
            }),
        }
    }

    /// Logical right shift.
    pub fn lshr(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b, "lshr");
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => {
                let v = if y >= 64 { 0 } else { x >> y };
                self.constant(v, w)
            }
            _ => self.mk(TermData {
                op: Op::Lshr,
                args: vec![a, b],
                width: w,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Width changes
    // ------------------------------------------------------------------

    /// Zero-extends to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is narrower than the argument.
    pub fn zext(&mut self, a: TermId, width: Width) -> TermId {
        let wa = self.width(a);
        assert!(width >= wa, "zext must widen ({wa:?} -> {width:?})");
        if width == wa {
            return a;
        }
        match self.as_const(a) {
            Some(x) => self.constant(x, width),
            None => self.mk(TermData {
                op: Op::ZExt,
                args: vec![a],
                width,
            }),
        }
    }

    /// Sign-extends to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is narrower than the argument.
    pub fn sext(&mut self, a: TermId, width: Width) -> TermId {
        let wa = self.width(a);
        assert!(width >= wa, "sext must widen ({wa:?} -> {width:?})");
        if width == wa {
            return a;
        }
        match self.as_const(a) {
            Some(x) => {
                let s = wa.to_signed(x);
                self.constant(width.from_signed(s), width)
            }
            None => self.mk(TermData {
                op: Op::SExt,
                args: vec![a],
                width,
            }),
        }
    }

    /// Extracts `width` bits starting at bit `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo + width` exceeds the argument width.
    pub fn extract(&mut self, a: TermId, lo: u8, width: Width) -> TermId {
        let wa = self.width(a);
        assert!(
            u32::from(lo) + width.bits() <= wa.bits(),
            "extract [{lo}..{}] out of range for {wa:?}",
            u32::from(lo) + width.bits()
        );
        if lo == 0 && width == wa {
            return a;
        }
        match self.as_const(a) {
            Some(x) => self.constant(x >> lo, width),
            None => self.mk(TermData {
                op: Op::Extract { lo },
                args: vec![a],
                width,
            }),
        }
    }

    /// Concatenates `hi` (high bits) and `lo` (low bits).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64 bits.
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let (wh, wl) = (self.width(hi), self.width(lo));
        let bits = wh.bits() + wl.bits();
        assert!(bits <= 64, "concat width {bits} exceeds 64");
        let w = Width::new(bits as u8);
        match (self.as_const(hi), self.as_const(lo)) {
            (Some(h), Some(l)) => self.constant((h << wl.bits()) | l, w),
            _ => self.mk(TermData {
                op: Op::Concat,
                args: vec![hi, lo],
                width: w,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Comparisons (boolean results)
    // ------------------------------------------------------------------

    /// Equality.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.binop_width(a, b, "eq");
        if a == b {
            return self.tt();
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.boolean(x == y),
            _ => {
                // Canonical argument order improves interning hits.
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.mk(TermData {
                    op: Op::Eq,
                    args: vec![a, b],
                    width: Width::BOOL,
                })
            }
        }
    }

    /// Disequality (`not eq`).
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than.
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.binop_width(a, b, "ult");
        if a == b {
            return self.ff();
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.boolean(x < y),
            _ => self.mk(TermData {
                op: Op::Ult,
                args: vec![a, b],
                width: Width::BOOL,
            }),
        }
    }

    /// Unsigned less-or-equal.
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        self.binop_width(a, b, "ule");
        if a == b {
            return self.tt();
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.boolean(x <= y),
            _ => self.mk(TermData {
                op: Op::Ule,
                args: vec![a, b],
                width: Width::BOOL,
            }),
        }
    }

    /// Signed less-than, lowered to unsigned via the sign-bias trick:
    /// `a <s b  ⟺  (a + 2^(w-1)) mod 2^w  <u  (b + 2^(w-1)) mod 2^w`.
    ///
    /// The bias is expressed as a wrapping *addition* (equivalent to flipping
    /// the sign bit) so that the result stays in the affine fragment the
    /// propagator understands.
    pub fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b, "slt");
        let bias = self.constant(w.sign_bit(), w);
        let ab = self.add(a, bias);
        let bb = self.add(b, bias);
        self.ult(ab, bb)
    }

    /// Signed less-or-equal (sign-bias lowering, see [`TermPool::slt`]).
    pub fn sle(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b, "sle");
        let bias = self.constant(w.sign_bit(), w);
        let ab = self.add(a, bias);
        let bb = self.add(b, bias);
        self.ule(ab, bb)
    }

    /// Unsigned greater-than.
    pub fn ugt(&mut self, a: TermId, b: TermId) -> TermId {
        self.ult(b, a)
    }

    /// Unsigned greater-or-equal.
    pub fn uge(&mut self, a: TermId, b: TermId) -> TermId {
        self.ule(b, a)
    }

    /// Signed greater-than.
    pub fn sgt(&mut self, a: TermId, b: TermId) -> TermId {
        self.slt(b, a)
    }

    /// Signed greater-or-equal.
    pub fn sge(&mut self, a: TermId, b: TermId) -> TermId {
        self.sle(b, a)
    }

    // ------------------------------------------------------------------
    // Boolean connectives
    // ------------------------------------------------------------------

    fn assert_bool(&self, t: TermId, what: &str) {
        assert_eq!(
            self.width(t),
            Width::BOOL,
            "{what}: operand must be boolean"
        );
    }

    /// Boolean negation (double negations collapse).
    pub fn not(&mut self, a: TermId) -> TermId {
        self.assert_bool(a, "not");
        match self.node(a).op {
            Op::Const(v) => self.boolean(v == 0),
            Op::Not => self.node(a).args[0],
            _ => self.mk(TermData {
                op: Op::Not,
                args: vec![a],
                width: Width::BOOL,
            }),
        }
    }

    /// Boolean conjunction.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        self.assert_bool(a, "and");
        self.assert_bool(b, "and");
        if a == b {
            return a;
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(0), _) | (_, Some(0)) => self.ff(),
            (Some(1), _) => b,
            (_, Some(1)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.mk(TermData {
                    op: Op::And,
                    args: vec![a, b],
                    width: Width::BOOL,
                })
            }
        }
    }

    /// Boolean disjunction.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        self.assert_bool(a, "or");
        self.assert_bool(b, "or");
        if a == b {
            return a;
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(1), _) | (_, Some(1)) => self.tt(),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.mk(TermData {
                    op: Op::Or,
                    args: vec![a, b],
                    width: Width::BOOL,
                })
            }
        }
    }

    /// Conjunction of many booleans (`true` when empty).
    pub fn and_all(&mut self, terms: impl IntoIterator<Item = TermId>) -> TermId {
        let mut acc = self.tt();
        for t in terms {
            acc = self.and(acc, t);
        }
        acc
    }

    /// Disjunction of many booleans (`false` when empty).
    pub fn or_all(&mut self, terms: impl IntoIterator<Item = TermId>) -> TermId {
        let mut acc = self.ff();
        for t in terms {
            acc = self.or(acc, t);
        }
        acc
    }

    /// If-then-else.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        self.assert_bool(cond, "ite");
        let w = self.binop_width(then, els, "ite");
        if then == els {
            return then;
        }
        match self.as_const(cond) {
            Some(1) => then,
            Some(0) => els,
            _ => self.mk(TermData {
                op: Op::Ite,
                args: vec![cond, then, els],
                width: w,
            }),
        }
    }

    /// Application of an opaque function.
    pub fn apply(&mut self, f: FunId, args: Vec<TermId>) -> TermId {
        let width = self.funs[f.0 as usize].width;
        // Fold when every argument is already concrete.
        let concrete: Option<Vec<u64>> = args.iter().map(|&a| self.as_const(a)).collect();
        if let Some(vals) = concrete {
            let v = self.eval_fun(f, &vals);
            return self.constant(v, width);
        }
        self.mk(TermData {
            op: Op::Fun(f),
            args,
            width,
        })
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    /// Evaluates `t` under the variable assignment `lookup`.
    ///
    /// Returns `None` if any required variable is unassigned.
    pub fn eval_with(&self, t: TermId, lookup: &dyn Fn(VarId) -> Option<u64>) -> Option<u64> {
        let node = self.node(t).clone();
        let w = node.width;
        let v = match node.op {
            Op::Const(v) => v,
            Op::Var(x) => lookup(x)?,
            Op::Add => {
                let (a, b) = self.eval2(&node, lookup)?;
                a.wrapping_add(b)
            }
            Op::Sub => {
                let (a, b) = self.eval2(&node, lookup)?;
                a.wrapping_sub(b)
            }
            Op::Mul => {
                let (a, b) = self.eval2(&node, lookup)?;
                a.wrapping_mul(b)
            }
            Op::Neg => self.eval_with(node.args[0], lookup)?.wrapping_neg(),
            Op::BitAnd => {
                let (a, b) = self.eval2(&node, lookup)?;
                a & b
            }
            Op::BitOr => {
                let (a, b) = self.eval2(&node, lookup)?;
                a | b
            }
            Op::BitXor => {
                let (a, b) = self.eval2(&node, lookup)?;
                a ^ b
            }
            Op::BitNot => !self.eval_with(node.args[0], lookup)?,
            Op::Shl => {
                let (a, b) = self.eval2(&node, lookup)?;
                if b >= 64 {
                    0
                } else {
                    a << b
                }
            }
            Op::Lshr => {
                let (a, b) = self.eval2(&node, lookup)?;
                if b >= 64 {
                    0
                } else {
                    a >> b
                }
            }
            Op::ZExt => self.eval_with(node.args[0], lookup)?,
            Op::SExt => {
                let inner = node.args[0];
                let wi = self.width(inner);
                let v = self.eval_with(inner, lookup)?;
                w.from_signed(wi.to_signed(v))
            }
            Op::Extract { lo } => self.eval_with(node.args[0], lookup)? >> lo,
            Op::Concat => {
                let hi = self.eval_with(node.args[0], lookup)?;
                let lo = self.eval_with(node.args[1], lookup)?;
                let wl = self.width(node.args[1]);
                (hi << wl.bits()) | lo
            }
            Op::Eq => {
                let (a, b) = self.eval2(&node, lookup)?;
                u64::from(a == b)
            }
            Op::Ult => {
                let (a, b) = self.eval2(&node, lookup)?;
                u64::from(a < b)
            }
            Op::Ule => {
                let (a, b) = self.eval2(&node, lookup)?;
                u64::from(a <= b)
            }
            Op::Not => u64::from(self.eval_with(node.args[0], lookup)? == 0),
            Op::And => {
                let (a, b) = self.eval2(&node, lookup)?;
                u64::from(a != 0 && b != 0)
            }
            Op::Or => {
                let (a, b) = self.eval2(&node, lookup)?;
                u64::from(a != 0 || b != 0)
            }
            Op::Ite => {
                let c = self.eval_with(node.args[0], lookup)?;
                if c != 0 {
                    self.eval_with(node.args[1], lookup)?
                } else {
                    self.eval_with(node.args[2], lookup)?
                }
            }
            Op::Fun(f) => {
                let mut vals = Vec::with_capacity(node.args.len());
                for &a in &node.args {
                    vals.push(self.eval_with(a, lookup)?);
                }
                self.eval_fun(f, &vals)
            }
        };
        Some(w.truncate(v))
    }

    fn eval2(&self, node: &TermData, lookup: &dyn Fn(VarId) -> Option<u64>) -> Option<(u64, u64)> {
        let a = self.eval_with(node.args[0], lookup)?;
        let b = self.eval_with(node.args[1], lookup)?;
        Some((a, b))
    }

    /// Rewrites `t`, replacing every variable present in `map` with the
    /// mapped term (which must have the same width).
    ///
    /// Used by Achilles' `negate` operator to rename a client path
    /// predicate's variables to fresh existential copies.
    ///
    /// # Panics
    ///
    /// Panics if a mapped term's width differs from the variable's width.
    pub fn substitute(
        &mut self,
        t: TermId,
        map: &std::collections::HashMap<VarId, TermId>,
    ) -> TermId {
        let mut memo: std::collections::HashMap<TermId, TermId> = std::collections::HashMap::new();
        self.substitute_memo(t, map, &mut memo)
    }

    fn substitute_memo(
        &mut self,
        t: TermId,
        map: &std::collections::HashMap<VarId, TermId>,
        memo: &mut std::collections::HashMap<TermId, TermId>,
    ) -> TermId {
        if let Some(&r) = memo.get(&t) {
            return r;
        }
        let node = self.node(t).clone();
        let result = match node.op {
            Op::Const(_) => t,
            Op::Var(v) => match map.get(&v) {
                Some(&replacement) => {
                    assert_eq!(
                        self.width(replacement),
                        node.width,
                        "substitute: width mismatch for {:?}",
                        self.var_info(v).name
                    );
                    replacement
                }
                None => t,
            },
            _ => {
                let args: Vec<TermId> = node
                    .args
                    .iter()
                    .map(|&a| self.substitute_memo(a, map, memo))
                    .collect();
                if args == node.args {
                    t
                } else {
                    self.rebuild(&node.op, &args, node.width)
                }
            }
        };
        memo.insert(t, result);
        result
    }

    /// Rebuilds a node with new arguments, going through the simplifying
    /// constructors.
    fn rebuild(&mut self, op: &Op, args: &[TermId], width: Width) -> TermId {
        match *op {
            Op::Const(_) | Op::Var(_) => unreachable!("leaves handled by caller"),
            Op::Add => self.add(args[0], args[1]),
            Op::Sub => self.sub(args[0], args[1]),
            Op::Mul => self.mul(args[0], args[1]),
            Op::Neg => self.neg(args[0]),
            Op::BitAnd => self.bit_and(args[0], args[1]),
            Op::BitOr => self.bit_or(args[0], args[1]),
            Op::BitXor => self.bit_xor(args[0], args[1]),
            Op::BitNot => self.bit_not(args[0]),
            Op::Shl => self.shl(args[0], args[1]),
            Op::Lshr => self.lshr(args[0], args[1]),
            Op::ZExt => self.zext(args[0], width),
            Op::SExt => self.sext(args[0], width),
            Op::Extract { lo } => self.extract(args[0], lo, width),
            Op::Concat => self.concat(args[0], args[1]),
            Op::Eq => self.eq(args[0], args[1]),
            Op::Ult => self.ult(args[0], args[1]),
            Op::Ule => self.ule(args[0], args[1]),
            Op::Not => self.not(args[0]),
            Op::And => self.and(args[0], args[1]),
            Op::Or => self.or(args[0], args[1]),
            Op::Ite => self.ite(args[0], args[1], args[2]),
            Op::Fun(f) => self.apply(f, args.to_vec()),
        }
    }

    /// Collects the set of variables occurring in `t` into `out`
    /// (deduplicated, in first-occurrence order).
    pub fn collect_vars(&self, t: TermId, out: &mut Vec<VarId>) {
        let mut stack = vec![t];
        let mut seen_terms = std::collections::HashSet::new();
        while let Some(id) = stack.pop() {
            if !seen_terms.insert(id) {
                continue;
            }
            let node = self.node(id);
            if let Op::Var(v) = node.op {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            stack.extend(node.args.iter().copied());
        }
    }

    /// The set of variables occurring in `t`.
    pub fn vars_of(&self, t: TermId) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(t, &mut out);
        out
    }

    // ------------------------------------------------------------------
    // Cross-pool import
    // ------------------------------------------------------------------

    /// Re-interns a term from another pool into this one, returning the
    /// equivalent local id.
    ///
    /// Variables are matched by identity fingerprint; unknown variables are
    /// created locally with the source's name, width, and fingerprint, so
    /// repeated imports are stable. `memo` carries the translation across
    /// calls — pass the same map for all terms of one source pool.
    ///
    /// This is how parallel exploration merges worker results: each worker
    /// explores in a fork of the base pool, and completed path records are
    /// imported back into the base pool afterwards.
    pub fn import_term(
        &mut self,
        src: &TermPool,
        t: TermId,
        memo: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        if let Some(&local) = memo.get(&t) {
            return local;
        }
        let node = src.node(t).clone();
        let local = match node.op {
            Op::Const(v) => self.constant(v, node.width),
            Op::Var(v) => {
                let fp = src.var_fp(v);
                let lv = match self.var_by_fp(fp) {
                    Some(lv) => lv,
                    None => {
                        let info = src.var_info(v);
                        self.push_var(&info.name, info.width, fp)
                    }
                };
                self.var(lv)
            }
            Op::Fun(f) => {
                let lf = self.import_fun(src, f);
                let args: Vec<TermId> = node
                    .args
                    .iter()
                    .map(|&a| self.import_term(src, a, memo))
                    .collect();
                self.apply(lf, args)
            }
            _ => {
                let args: Vec<TermId> = node
                    .args
                    .iter()
                    .map(|&a| self.import_term(src, a, memo))
                    .collect();
                self.rebuild(&node.op, &args, node.width)
            }
        };
        memo.insert(t, local);
        local
    }

    /// Maps a source-pool function id onto this pool.
    ///
    /// Workers fork from the base pool, so functions registered before the
    /// fork keep their index; a function this pool has never seen (registered
    /// by the worker after forking) is copied over.
    fn import_fun(&mut self, src: &TermPool, f: FunId) -> FunId {
        let info = src.fun_info(f);
        let idx = f.0 as usize;
        if let Some(local) = self.funs.get(idx) {
            if local.name == info.name && local.width == info.width {
                return f;
            }
        }
        if let Some(pos) = self
            .funs
            .iter()
            .position(|l| l.name == info.name && l.width == info.width)
        {
            return FunId(pos as u32);
        }
        let id = FunId(self.funs.len() as u32);
        self.funs.push(info.clone());
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let mut p = TermPool::new();
        let a = p.constant(3, Width::W8);
        let b = p.constant(3, Width::W8);
        assert_eq!(a, b);
        let c = p.constant(3, Width::W16);
        assert_ne!(a, c);
    }

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let a = p.constant(200, Width::W8);
        let b = p.constant(100, Width::W8);
        let s = p.add(a, b);
        assert_eq!(p.as_const(s), Some(44)); // wraps at 8 bits
        let lt = p.ult(b, a);
        assert_eq!(lt, p.tt());
    }

    #[test]
    fn identity_simplifications() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W16);
        let zero = p.constant(0, Width::W16);
        let one = p.constant(1, Width::W16);
        assert_eq!(p.add(x, zero), x);
        assert_eq!(p.mul(x, one), x);
        assert_eq!(p.mul(x, zero), zero);
        assert_eq!(p.sub(x, x), zero);
        let nn = {
            let n1 = p.eq(x, one);
            let n2 = p.not(n1);
            p.not(n2)
        };
        let direct = p.eq(x, one);
        assert_eq!(nn, direct);
    }

    #[test]
    fn signed_comparison_lowering() {
        let mut p = TermPool::new();
        // -1 <s 0 at width 8.
        let m1 = p.constant_signed(-1, Width::W8);
        let z = p.constant(0, Width::W8);
        assert_eq!(p.slt(m1, z), p.tt());
        assert_eq!(p.slt(z, m1), p.ff());
        assert_eq!(p.sle(m1, m1), p.tt());
    }

    #[test]
    fn eval_arith_and_bool() {
        let mut p = TermPool::new();
        let xv = p.fresh_var("x", Width::W8);
        let x = p.var(xv);
        let c = p.constant(10, Width::W8);
        let sum = p.add(x, c);
        let hundred = p.constant(100, Width::W8);
        let cond = p.ult(sum, hundred);
        let lookup = |v: VarId| if v == xv { Some(5u64) } else { None };
        assert_eq!(p.eval_with(sum, &lookup), Some(15));
        assert_eq!(p.eval_with(cond, &lookup), Some(1));
        let unassigned = |_: VarId| None;
        assert_eq!(p.eval_with(sum, &unassigned), None);
    }

    #[test]
    fn eval_extract_concat() {
        let mut p = TermPool::new();
        let xv = p.fresh_var("x", Width::W16);
        let x = p.var(xv);
        let hi = p.extract(x, 8, Width::W8);
        let lo = p.extract(x, 0, Width::W8);
        let back = p.concat(hi, lo);
        let lookup = |v: VarId| if v == xv { Some(0xAB_CDu64) } else { None };
        assert_eq!(p.eval_with(hi, &lookup), Some(0xAB));
        assert_eq!(p.eval_with(lo, &lookup), Some(0xCD));
        assert_eq!(p.eval_with(back, &lookup), Some(0xABCD));
    }

    #[test]
    fn opaque_fun_folds_when_concrete() {
        let mut p = TermPool::new();
        let f = p.register_fun("sum8", Width::W8, |args| args.iter().sum());
        let a = p.constant(3, Width::W8);
        let b = p.constant(4, Width::W8);
        let app = p.apply(f, vec![a, b]);
        assert_eq!(p.as_const(app), Some(7));
        // Symbolic argument keeps it opaque.
        let x = p.fresh("x", Width::W8);
        let app2 = p.apply(f, vec![a, x]);
        assert_eq!(p.as_const(app2), None);
        let xv = p.as_var(x).unwrap();
        let lookup = |v: VarId| if v == xv { Some(10u64) } else { None };
        assert_eq!(p.eval_with(app2, &lookup), Some(13));
    }

    #[test]
    fn vars_of_collects_unique() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let y = p.fresh("y", Width::W8);
        let s = p.add(x, y);
        let s2 = p.add(s, x);
        let vars = p.vars_of(s2);
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn substitute_renames_through_ops() {
        let mut p = TermPool::new();
        let xv = p.fresh_var("x", Width::W8);
        let x = p.var(xv);
        let c = p.constant(10, Width::W8);
        let sum = p.add(x, c);
        let cmp = p.ult(sum, c);
        let yv = p.fresh_var("y", Width::W8);
        let y = p.var(yv);
        let map: std::collections::HashMap<VarId, TermId> = [(xv, y)].into_iter().collect();
        let renamed = p.substitute(cmp, &map);
        let vars = p.vars_of(renamed);
        assert_eq!(vars, vec![yv]);
        // Untouched terms are returned as-is (same id).
        let unrelated = p.constant(5, Width::W8);
        assert_eq!(p.substitute(unrelated, &map), unrelated);
    }

    #[test]
    fn substitute_folds_constants() {
        let mut p = TermPool::new();
        let xv = p.fresh_var("x", Width::W8);
        let x = p.var(xv);
        let c = p.constant(1, Width::W8);
        let sum = p.add(x, c);
        let two = p.constant(2, Width::W8);
        let map: std::collections::HashMap<VarId, TermId> = [(xv, two)].into_iter().collect();
        let r = p.substitute(sum, &map);
        assert_eq!(p.as_const(r), Some(3));
    }

    #[test]
    fn sext_eval() {
        let mut p = TermPool::new();
        let xv = p.fresh_var("x", Width::W8);
        let x = p.var(xv);
        let wide = p.sext(x, Width::W16);
        let lookup = |v: VarId| if v == xv { Some(0xFFu64) } else { None };
        assert_eq!(p.eval_with(wide, &lookup), Some(0xFFFF));
    }
}
