//! The constraint search engine.
//!
//! Satisfiability is decided by a DPLL-style search over negation-normal-form
//! formulas combined with interval-domain constraint propagation:
//!
//! 1. **Propagation** — affine atoms (`(zext(x) + c) ⋈ const`) are inverted
//!    into interval-set domain refinements; variable equalities are merged
//!    through a union-find; everything else is *deferred* and re-checked by
//!    evaluation whenever enough variables have collapsed to single values
//!    (this is how opaque functions such as CRCs participate:
//!    generate-and-test).
//! 2. **Clause splitting** — open disjunctions are unit-propagated and
//!    case-split.
//! 3. **Value enumeration** — when only deferred atoms remain, a variable
//!    mentioned by one of them is enumerated over its domain (exhaustively
//!    for small domains, by boundary-plus-random sampling for large ones; the
//!    sampled case can answer [`SatResult::Unknown`]).
//!
//! Every `Sat` answer carries a [`Model`] that has been *verified* by
//! re-evaluating all input assertions, so `Sat` results are trustworthy even
//! if a propagation rule were buggy.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::atom::{affine_view_with, nnf, Formula, Literal};
use crate::interval::IntervalSet;
use crate::model::Model;
use crate::term::{Op, TermId, TermPool, VarId};
use crate::width::Width;

/// Tuning knobs for the search engine.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Domains with at most this many values are enumerated exhaustively.
    pub enum_limit: u64,
    /// Number of random samples tried for larger domains before giving up.
    pub sample_count: usize,
    /// Hard budget on decisions (clause splits + value enumerations).
    pub max_decisions: u64,
    /// Seed for the sampling RNG (searches are deterministic given a seed).
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            enum_limit: 4096,
            sample_count: 32,
            max_decisions: 2_000_000,
            seed: 0xAC41_11E5,
        }
    }
}

/// Outcome of a satisfiability query.
///
/// Models are shared (`Arc`) so that cache hits — including hits served from
/// the cross-worker [`SharedCache`](crate::cache::SharedCache) — never deep
/// clone an assignment.
#[derive(Clone, Debug)]
pub enum SatResult {
    /// Satisfiable, with a verified model.
    Sat(Arc<Model>),
    /// Proven unsatisfiable.
    Unsat,
    /// The engine gave up (sampling fallback or budget exhaustion).
    Unknown,
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// The model, if satisfiable, without cloning the assignment.
    pub fn into_model(self) -> Option<Arc<Model>> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Counters describing the work performed by one `solve` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of decision points (clause splits and enumerated values).
    pub decisions: u64,
    /// Number of domain refinements applied.
    pub propagations: u64,
    /// Number of deferred-atom evaluations.
    pub deferred_checks: u64,
    /// Number of model verifications that failed (should stay zero).
    pub verification_failures: u64,
}

#[derive(Clone)]
struct State {
    parent: Vec<u32>,
    dom: HashMap<u32, IntervalSet>,
    deferred: Vec<Literal>,
    clauses: Vec<Vec<Formula>>,
}

enum Step {
    Progress(bool),
    Conflict,
}

impl State {
    fn new(num_vars: usize) -> State {
        State {
            parent: (0..num_vars as u32).collect(),
            dom: HashMap::new(),
            deferred: Vec::new(),
            clauses: Vec::new(),
        }
    }

    fn ensure_var(&mut self, v: VarId) {
        let idx = v.index();
        while self.parent.len() <= idx {
            self.parent.push(self.parent.len() as u32);
        }
    }

    fn find(&self, v: VarId) -> u32 {
        let mut i = v.index() as u32;
        while (self.parent[i as usize]) != i {
            i = self.parent[i as usize];
        }
        i
    }

    fn domain_of(&self, pool: &TermPool, v: VarId) -> IntervalSet {
        let root = self.find(v);
        match self.dom.get(&root) {
            Some(d) => d.clone(),
            None => IntervalSet::full(pool.var_info(VarId(root)).width),
        }
    }

    fn value_of(&self, v: VarId) -> Option<u64> {
        if v.index() >= self.parent.len() {
            return None;
        }
        let root = self.find(v);
        self.dom.get(&root).and_then(|d| d.as_singleton())
    }

    /// Intersects the domain of `v`'s class with `set`.
    ///
    /// Returns whether the domain changed, or a conflict if it emptied.
    fn restrict(&mut self, pool: &TermPool, v: VarId, set: &IntervalSet) -> Step {
        self.ensure_var(v);
        let root = self.find(v);
        let mut d = match self.dom.get(&root) {
            Some(d) => d.clone(),
            None => IntervalSet::full(pool.var_info(VarId(root)).width),
        };
        let before = d.clone();
        d.intersect(set);
        if d.is_empty() {
            return Step::Conflict;
        }
        let changed = d != before;
        self.dom.insert(root, d);
        Step::Progress(changed)
    }

    fn merge(&mut self, pool: &TermPool, a: VarId, b: VarId) -> Step {
        self.ensure_var(a);
        self.ensure_var(b);
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Step::Progress(false);
        }
        let da = self
            .dom
            .remove(&ra)
            .unwrap_or_else(|| IntervalSet::full(pool.var_info(VarId(ra)).width));
        let db = self
            .dom
            .remove(&rb)
            .unwrap_or_else(|| IntervalSet::full(pool.var_info(VarId(rb)).width));
        if da.width() != db.width() {
            // Different widths can never be merged; treat as conflict — the
            // caller should not have produced such an equality.
            return Step::Conflict;
        }
        let mut d = da;
        d.intersect(&db);
        if d.is_empty() {
            return Step::Conflict;
        }
        self.parent[rb as usize] = ra;
        self.dom.insert(ra, d);
        Step::Progress(true)
    }
}

/// The recursive search driver. Owns the RNG and the decision budget.
struct Engine<'p> {
    pool: &'p mut TermPool,
    cfg: SolverConfig,
    rng: StdRng,
    stats: SearchStats,
    budget: u64,
    assertions: Vec<TermId>,
}

/// Decides satisfiability of the conjunction of `assertions`.
///
/// # Examples
///
/// ```
/// use achilles_solver::{solve, SolverConfig, TermPool, Width};
///
/// let mut pool = TermPool::new();
/// let x = pool.fresh("x", Width::W8);
/// let five = pool.constant(5, Width::W8);
/// let ten = pool.constant(10, Width::W8);
/// let a = pool.ult(five, x);
/// let b = pool.ult(x, ten);
/// let (result, _stats) = solve(&mut pool, &[a, b], &SolverConfig::default());
/// let model = result.model().expect("5 < x < 10 is satisfiable");
/// let xv = pool.as_var(x).unwrap();
/// let v = model.value(xv).unwrap();
/// assert!(v > 5 && v < 10);
/// ```
pub fn solve(
    pool: &mut TermPool,
    assertions: &[TermId],
    cfg: &SolverConfig,
) -> (SatResult, SearchStats) {
    let mut engine = Engine {
        rng: StdRng::seed_from_u64(cfg.seed),
        cfg: cfg.clone(),
        budget: cfg.max_decisions,
        stats: SearchStats::default(),
        assertions: assertions.to_vec(),
        pool,
    };
    let num_vars = engine.pool.num_vars();
    let mut state = State::new(num_vars);
    let mut pending = Vec::with_capacity(assertions.len());
    for &a in assertions {
        pending.push(nnf(engine.pool, a, true));
    }
    let result = engine.search(&mut state, pending);
    let stats = engine.stats;
    (result, stats)
}

impl Engine<'_> {
    fn search(&mut self, state: &mut State, pending: Vec<Formula>) -> SatResult {
        match self.propagate(state, pending) {
            Ok(()) => {}
            Err(()) => return SatResult::Unsat,
        }

        // Case-split an open clause first: clauses are usually the negated
        // client predicates and splitting them early prunes best.
        if let Some(ci) = self.pick_clause(state) {
            let clause = state.clauses.swap_remove(ci);
            let mut saw_unknown = false;
            for disjunct in clause {
                if self.budget == 0 {
                    return SatResult::Unknown;
                }
                self.budget -= 1;
                self.stats.decisions += 1;
                let mut branch = state.clone();
                match self.search(&mut branch, vec![disjunct]) {
                    SatResult::Sat(m) => return SatResult::Sat(m),
                    SatResult::Unsat => {}
                    SatResult::Unknown => saw_unknown = true,
                }
            }
            return if saw_unknown {
                SatResult::Unknown
            } else {
                SatResult::Unsat
            };
        }

        // Then enumerate a variable pinned by a deferred atom.
        if let Some(var) = self.pick_deferred_var(state) {
            return self.enumerate(state, var);
        }

        // Only interval-consistent constraints remain: build and verify.
        self.finish(state)
    }

    /// Runs propagation to fixpoint. `Err(())` signals a conflict.
    fn propagate(&mut self, state: &mut State, mut pending: Vec<Formula>) -> Result<(), ()> {
        loop {
            let mut changed = false;

            // Drain structural formulas.
            while let Some(f) = pending.pop() {
                match f {
                    Formula::True => {}
                    Formula::False => return Err(()),
                    Formula::And(parts) => pending.extend(parts),
                    Formula::Or(parts) => state.clauses.push(parts),
                    Formula::Lit(lit) => {
                        changed |= self.assert_literal(state, lit)?;
                    }
                }
            }

            // Retry deferred literals (some may have become decidable).
            let deferred = std::mem::take(&mut state.deferred);
            for lit in deferred {
                self.stats.deferred_checks += 1;
                changed |= self.assert_literal(state, lit)?;
            }

            // Unit-propagate clauses.
            let clauses = std::mem::take(&mut state.clauses);
            for clause in clauses {
                let mut undecided = Vec::new();
                let mut satisfied = false;
                for d in &clause {
                    match self.eval_formula(state, d) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => undecided.push(d.clone()),
                    }
                }
                if satisfied {
                    changed = true;
                    continue;
                }
                match undecided.len() {
                    0 => return Err(()),
                    1 => {
                        pending.push(undecided.pop().expect("len checked"));
                        changed = true;
                    }
                    _ => state.clauses.push(undecided),
                }
            }

            if !changed && pending.is_empty() {
                return Ok(());
            }
        }
    }

    /// Conservative three-valued evaluation of a formula.
    fn eval_formula(&self, state: &State, f: &Formula) -> Option<bool> {
        match f {
            Formula::True => Some(true),
            Formula::False => Some(false),
            Formula::Lit(lit) => {
                let v = self.pool.eval_with(lit.term, &|v| state.value_of(v))?;
                Some((v != 0) == lit.positive)
            }
            Formula::And(parts) => {
                let mut all_true = true;
                for p in parts {
                    match self.eval_formula(state, p) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => all_true = false,
                    }
                }
                if all_true {
                    Some(true)
                } else {
                    None
                }
            }
            Formula::Or(parts) => {
                let mut all_false = true;
                for p in parts {
                    match self.eval_formula(state, p) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => all_false = false,
                    }
                }
                if all_false {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }

    /// Asserts one literal. Returns whether any domain changed.
    fn assert_literal(&mut self, state: &mut State, lit: Literal) -> Result<bool, ()> {
        // Fast path: fully evaluable under the current assignment.
        if let Some(v) = self.pool.eval_with(lit.term, &|v| state.value_of(v)) {
            return if (v != 0) == lit.positive {
                Ok(false)
            } else {
                Err(())
            };
        }

        let node = self.pool.node(lit.term).clone();
        match node.op {
            Op::Var(v) if node.width == Width::BOOL => {
                let want = u64::from(lit.positive);
                let set = IntervalSet::singleton(Width::BOOL, want);
                match state.restrict(self.pool, v, &set) {
                    Step::Conflict => Err(()),
                    Step::Progress(c) => {
                        if c {
                            self.stats.propagations += 1;
                        }
                        Ok(c)
                    }
                }
            }
            Op::Eq => self.assert_cmp(state, lit, CmpKind::Eq, node.args[0], node.args[1]),
            Op::Ult => self.assert_cmp(state, lit, CmpKind::Ult, node.args[0], node.args[1]),
            Op::Ule => self.assert_cmp(state, lit, CmpKind::Ule, node.args[0], node.args[1]),
            _ => {
                state.deferred.push(lit);
                Ok(false)
            }
        }
    }

    fn assert_cmp(
        &mut self,
        state: &mut State,
        lit: Literal,
        kind: CmpKind,
        a: TermId,
        b: TermId,
    ) -> Result<bool, ()> {
        // Partial-evaluate each side: a side whose variables are all pinned
        // behaves as a constant, and pinned variables inside sums make the
        // remaining side affine.
        let ca = self.pool.eval_with(a, &|v| state.value_of(v));
        let cb = self.pool.eval_with(b, &|v| state.value_of(v));
        let va = affine_view_with(self.pool, a, &|v| state.value_of(v));
        let vb = affine_view_with(self.pool, b, &|v| state.value_of(v));
        let width = self.pool.width(a);

        let step = match (ca, cb, va, vb) {
            // const ⋈ const was handled by the fast path in assert_literal.
            (_, Some(c), Some(av), _) => {
                self.restrict_affine(state, av, kind, SidePos::Left, c, width, lit.positive)
            }
            (Some(c), _, _, Some(bv)) => {
                self.restrict_affine(state, bv, kind, SidePos::Right, c, width, lit.positive)
            }
            (None, None, Some(av), Some(bv))
                if kind == CmpKind::Eq
                    && lit.positive
                    && av.offset == bv.offset
                    && av.var_width == bv.var_width
                    && av.var_width == av.term_width
                    && bv.var_width == bv.term_width =>
            {
                state.merge(self.pool, av.var, bv.var)
            }
            (_, Some(c), None, _) => {
                match self.try_extract(state, a, kind, SidePos::Left, c, lit.positive) {
                    Some(step) => step,
                    None => {
                        state.deferred.push(lit);
                        return Ok(false);
                    }
                }
            }
            (Some(c), _, _, None) => {
                match self.try_extract(state, b, kind, SidePos::Right, c, lit.positive) {
                    Some(step) => step,
                    None => {
                        state.deferred.push(lit);
                        return Ok(false);
                    }
                }
            }
            _ => {
                state.deferred.push(lit);
                return Ok(false);
            }
        };
        match step {
            Step::Conflict => Err(()),
            Step::Progress(c) => {
                if c {
                    self.stats.propagations += 1;
                }
                Ok(c)
            }
        }
    }

    /// Propagates `extract(x, lo) ⋈ const` as a *striped* interval set over
    /// `x`: the inverse image of a slice constraint is, per allowed slice
    /// value, one interval for every assignment of the bits above the slice.
    /// Only applied when the stripe count stays small.
    fn try_extract(
        &mut self,
        state: &mut State,
        term: TermId,
        kind: CmpKind,
        side: SidePos,
        c: u64,
        positive: bool,
    ) -> Option<Step> {
        let node = self.pool.node(term).clone();
        let Op::Extract { lo } = node.op else {
            return None;
        };
        let var = self.pool.as_var(node.args[0])?;
        let ew = node.width; // extract width
        let vw = self.pool.width(node.args[0]); // variable width
        let high_bits = vw.bits() - u32::from(lo) - ew.bits();

        // Allowed slice values for the comparison.
        let slice_values = match (kind, side, positive) {
            (CmpKind::Eq, _, true) => IntervalSet::singleton(ew, c),
            (CmpKind::Eq, _, false) => {
                let mut s = IntervalSet::full(ew);
                s.remove_value(c);
                s
            }
            (CmpKind::Ult, SidePos::Left, _) => {
                if c == 0 {
                    return Some(Step::Conflict);
                }
                IntervalSet::range(ew, 0, c - 1)
            }
            (CmpKind::Ult, SidePos::Right, _) => {
                if c >= ew.max_unsigned() {
                    return Some(Step::Conflict);
                }
                IntervalSet::range(ew, c + 1, ew.max_unsigned())
            }
            (CmpKind::Ule, SidePos::Left, _) => IntervalSet::range(ew, 0, c),
            (CmpKind::Ule, SidePos::Right, _) => IntervalSet::range(ew, c, ew.max_unsigned()),
        };
        // Stripe budget: one interval per (slice interval × high assignment).
        const MAX_STRIPES: u64 = 4096;
        let high_count = if high_bits >= 63 {
            return None;
        } else {
            1u64 << high_bits
        };
        let stripe_count = high_count.checked_mul(slice_values.intervals().len() as u64)?;
        if stripe_count > MAX_STRIPES {
            return None;
        }

        let mut allowed = IntervalSet::empty(vw);
        let slice_shift = u32::from(lo);
        let low_mask = (1u64 << slice_shift).wrapping_sub(1);
        for h in 0..high_count {
            let high = h << (slice_shift + ew.bits());
            for iv in slice_values.intervals() {
                let lo_bound = high | (iv.lo << slice_shift);
                let hi_bound = high | (iv.hi << slice_shift) | low_mask;
                allowed.union(&IntervalSet::range(vw, lo_bound, hi_bound));
            }
        }
        if allowed.is_empty() {
            return Some(Step::Conflict);
        }
        Some(state.restrict(self.pool, var, &allowed))
    }

    /// Restricts an affine side against a constant.
    ///
    /// `side` says whether the affine term is the left operand. For `Eq` the
    /// position is irrelevant; for orderings it decides the direction.
    #[allow(clippy::too_many_arguments)]
    fn restrict_affine(
        &mut self,
        state: &mut State,
        av: crate::atom::AffineView,
        kind: CmpKind,
        side: SidePos,
        c: u64,
        width: Width,
        positive: bool,
    ) -> Step {
        let term_values = match (kind, side, positive) {
            (CmpKind::Eq, _, true) => IntervalSet::singleton(width, c),
            (CmpKind::Eq, _, false) => {
                let mut s = IntervalSet::full(width);
                s.remove_value(c);
                s
            }
            // Orderings are always positive after NNF.
            (CmpKind::Ult, SidePos::Left, _) => {
                // term <u c
                if c == 0 {
                    return Step::Conflict;
                }
                IntervalSet::range(width, 0, c - 1)
            }
            (CmpKind::Ult, SidePos::Right, _) => {
                // c <u term
                if c == width.max_unsigned() {
                    return Step::Conflict;
                }
                IntervalSet::range(width, c + 1, width.max_unsigned())
            }
            (CmpKind::Ule, SidePos::Left, _) => IntervalSet::range(width, 0, c),
            (CmpKind::Ule, SidePos::Right, _) => IntervalSet::range(width, c, width.max_unsigned()),
        };
        let var_values = av.inverse_image(&term_values);
        if var_values.is_empty() {
            return Step::Conflict;
        }
        state.restrict(self.pool, av.var, &var_values)
    }

    fn pick_clause(&self, state: &State) -> Option<usize> {
        state
            .clauses
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.len())
            .map(|(i, _)| i)
    }

    /// Chooses the variable with the smallest domain among those mentioned by
    /// deferred atoms.
    fn pick_deferred_var(&self, state: &State) -> Option<VarId> {
        let mut best: Option<(u64, VarId)> = None;
        for lit in &state.deferred {
            for v in self.pool.vars_of(lit.term) {
                if state.value_of(v).is_some() {
                    continue;
                }
                let size = state.domain_of(self.pool, v).len();
                if best.is_none_or(|(s, _)| size < s) {
                    best = Some((size, v));
                }
            }
        }
        best.map(|(_, v)| v)
    }

    fn enumerate(&mut self, state: &State, var: VarId) -> SatResult {
        let domain = state.domain_of(self.pool, var);
        let width = domain.width();
        let exhaustive = domain.len() <= self.cfg.enum_limit;

        let candidates: Vec<u64> = if exhaustive {
            domain.iter().collect()
        } else {
            let mut cands = Vec::with_capacity(self.cfg.sample_count + 4);
            if let (Some(lo), Some(hi)) = (domain.min(), domain.max()) {
                cands.push(lo);
                cands.push(hi);
                for _ in 0..self.cfg.sample_count {
                    let raw = self.rng.gen::<u64>() & width.mask();
                    // Walk up from the raw sample to the next in-domain value.
                    let mut probe = raw;
                    for _ in 0..64 {
                        if domain.contains(probe) {
                            cands.push(probe);
                            break;
                        }
                        probe = width.truncate(probe.wrapping_add(1));
                    }
                }
            }
            cands.sort_unstable();
            cands.dedup();
            cands
        };

        let mut saw_unknown = false;
        for value in candidates {
            if self.budget == 0 {
                return SatResult::Unknown;
            }
            self.budget -= 1;
            self.stats.decisions += 1;
            let mut branch = state.clone();
            let single = IntervalSet::singleton(width, value);
            match branch.restrict(self.pool, var, &single) {
                Step::Conflict => continue,
                Step::Progress(_) => {}
            }
            match self.search(&mut branch, Vec::new()) {
                SatResult::Sat(m) => return SatResult::Sat(m),
                SatResult::Unsat => {}
                SatResult::Unknown => saw_unknown = true,
            }
        }
        if exhaustive && !saw_unknown {
            SatResult::Unsat
        } else {
            SatResult::Unknown
        }
    }

    /// All constraints are interval-consistent: extract a model and verify it.
    fn finish(&mut self, state: &State) -> SatResult {
        let mut model = Model::new();
        let mut relevant: Vec<VarId> = Vec::new();
        for &a in &self.assertions {
            self.pool.collect_vars(a, &mut relevant);
        }
        for v in relevant {
            let value = state.domain_of(self.pool, v).min().unwrap_or(0);
            model.assign(v, value);
        }
        for &a in &self.assertions.clone() {
            if model.eval(self.pool, a) != Some(1) {
                self.stats.verification_failures += 1;
                return SatResult::Unknown;
            }
        }
        SatResult::Sat(Arc::new(model))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CmpKind {
    Eq,
    Ult,
    Ule,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SidePos {
    Left,
    Right,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    fn check(pool: &mut TermPool, assertions: &[TermId]) -> SatResult {
        solve(pool, assertions, &cfg()).0
    }

    #[test]
    fn simple_interval_sat() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let a = {
            let c = p.constant(5, Width::W8);
            p.ult(c, x)
        };
        let b = {
            let c = p.constant(10, Width::W8);
            p.ult(x, c)
        };
        let r = check(&mut p, &[a, b]);
        let m = r.model().expect("sat");
        let v = m.value(p.as_var(x).unwrap()).unwrap();
        assert!(v > 5 && v < 10, "got {v}");
    }

    #[test]
    fn contradictory_intervals_unsat() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let five = p.constant(5, Width::W8);
        let a = p.ult(x, five);
        let b = p.ult(five, x);
        assert!(check(&mut p, &[a, b]).is_unsat());
    }

    #[test]
    fn disequality_chain() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let two = p.constant(2, Width::W8);
        let three = p.constant(3, Width::W8);
        let lt = p.ult(x, three);
        let ne0 = {
            let c = p.constant(0, Width::W8);
            p.ne(x, c)
        };
        let ne1 = {
            let c = p.constant(1, Width::W8);
            p.ne(x, c)
        };
        let r = check(&mut p, &[lt, ne0, ne1]);
        let m = r.model().expect("x == 2 remains");
        assert_eq!(m.value(p.as_var(x).unwrap()), Some(2));
        let ne2 = p.ne(x, two);
        assert!(check(&mut p, &[lt, ne0, ne1, ne2]).is_unsat());
    }

    #[test]
    fn var_equality_merges() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W16);
        let y = p.fresh("y", Width::W16);
        let eq = p.eq(x, y);
        let c10 = p.constant(10, Width::W16);
        let c20 = p.constant(20, Width::W16);
        let a = p.ult(x, c20); // x < 20
        let b = p.ult(c10, y); // y > 10
        let r = check(&mut p, &[eq, a, b]);
        let m = r.model().expect("sat");
        let xv = m.value(p.as_var(x).unwrap()).unwrap();
        let yv = m.value(p.as_var(y).unwrap()).unwrap();
        assert_eq!(xv, yv);
        assert!(xv > 10 && xv < 20);
    }

    #[test]
    fn equality_conflict_via_merge() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let y = p.fresh("y", Width::W8);
        let eq = p.eq(x, y);
        let c5 = p.constant(5, Width::W8);
        let c9 = p.constant(9, Width::W8);
        let a = p.eq(x, c5);
        let b = p.eq(y, c9);
        assert!(check(&mut p, &[eq, a, b]).is_unsat());
    }

    #[test]
    fn signed_comparison_end_to_end() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W32);
        let zero = p.constant(0, Width::W32);
        let hundred = p.constant(100, Width::W32);
        // x <s 0 and x <s 100: satisfied by negative values.
        let a = p.slt(x, zero);
        let b = p.slt(x, hundred);
        let r = check(&mut p, &[a, b]);
        let m = r.model().expect("negative x exists");
        let v = m.value(p.as_var(x).unwrap()).unwrap();
        assert!(Width::W32.to_signed(v) < 0, "got {v}");
        // x <s 0 and x >=s 0 is unsat.
        let c = p.sge(x, zero);
        assert!(check(&mut p, &[a, c]).is_unsat());
    }

    #[test]
    fn disjunction_splits() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let c1 = p.constant(1, Width::W8);
        let c2 = p.constant(2, Width::W8);
        let e1 = p.eq(x, c1);
        let e2 = p.eq(x, c2);
        let either = p.or(e1, e2);
        let not1 = p.not(e1);
        let r = check(&mut p, &[either, not1]);
        let m = r.model().expect("x == 2");
        assert_eq!(m.value(p.as_var(x).unwrap()), Some(2));
        let not2 = p.not(e2);
        assert!(check(&mut p, &[either, not1, not2]).is_unsat());
    }

    #[test]
    fn opaque_fun_generate_and_test() {
        let mut p = TermPool::new();
        // parity(x) == 1 with x < 4: solver must enumerate x.
        let parity = p.register_fun("parity", Width::W8, |args| args[0] % 2);
        let x = p.fresh("x", Width::W8);
        let four = p.constant(4, Width::W8);
        let lt = p.ult(x, four);
        let app = p.apply(parity, vec![x]);
        let one = p.constant(1, Width::W8);
        let odd = p.eq(app, one);
        let r = check(&mut p, &[lt, odd]);
        let m = r.model().expect("1 or 3 works");
        let v = m.value(p.as_var(x).unwrap()).unwrap();
        assert!(v == 1 || v == 3);
    }

    #[test]
    fn opaque_fun_unsat() {
        let mut p = TermPool::new();
        let always7 = p.register_fun("const7", Width::W8, |_| 7);
        let x = p.fresh("x", Width::W8);
        let app = p.apply(always7, vec![x]);
        let eight = p.constant(8, Width::W8);
        let eq = p.eq(app, eight);
        // Exhaustive over 256 values: provably unsat.
        assert!(check(&mut p, &[eq]).is_unsat());
    }

    #[test]
    fn fun_forcing_output_var() {
        let mut p = TermPool::new();
        let double = p.register_fun("double", Width::W16, |args| args[0] * 2);
        let x = p.fresh("x", Width::W8);
        let y = p.fresh("y", Width::W16);
        let wide_x_input = x;
        let app = p.apply(double, vec![wide_x_input]);
        let eq = p.eq(y, app);
        let c3 = p.constant(3, Width::W8);
        let x_is_3 = p.eq(x, c3);
        let r = check(&mut p, &[eq, x_is_3]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(p.as_var(y).unwrap()), Some(6));
    }

    #[test]
    fn cross_width_zext_constraint() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let wide = p.zext(x, Width::W32);
        let c300 = p.constant(300, Width::W32);
        // zext(x) > 300 is unsat at 8 bits.
        let gt = p.ult(c300, wide);
        assert!(check(&mut p, &[gt]).is_unsat());
        // zext(x) > 200 is sat.
        let c200 = p.constant(200, Width::W32);
        let gt2 = p.ult(c200, wide);
        let r = check(&mut p, &[gt2]);
        let m = r.model().expect("sat");
        assert!(m.value(p.as_var(x).unwrap()).unwrap() > 200);
    }

    #[test]
    fn large_domain_interval_only_no_enumeration() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W64);
        let lo = p.constant(1_000_000, Width::W64);
        let a = p.ult(lo, x);
        let (r, stats) = solve(&mut p, &[a], &cfg());
        assert!(r.is_sat());
        // Interval reasoning alone should solve this: no value enumeration.
        assert_eq!(stats.decisions, 0);
    }

    #[test]
    fn empty_query_is_sat() {
        let mut p = TermPool::new();
        assert!(check(&mut p, &[]).is_sat());
    }

    #[test]
    fn exhausted_budget_returns_unknown() {
        let mut p = TermPool::new();
        // A query needing case splits, with a budget too small to finish.
        let x = p.fresh("x", Width::W8);
        let parity = p.register_fun("parity", Width::W8, |a| a[0] % 2);
        let app = p.apply(parity, vec![x]);
        let one = p.constant(1, Width::W8);
        let odd = p.eq(app, one);
        let tiny = SolverConfig {
            max_decisions: 1,
            ..SolverConfig::default()
        };
        let (r, stats) = solve(&mut p, &[odd], &tiny);
        assert!(
            matches!(r, SatResult::Unknown | SatResult::Sat(_)),
            "must never claim Unsat under budget exhaustion: {r:?}"
        );
        assert!(stats.decisions <= 1);
    }

    #[test]
    fn extract_and_concat_via_enumeration() {
        let mut p = TermPool::new();
        // high byte of x == 0xAB and low byte == 0xCD pins x = 0xABCD.
        let x = p.fresh("x", Width::W16);
        let hi = p.extract(x, 8, Width::W8);
        let lo = p.extract(x, 0, Width::W8);
        let ab = p.constant(0xAB, Width::W8);
        let cd = p.constant(0xCD, Width::W8);
        let e1 = p.eq(hi, ab);
        let e2 = p.eq(lo, cd);
        let r = check(&mut p, &[e1, e2]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(p.as_var(x).unwrap()), Some(0xABCD));
        // Contradictory byte constraints are unsat.
        let e3 = p.ne(lo, cd);
        assert!(check(&mut p, &[e1, e2, e3]).is_unsat());
    }

    #[test]
    fn bool_width_operations() {
        let mut p = TermPool::new();
        let a = p.fresh("a", Width::BOOL);
        let b = p.fresh("b", Width::BOOL);
        let both = p.and(a, b);
        let r = check(&mut p, &[both]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(p.as_var(a).unwrap()), Some(1));
        assert_eq!(m.value(p.as_var(b).unwrap()), Some(1));
        let na = p.not(a);
        assert!(check(&mut p, &[both, na]).is_unsat());
    }

    #[test]
    fn sext_constraint_solved_by_enumeration() {
        let mut p = TermPool::new();
        // sext8→16(x) == 0xFFFF ⟺ x == 0xFF.
        let x = p.fresh("x", Width::W8);
        let wide = p.sext(x, Width::W16);
        let all_ones = p.constant(0xFFFF, Width::W16);
        let eq = p.eq(wide, all_ones);
        let r = check(&mut p, &[eq]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(p.as_var(x).unwrap()), Some(0xFF));
    }

    #[test]
    fn ite_boolean_expansion() {
        let mut p = TermPool::new();
        let c = p.fresh("c", Width::BOOL);
        let x = p.fresh("x", Width::W8);
        let c1 = p.constant(1, Width::W8);
        let c2 = p.constant(2, Width::W8);
        let e1 = p.eq(x, c1);
        let e2 = p.eq(x, c2);
        let ite = p.ite(c, e1, e2);
        let ctrue = c;
        let r = check(&mut p, &[ite, ctrue]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(p.as_var(x).unwrap()), Some(1));
    }
}
