//! The constraint search engine.
//!
//! Satisfiability is decided by a DPLL-style search over negation-normal-form
//! formulas combined with interval-domain constraint propagation:
//!
//! 1. **Propagation** — affine atoms (`(zext(x) + c) ⋈ const`) are inverted
//!    into interval-set domain refinements; variable equalities are merged
//!    through a union-find; everything else is *deferred* and re-checked by
//!    evaluation whenever enough variables have collapsed to single values
//!    (this is how opaque functions such as CRCs participate:
//!    generate-and-test).
//! 2. **Clause splitting** — open disjunctions are unit-propagated and
//!    case-split.
//! 3. **Value enumeration** — when only deferred atoms remain, a variable
//!    mentioned by one of them is enumerated over its domain (exhaustively
//!    for small domains, by boundary-plus-random sampling for large ones; the
//!    sampled case can answer [`SatResult::Unknown`]).
//!
//! Every `Sat` answer carries a [`Model`] that has been *verified* by
//! re-evaluating all input assertions. Every `Unsat` answer carries a
//! [`Certificate`]: the refutation trace (restrictions, merges, splits,
//! conflicts) plus the unsat core, checkable by the independent
//! `achilles-proofcheck` crate — so *both* verdict kinds are trustworthy
//! even if a propagation rule were buggy.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::atom::{affine_view_with, nnf, Formula, Literal};
use crate::certificate::{Certificate, ProofNode, ProofStep};
use crate::interval::IntervalSet;
use crate::model::Model;
use crate::term::{Op, TermId, TermPool, VarId};
use crate::width::Width;

/// Tuning knobs for the search engine.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Domains with at most this many values are enumerated exhaustively.
    pub enum_limit: u64,
    /// Number of random samples tried for larger domains before giving up.
    pub sample_count: usize,
    /// Hard budget on decisions (clause splits + value enumerations).
    pub max_decisions: u64,
    /// Seed for the sampling RNG (searches are deterministic given a seed).
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            enum_limit: 4096,
            sample_count: 32,
            max_decisions: 2_000_000,
            seed: 0xAC41_11E5,
        }
    }
}

/// Outcome of a satisfiability query.
///
/// Models and certificates are shared (`Arc`) so that cache hits — including
/// hits served from the cross-worker [`SharedCache`](crate::cache::SharedCache)
/// — never deep clone them.
#[derive(Clone, Debug)]
pub enum SatResult {
    /// Satisfiable, with a verified model.
    Sat(Arc<Model>),
    /// Proven unsatisfiable, with a checkable refutation certificate.
    Unsat(Arc<Certificate>),
    /// The engine gave up (sampling fallback or budget exhaustion).
    Unknown,
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// The model, if satisfiable, without cloning the assignment.
    pub fn into_model(self) -> Option<Arc<Model>> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// The refutation certificate, if unsatisfiable.
    pub fn certificate(&self) -> Option<&Arc<Certificate>> {
        match self {
            SatResult::Unsat(c) => Some(c),
            _ => None,
        }
    }
}

/// Counters describing the work performed by one `solve` call.
///
/// This is the *solver's* DPLL-style search; the Trojan-search counters in
/// the core crate are the distinct `achilles::TrojanSearchStats` type (the
/// two used to collide on the name `SearchStats`). In the metrics registry
/// the series are fully qualified accordingly: these export as
/// `achilles_solver_search_*`, the Trojan search as `achilles_trojan_search_*`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of decision points (clause splits and enumerated values).
    pub decisions: u64,
    /// Number of domain refinements applied.
    pub propagations: u64,
    /// Number of deferred-atom evaluations.
    pub deferred_checks: u64,
    /// Number of model verifications that failed (should stay zero).
    pub verification_failures: u64,
    /// Total certificate nodes + steps emitted for `Unsat` verdicts.
    pub certificate_steps: u64,
}

/// An open disjunction awaiting unit propagation or a case split.
///
/// `parts` keeps the *original* disjuncts (the checker's `Or` context entry
/// holds all of them); `live` indexes the ones not yet falsified.
#[derive(Clone)]
struct Clause {
    /// Context ref of the `Or` entry this clause came from.
    or_ref: u32,
    /// All original disjuncts, in order.
    parts: Vec<Formula>,
    /// Indices into `parts` still undecided, ascending.
    live: Vec<usize>,
}

#[derive(Clone)]
struct State {
    parent: Vec<u32>,
    dom: HashMap<u32, IntervalSet>,
    deferred: Vec<(Literal, u32)>,
    clauses: Vec<Clause>,
    /// The checker's context length at this point of the search: refs of
    /// formulas pushed in this branch start here.
    next_ref: u32,
}

enum Step {
    Progress(bool),
    Conflict,
}

/// What an applied propagation touched — used to name the step (or the
/// conflict) in the certificate.
enum Applied {
    Restrict(VarId),
    Merge,
}

/// Chronological record of one propagation pass, folded into the proof
/// tree when (and only when) the branch is refuted.
enum Event {
    /// A justified domain refinement.
    Step(ProofStep),
    /// Unit propagation: all disjuncts of the `Or` at `or_ref` except
    /// `survivor` were falsified (each refuted by its synthesized node in
    /// `dead`), and the survivor was assumed.
    Unit {
        or_ref: u32,
        n_parts: usize,
        survivor: usize,
        dead: Vec<(usize, ProofNode)>,
    },
}

/// Internal search outcome: `Unsat` carries the (not yet core-extracted)
/// refutation of the current branch.
enum SearchOut {
    Sat(Arc<Model>),
    Unsat(ProofNode),
    Unknown,
}

/// Number of context entries a formula contributes when pushed: one per
/// literal and one per (unsplit) `Or`, walked structurally through `And`s.
fn count(f: &Formula) -> u32 {
    match f {
        Formula::True | Formula::False => 0,
        Formula::Lit(_) | Formula::Or(_) => 1,
        Formula::And(parts) => parts.iter().map(count).sum(),
    }
}

impl State {
    fn new(num_vars: usize) -> State {
        State {
            parent: (0..num_vars as u32).collect(),
            dom: HashMap::new(),
            deferred: Vec::new(),
            clauses: Vec::new(),
            next_ref: 0,
        }
    }

    fn ensure_var(&mut self, v: VarId) {
        let idx = v.index();
        while self.parent.len() <= idx {
            self.parent.push(self.parent.len() as u32);
        }
    }

    fn find(&self, v: VarId) -> u32 {
        let mut i = v.index() as u32;
        while (self.parent[i as usize]) != i {
            i = self.parent[i as usize];
        }
        i
    }

    fn domain_of(&self, pool: &TermPool, v: VarId) -> IntervalSet {
        let root = self.find(v);
        match self.dom.get(&root) {
            Some(d) => d.clone(),
            None => IntervalSet::full(pool.var_info(VarId(root)).width),
        }
    }

    fn value_of(&self, v: VarId) -> Option<u64> {
        if v.index() >= self.parent.len() {
            return None;
        }
        let root = self.find(v);
        self.dom.get(&root).and_then(|d| d.as_singleton())
    }

    /// Intersects the domain of `v`'s class with `set`.
    ///
    /// Returns whether the domain changed, or a conflict if it emptied.
    fn restrict(&mut self, pool: &TermPool, v: VarId, set: &IntervalSet) -> Step {
        self.ensure_var(v);
        let root = self.find(v);
        let mut d = match self.dom.get(&root) {
            Some(d) => d.clone(),
            None => IntervalSet::full(pool.var_info(VarId(root)).width),
        };
        let before = d.clone();
        d.intersect(set);
        if d.is_empty() {
            return Step::Conflict;
        }
        let changed = d != before;
        self.dom.insert(root, d);
        Step::Progress(changed)
    }

    fn merge(&mut self, pool: &TermPool, a: VarId, b: VarId) -> Step {
        self.ensure_var(a);
        self.ensure_var(b);
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Step::Progress(false);
        }
        let da = self
            .dom
            .remove(&ra)
            .unwrap_or_else(|| IntervalSet::full(pool.var_info(VarId(ra)).width));
        let db = self
            .dom
            .remove(&rb)
            .unwrap_or_else(|| IntervalSet::full(pool.var_info(VarId(rb)).width));
        if da.width() != db.width() {
            // Different widths can never be merged; treat as conflict — the
            // caller should not have produced such an equality.
            return Step::Conflict;
        }
        let mut d = da;
        d.intersect(&db);
        if d.is_empty() {
            return Step::Conflict;
        }
        self.parent[rb as usize] = ra;
        self.dom.insert(ra, d);
        Step::Progress(true)
    }
}

/// The recursive search driver. Owns the RNG and the decision budget.
struct Engine<'p> {
    pool: &'p mut TermPool,
    cfg: SolverConfig,
    rng: StdRng,
    stats: SearchStats,
    budget: u64,
    assertions: Vec<TermId>,
}

/// Decides satisfiability of the conjunction of `assertions`.
///
/// # Examples
///
/// ```
/// use achilles_solver::{solve, SolverConfig, TermPool, Width};
///
/// let mut pool = TermPool::new();
/// let x = pool.fresh("x", Width::W8);
/// let five = pool.constant(5, Width::W8);
/// let ten = pool.constant(10, Width::W8);
/// let a = pool.ult(five, x);
/// let b = pool.ult(x, ten);
/// let (result, _stats) = solve(&mut pool, &[a, b], &SolverConfig::default());
/// let model = result.model().expect("5 < x < 10 is satisfiable");
/// let xv = pool.as_var(x).unwrap();
/// let v = model.value(xv).unwrap();
/// assert!(v > 5 && v < 10);
/// ```
pub fn solve(
    pool: &mut TermPool,
    assertions: &[TermId],
    cfg: &SolverConfig,
) -> (SatResult, SearchStats) {
    let mut engine = Engine {
        rng: StdRng::seed_from_u64(cfg.seed),
        cfg: cfg.clone(),
        budget: cfg.max_decisions,
        stats: SearchStats::default(),
        assertions: assertions.to_vec(),
        pool,
    };
    let num_vars = engine.pool.num_vars();
    let mut state = State::new(num_vars);

    // Normalize every assertion up front, assigning each its contiguous
    // ref range in the checker's context.
    let mut forms = Vec::with_capacity(assertions.len());
    let mut ranges = Vec::with_capacity(assertions.len());
    let mut next_ref = 0u32;
    let mut false_core: Option<usize> = None;
    for (k, &a) in assertions.iter().enumerate() {
        let f = nnf(engine.pool, a, true);
        let c = count(&f);
        ranges.push((next_ref, next_ref + c));
        if false_core.is_none() && matches!(f, Formula::False) {
            false_core = Some(k);
        }
        forms.push(f);
        next_ref += c;
    }
    if let Some(k) = false_core {
        // An assertion that normalizes to `false` refutes the conjunction
        // on its own: a one-assertion core, no search needed.
        let cert = Certificate {
            core: vec![engine.pool.term_fp(assertions[k])],
            proof: ProofNode::FalseCore { core: 0 },
            steps: 1,
        };
        engine.stats.certificate_steps += cert.steps;
        return (SatResult::Unsat(Arc::new(cert)), engine.stats);
    }
    state.next_ref = next_ref;
    let pending: Vec<(Formula, u32)> = forms
        .into_iter()
        .zip(ranges.iter().map(|&(start, _)| start))
        .collect();

    let out = engine.search(&mut state, pending);
    let result = match out {
        SearchOut::Sat(m) => SatResult::Sat(m),
        SearchOut::Unknown => SatResult::Unknown,
        SearchOut::Unsat(node) => {
            let cert = extract_certificate(engine.pool, assertions, &ranges, next_ref, node);
            engine.stats.certificate_steps += cert.steps;
            SatResult::Unsat(Arc::new(cert))
        }
    };
    let stats = engine.stats;
    (result, stats)
}

impl Engine<'_> {
    fn search(&mut self, state: &mut State, pending: Vec<(Formula, u32)>) -> SearchOut {
        let mut trail = Vec::new();
        if let Err(leaf) = self.propagate(state, pending, &mut trail) {
            return SearchOut::Unsat(fold_trail(trail, leaf));
        }

        // Case-split an open clause first: clauses are usually the negated
        // client predicates and splitting them early prunes best.
        if let Some(ci) = self.pick_clause(state) {
            let clause = state.clauses.swap_remove(ci);
            let split_ref = state.next_ref;
            let mut saw_unknown = false;
            let mut cases: Vec<Option<ProofNode>> = vec![None; clause.parts.len()];
            for (i, part) in clause.parts.iter().enumerate() {
                if !clause.live.contains(&i) {
                    // Falsified before the split; refuted by evaluation.
                    if !saw_unknown {
                        cases[i] =
                            Some(self.synth_false(state, part, split_ref, split_ref + count(part)));
                    }
                    continue;
                }
                if self.budget == 0 {
                    return SearchOut::Unknown;
                }
                self.budget -= 1;
                self.stats.decisions += 1;
                let mut branch = state.clone();
                branch.next_ref = split_ref + count(part);
                match self.search(&mut branch, vec![(part.clone(), split_ref)]) {
                    SearchOut::Sat(m) => return SearchOut::Sat(m),
                    SearchOut::Unsat(node) => cases[i] = Some(node),
                    SearchOut::Unknown => saw_unknown = true,
                }
            }
            if saw_unknown {
                return SearchOut::Unknown;
            }
            let cases: Vec<ProofNode> = cases
                .into_iter()
                .map(|c| c.expect("every disjunct refuted"))
                .collect();
            let split = ProofNode::SplitOr {
                or: clause.or_ref,
                cases,
            };
            return SearchOut::Unsat(fold_trail(trail, split));
        }

        // Then enumerate a variable pinned by a deferred atom.
        if let Some(var) = self.pick_deferred_var(state) {
            return match self.enumerate(state, var) {
                SearchOut::Unsat(node) => SearchOut::Unsat(fold_trail(trail, node)),
                other => other,
            };
        }

        // Only interval-consistent constraints remain: build and verify.
        self.finish(state)
    }

    /// Runs propagation to fixpoint, recording refinements into `trail`.
    /// `Err(node)` signals a conflict, refuted by `node`.
    fn propagate(
        &mut self,
        state: &mut State,
        mut pending: Vec<(Formula, u32)>,
        trail: &mut Vec<Event>,
    ) -> Result<(), ProofNode> {
        loop {
            let mut changed = false;

            // Drain structural formulas. Each carries the ref of its first
            // context entry; `And` children get consecutive sub-ranges.
            while let Some((f, base)) = pending.pop() {
                match f {
                    Formula::True => {}
                    Formula::False => {
                        unreachable!("top-level False is handled in solve; NNF nests no constants")
                    }
                    Formula::And(parts) => {
                        let mut p = base;
                        for part in parts {
                            let c = count(&part);
                            pending.push((part, p));
                            p += c;
                        }
                    }
                    Formula::Or(parts) => state.clauses.push(Clause {
                        or_ref: base,
                        live: (0..parts.len()).collect(),
                        parts,
                    }),
                    Formula::Lit(lit) => {
                        changed |= self.assert_literal(state, lit, base, trail)?;
                    }
                }
            }

            // Retry deferred literals (some may have become decidable).
            let deferred = std::mem::take(&mut state.deferred);
            for (lit, just) in deferred {
                self.stats.deferred_checks += 1;
                changed |= self.assert_literal(state, lit, just, trail)?;
            }

            // Unit-propagate clauses.
            let clauses = std::mem::take(&mut state.clauses);
            for clause in clauses {
                let mut live = Vec::new();
                let mut satisfied = false;
                for &i in &clause.live {
                    match self.eval_formula(state, &clause.parts[i]) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => live.push(i),
                    }
                }
                if satisfied {
                    changed = true;
                    continue;
                }
                match live.len() {
                    0 => {
                        // Every disjunct falsified: the clause itself is the
                        // conflict, each case refuted by evaluation.
                        let here = state.next_ref;
                        let cases = clause
                            .parts
                            .iter()
                            .map(|p| self.synth_false(state, p, here, here + count(p)))
                            .collect();
                        return Err(ProofNode::SplitOr {
                            or: clause.or_ref,
                            cases,
                        });
                    }
                    1 => {
                        let survivor = live[0];
                        let here = state.next_ref;
                        let mut dead = Vec::with_capacity(clause.parts.len() - 1);
                        for (i, p) in clause.parts.iter().enumerate() {
                            if i != survivor {
                                dead.push((i, self.synth_false(state, p, here, here + count(p))));
                            }
                        }
                        trail.push(Event::Unit {
                            or_ref: clause.or_ref,
                            n_parts: clause.parts.len(),
                            survivor,
                            dead,
                        });
                        state.next_ref = here + count(&clause.parts[survivor]);
                        pending.push((clause.parts[survivor].clone(), here));
                        changed = true;
                    }
                    _ => state.clauses.push(Clause {
                        or_ref: clause.or_ref,
                        parts: clause.parts,
                        live,
                    }),
                }
            }

            if !changed && pending.is_empty() {
                return Ok(());
            }
        }
    }

    /// Conservative three-valued evaluation of a formula.
    fn eval_formula(&self, state: &State, f: &Formula) -> Option<bool> {
        match f {
            Formula::True => Some(true),
            Formula::False => Some(false),
            Formula::Lit(lit) => {
                let v = self.pool.eval_with(lit.term, &|v| state.value_of(v))?;
                Some((v != 0) == lit.positive)
            }
            Formula::And(parts) => {
                let mut all_true = true;
                for p in parts {
                    match self.eval_formula(state, p) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => all_true = false,
                    }
                }
                if all_true {
                    Some(true)
                } else {
                    None
                }
            }
            Formula::Or(parts) => {
                let mut all_false = true;
                for p in parts {
                    match self.eval_formula(state, p) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => all_false = false,
                    }
                }
                if all_false {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }

    /// Synthesizes a refutation of a formula that currently evaluates to
    /// `Some(false)` — pinned values alone contradict it, so the proof is a
    /// chain of `Falsified` leaves (splitting nested `Or`s along the way).
    ///
    /// `pos` is the ref of the formula's first context entry; `top` is the
    /// checker's context length at the node being synthesized (where any
    /// nested split cases push their disjuncts).
    fn synth_false(&self, state: &State, f: &Formula, pos: u32, top: u32) -> ProofNode {
        match f {
            Formula::Lit(_) => ProofNode::Falsified { just: pos },
            Formula::And(parts) => {
                let mut p = pos;
                for part in parts {
                    if self.eval_formula(state, part) == Some(false) {
                        return self.synth_false(state, part, p, top);
                    }
                    p += count(part);
                }
                unreachable!("a false conjunction has a false conjunct")
            }
            Formula::Or(parts) => ProofNode::SplitOr {
                or: pos,
                cases: parts
                    .iter()
                    .map(|part| self.synth_false(state, part, top, top + count(part)))
                    .collect(),
            },
            Formula::True | Formula::False => {
                unreachable!("normalized formulas nest no boolean constants")
            }
        }
    }

    /// Applies a propagation step, recording it (or the conflict it
    /// surfaces) against the justifying ref.
    fn apply_step(
        &mut self,
        trail: &mut Vec<Event>,
        just: u32,
        step: Step,
        applied: Applied,
    ) -> Result<bool, ProofNode> {
        match step {
            Step::Conflict => Err(match applied {
                Applied::Restrict(v) => ProofNode::EmptyRestrict {
                    just,
                    var: self.pool.var_fp(v),
                },
                Applied::Merge => ProofNode::EmptyMerge { just },
            }),
            Step::Progress(true) => {
                self.stats.propagations += 1;
                trail.push(Event::Step(match applied {
                    Applied::Restrict(v) => ProofStep::Restrict {
                        just,
                        var: self.pool.var_fp(v),
                    },
                    Applied::Merge => ProofStep::Merge { just },
                }));
                Ok(true)
            }
            Step::Progress(false) => Ok(false),
        }
    }

    /// Asserts one literal. Returns whether any domain changed.
    fn assert_literal(
        &mut self,
        state: &mut State,
        lit: Literal,
        just: u32,
        trail: &mut Vec<Event>,
    ) -> Result<bool, ProofNode> {
        // Fast path: fully evaluable under the current assignment.
        if let Some(v) = self.pool.eval_with(lit.term, &|v| state.value_of(v)) {
            return if (v != 0) == lit.positive {
                Ok(false)
            } else {
                Err(ProofNode::Falsified { just })
            };
        }

        let node = self.pool.node(lit.term).clone();
        match node.op {
            Op::Var(v) if node.width == Width::BOOL => {
                let want = u64::from(lit.positive);
                let set = IntervalSet::singleton(Width::BOOL, want);
                let step = state.restrict(self.pool, v, &set);
                self.apply_step(trail, just, step, Applied::Restrict(v))
            }
            Op::Eq => self.assert_cmp(
                state,
                lit,
                just,
                trail,
                CmpKind::Eq,
                node.args[0],
                node.args[1],
            ),
            Op::Ult => self.assert_cmp(
                state,
                lit,
                just,
                trail,
                CmpKind::Ult,
                node.args[0],
                node.args[1],
            ),
            Op::Ule => self.assert_cmp(
                state,
                lit,
                just,
                trail,
                CmpKind::Ule,
                node.args[0],
                node.args[1],
            ),
            _ => {
                state.deferred.push((lit, just));
                Ok(false)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn assert_cmp(
        &mut self,
        state: &mut State,
        lit: Literal,
        just: u32,
        trail: &mut Vec<Event>,
        kind: CmpKind,
        a: TermId,
        b: TermId,
    ) -> Result<bool, ProofNode> {
        // Partial-evaluate each side: a side whose variables are all pinned
        // behaves as a constant, and pinned variables inside sums make the
        // remaining side affine.
        let ca = self.pool.eval_with(a, &|v| state.value_of(v));
        let cb = self.pool.eval_with(b, &|v| state.value_of(v));
        let va = affine_view_with(self.pool, a, &|v| state.value_of(v));
        let vb = affine_view_with(self.pool, b, &|v| state.value_of(v));
        let width = self.pool.width(a);

        let (step, applied) = match (ca, cb, va, vb) {
            // const ⋈ const was handled by the fast path in assert_literal.
            (_, Some(c), Some(av), _) => (
                self.restrict_affine(state, av, kind, SidePos::Left, c, width, lit.positive),
                Applied::Restrict(av.var),
            ),
            (Some(c), _, _, Some(bv)) => (
                self.restrict_affine(state, bv, kind, SidePos::Right, c, width, lit.positive),
                Applied::Restrict(bv.var),
            ),
            (None, None, Some(av), Some(bv))
                if kind == CmpKind::Eq
                    && lit.positive
                    && av.offset == bv.offset
                    && av.var_width == bv.var_width
                    && av.var_width == av.term_width
                    && bv.var_width == bv.term_width =>
            {
                (state.merge(self.pool, av.var, bv.var), Applied::Merge)
            }
            (_, Some(c), None, _) => {
                match self.try_extract(state, a, kind, SidePos::Left, c, lit.positive) {
                    Some((step, v)) => (step, Applied::Restrict(v)),
                    None => {
                        state.deferred.push((lit, just));
                        return Ok(false);
                    }
                }
            }
            (Some(c), _, _, None) => {
                match self.try_extract(state, b, kind, SidePos::Right, c, lit.positive) {
                    Some((step, v)) => (step, Applied::Restrict(v)),
                    None => {
                        state.deferred.push((lit, just));
                        return Ok(false);
                    }
                }
            }
            _ => {
                state.deferred.push((lit, just));
                return Ok(false);
            }
        };
        self.apply_step(trail, just, step, applied)
    }

    /// Propagates `extract(x, lo) ⋈ const` as a *striped* interval set over
    /// `x`: the inverse image of a slice constraint is, per allowed slice
    /// value, one interval for every assignment of the bits above the slice.
    /// Only applied when the stripe count stays small.
    fn try_extract(
        &mut self,
        state: &mut State,
        term: TermId,
        kind: CmpKind,
        side: SidePos,
        c: u64,
        positive: bool,
    ) -> Option<(Step, VarId)> {
        let node = self.pool.node(term).clone();
        let Op::Extract { lo } = node.op else {
            return None;
        };
        let var = self.pool.as_var(node.args[0])?;
        let ew = node.width; // extract width
        let vw = self.pool.width(node.args[0]); // variable width
        let high_bits = vw.bits() - u32::from(lo) - ew.bits();

        // Allowed slice values for the comparison.
        let slice_values = match (kind, side, positive) {
            (CmpKind::Eq, _, true) => IntervalSet::singleton(ew, c),
            (CmpKind::Eq, _, false) => {
                let mut s = IntervalSet::full(ew);
                s.remove_value(c);
                s
            }
            (CmpKind::Ult, SidePos::Left, _) => {
                if c == 0 {
                    return Some((Step::Conflict, var));
                }
                IntervalSet::range(ew, 0, c - 1)
            }
            (CmpKind::Ult, SidePos::Right, _) => {
                if c >= ew.max_unsigned() {
                    return Some((Step::Conflict, var));
                }
                IntervalSet::range(ew, c + 1, ew.max_unsigned())
            }
            (CmpKind::Ule, SidePos::Left, _) => IntervalSet::range(ew, 0, c),
            (CmpKind::Ule, SidePos::Right, _) => IntervalSet::range(ew, c, ew.max_unsigned()),
        };
        // Stripe budget: one interval per (slice interval × high assignment).
        const MAX_STRIPES: u64 = 4096;
        let high_count = if high_bits >= 63 {
            return None;
        } else {
            1u64 << high_bits
        };
        let stripe_count = high_count.checked_mul(slice_values.intervals().len() as u64)?;
        if stripe_count > MAX_STRIPES {
            return None;
        }

        let mut allowed = IntervalSet::empty(vw);
        let slice_shift = u32::from(lo);
        let low_mask = (1u64 << slice_shift).wrapping_sub(1);
        for h in 0..high_count {
            let high = h << (slice_shift + ew.bits());
            for iv in slice_values.intervals() {
                let lo_bound = high | (iv.lo << slice_shift);
                let hi_bound = high | (iv.hi << slice_shift) | low_mask;
                allowed.union(&IntervalSet::range(vw, lo_bound, hi_bound));
            }
        }
        if allowed.is_empty() {
            return Some((Step::Conflict, var));
        }
        Some((state.restrict(self.pool, var, &allowed), var))
    }

    /// Restricts an affine side against a constant.
    ///
    /// `side` says whether the affine term is the left operand. For `Eq` the
    /// position is irrelevant; for orderings it decides the direction.
    #[allow(clippy::too_many_arguments)]
    fn restrict_affine(
        &mut self,
        state: &mut State,
        av: crate::atom::AffineView,
        kind: CmpKind,
        side: SidePos,
        c: u64,
        width: Width,
        positive: bool,
    ) -> Step {
        let term_values = match (kind, side, positive) {
            (CmpKind::Eq, _, true) => IntervalSet::singleton(width, c),
            (CmpKind::Eq, _, false) => {
                let mut s = IntervalSet::full(width);
                s.remove_value(c);
                s
            }
            // Orderings are always positive after NNF.
            (CmpKind::Ult, SidePos::Left, _) => {
                // term <u c
                if c == 0 {
                    return Step::Conflict;
                }
                IntervalSet::range(width, 0, c - 1)
            }
            (CmpKind::Ult, SidePos::Right, _) => {
                // c <u term
                if c == width.max_unsigned() {
                    return Step::Conflict;
                }
                IntervalSet::range(width, c + 1, width.max_unsigned())
            }
            (CmpKind::Ule, SidePos::Left, _) => IntervalSet::range(width, 0, c),
            (CmpKind::Ule, SidePos::Right, _) => IntervalSet::range(width, c, width.max_unsigned()),
        };
        let var_values = av.inverse_image(&term_values);
        if var_values.is_empty() {
            return Step::Conflict;
        }
        state.restrict(self.pool, av.var, &var_values)
    }

    fn pick_clause(&self, state: &State) -> Option<usize> {
        state
            .clauses
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.live.len())
            .map(|(i, _)| i)
    }

    /// Chooses the variable with the smallest domain among those mentioned by
    /// deferred atoms.
    fn pick_deferred_var(&self, state: &State) -> Option<VarId> {
        let mut best: Option<(u64, VarId)> = None;
        for (lit, _) in &state.deferred {
            for v in self.pool.vars_of(lit.term) {
                if state.value_of(v).is_some() {
                    continue;
                }
                let size = state.domain_of(self.pool, v).len();
                if best.is_none_or(|(s, _)| size < s) {
                    best = Some((size, v));
                }
            }
        }
        best.map(|(_, v)| v)
    }

    fn enumerate(&mut self, state: &State, var: VarId) -> SearchOut {
        let domain = state.domain_of(self.pool, var);
        let width = domain.width();
        let exhaustive = domain.len() <= self.cfg.enum_limit;

        let candidates: Vec<u64> = if exhaustive {
            domain.iter().collect()
        } else {
            let mut cands = Vec::with_capacity(self.cfg.sample_count + 4);
            if let (Some(lo), Some(hi)) = (domain.min(), domain.max()) {
                cands.push(lo);
                cands.push(hi);
                for _ in 0..self.cfg.sample_count {
                    let raw = self.rng.gen::<u64>() & width.mask();
                    // Walk up from the raw sample to the next in-domain value.
                    let mut probe = raw;
                    for _ in 0..64 {
                        if domain.contains(probe) {
                            cands.push(probe);
                            break;
                        }
                        probe = width.truncate(probe.wrapping_add(1));
                    }
                }
            }
            cands.sort_unstable();
            cands.dedup();
            cands
        };

        let mut saw_unknown = false;
        let mut incomplete = false;
        let mut cases = Vec::with_capacity(candidates.len());
        for value in candidates {
            if self.budget == 0 {
                return SearchOut::Unknown;
            }
            self.budget -= 1;
            self.stats.decisions += 1;
            let mut branch = state.clone();
            let single = IntervalSet::singleton(width, value);
            match branch.restrict(self.pool, var, &single) {
                Step::Conflict => {
                    // Unreachable for in-domain values; never claim a full
                    // enumeration if it somehow happens.
                    incomplete = true;
                    continue;
                }
                Step::Progress(_) => {}
            }
            match self.search(&mut branch, Vec::new()) {
                SearchOut::Sat(m) => return SearchOut::Sat(m),
                SearchOut::Unsat(node) => cases.push(node),
                SearchOut::Unknown => saw_unknown = true,
            }
        }
        if exhaustive && !saw_unknown && !incomplete {
            SearchOut::Unsat(ProofNode::SplitVal {
                var: self.pool.var_fp(var),
                cases,
            })
        } else {
            SearchOut::Unknown
        }
    }

    /// All constraints are interval-consistent: extract a model and verify it.
    fn finish(&mut self, state: &State) -> SearchOut {
        let mut model = Model::new();
        let mut relevant: Vec<VarId> = Vec::new();
        for &a in &self.assertions {
            self.pool.collect_vars(a, &mut relevant);
        }
        for v in relevant {
            let value = state.domain_of(self.pool, v).min().unwrap_or(0);
            model.assign(v, value);
        }
        for &a in &self.assertions.clone() {
            if model.eval(self.pool, a) != Some(1) {
                self.stats.verification_failures += 1;
                return SearchOut::Unknown;
            }
        }
        SearchOut::Sat(Arc::new(model))
    }
}

/// Folds a propagation trail around a refutation: steps become `Derive`
/// wrappers, unit propagations become `SplitOr` nodes whose survivor case
/// is the continuation.
fn fold_trail(trail: Vec<Event>, mut node: ProofNode) -> ProofNode {
    fn flush(steps: &mut Vec<ProofStep>, node: ProofNode) -> ProofNode {
        if steps.is_empty() {
            node
        } else {
            steps.reverse();
            ProofNode::Derive {
                steps: std::mem::take(steps),
                then: Box::new(node),
            }
        }
    }
    // Reverse walk: later events sit deeper in the tree.
    let mut steps: Vec<ProofStep> = Vec::new();
    for ev in trail.into_iter().rev() {
        match ev {
            Event::Step(s) => steps.push(s),
            Event::Unit {
                or_ref,
                n_parts,
                survivor,
                dead,
            } => {
                node = flush(&mut steps, node);
                let mut cases: Vec<Option<ProofNode>> = (0..n_parts).map(|_| None).collect();
                for (i, n) in dead {
                    cases[i] = Some(n);
                }
                cases[survivor] = Some(node);
                node = ProofNode::SplitOr {
                    or: or_ref,
                    cases: cases
                        .into_iter()
                        .map(|c| c.expect("unit event covers every disjunct"))
                        .collect(),
                };
            }
        }
    }
    flush(&mut steps, node)
}

/// Finds the assertion whose ref range contains `r` (ranges are contiguous).
fn locate(ranges: &[(u32, u32)], r: u32) -> usize {
    ranges.partition_point(|&(start, _)| start <= r) - 1
}

/// Extracts the unsat core (assertions the proof references) and rewrites
/// the proof's refs against the context built from the core alone.
fn extract_certificate(
    pool: &TermPool,
    assertions: &[TermId],
    ranges: &[(u32, u32)],
    total: u32,
    node: ProofNode,
) -> Certificate {
    fn visit(node: &ProofNode, f: &mut impl FnMut(u32)) {
        match node {
            ProofNode::Derive { steps, then } => {
                for s in steps {
                    match s {
                        ProofStep::Restrict { just, .. } | ProofStep::Merge { just } => f(*just),
                    }
                }
                visit(then, f);
            }
            ProofNode::SplitOr { or, cases } => {
                f(*or);
                for c in cases {
                    visit(c, f);
                }
            }
            ProofNode::SplitVal { cases, .. } => {
                for c in cases {
                    visit(c, f);
                }
            }
            ProofNode::Falsified { just }
            | ProofNode::EmptyRestrict { just, .. }
            | ProofNode::EmptyMerge { just } => f(*just),
            ProofNode::FalseCore { .. } | ProofNode::Admitted => {}
        }
    }
    fn remap(node: ProofNode, f: &impl Fn(u32) -> u32) -> ProofNode {
        match node {
            ProofNode::Derive { steps, then } => ProofNode::Derive {
                steps: steps
                    .into_iter()
                    .map(|s| match s {
                        ProofStep::Restrict { just, var } => {
                            ProofStep::Restrict { just: f(just), var }
                        }
                        ProofStep::Merge { just } => ProofStep::Merge { just: f(just) },
                    })
                    .collect(),
                then: Box::new(remap(*then, f)),
            },
            ProofNode::SplitOr { or, cases } => ProofNode::SplitOr {
                or: f(or),
                cases: cases.into_iter().map(|c| remap(c, f)).collect(),
            },
            ProofNode::SplitVal { var, cases } => ProofNode::SplitVal {
                var,
                cases: cases.into_iter().map(|c| remap(c, f)).collect(),
            },
            ProofNode::Falsified { just } => ProofNode::Falsified { just: f(just) },
            ProofNode::EmptyRestrict { just, var } => {
                ProofNode::EmptyRestrict { just: f(just), var }
            }
            ProofNode::EmptyMerge { just } => ProofNode::EmptyMerge { just: f(just) },
            other => other,
        }
    }

    let mut used = vec![false; assertions.len()];
    visit(&node, &mut |r| {
        if r < total {
            used[locate(ranges, r)] = true;
        }
    });
    let mut core = Vec::new();
    let mut new_start = vec![0u32; assertions.len()];
    let mut kept_total = 0u32;
    for (k, &u) in used.iter().enumerate() {
        if u {
            new_start[k] = kept_total;
            kept_total += ranges[k].1 - ranges[k].0;
            core.push(pool.term_fp(assertions[k]));
        }
    }
    // Root refs compact onto the kept prefix; branch-local refs (≥ total)
    // shift down by the dropped entry count.
    let shift = total - kept_total;
    let proof = remap(node, &|r| {
        if r < total {
            let k = locate(ranges, r);
            new_start[k] + (r - ranges[k].0)
        } else {
            r - shift
        }
    });
    let steps = proof.size();
    Certificate { core, proof, steps }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CmpKind {
    Eq,
    Ult,
    Ule,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SidePos {
    Left,
    Right,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    fn check(pool: &mut TermPool, assertions: &[TermId]) -> SatResult {
        solve(pool, assertions, &cfg()).0
    }

    #[test]
    fn simple_interval_sat() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let a = {
            let c = p.constant(5, Width::W8);
            p.ult(c, x)
        };
        let b = {
            let c = p.constant(10, Width::W8);
            p.ult(x, c)
        };
        let r = check(&mut p, &[a, b]);
        let m = r.model().expect("sat");
        let v = m.value(p.as_var(x).unwrap()).unwrap();
        assert!(v > 5 && v < 10, "got {v}");
    }

    #[test]
    fn contradictory_intervals_unsat() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let five = p.constant(5, Width::W8);
        let a = p.ult(x, five);
        let b = p.ult(five, x);
        assert!(check(&mut p, &[a, b]).is_unsat());
    }

    #[test]
    fn disequality_chain() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let two = p.constant(2, Width::W8);
        let three = p.constant(3, Width::W8);
        let lt = p.ult(x, three);
        let ne0 = {
            let c = p.constant(0, Width::W8);
            p.ne(x, c)
        };
        let ne1 = {
            let c = p.constant(1, Width::W8);
            p.ne(x, c)
        };
        let r = check(&mut p, &[lt, ne0, ne1]);
        let m = r.model().expect("x == 2 remains");
        assert_eq!(m.value(p.as_var(x).unwrap()), Some(2));
        let ne2 = p.ne(x, two);
        assert!(check(&mut p, &[lt, ne0, ne1, ne2]).is_unsat());
    }

    #[test]
    fn var_equality_merges() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W16);
        let y = p.fresh("y", Width::W16);
        let eq = p.eq(x, y);
        let c10 = p.constant(10, Width::W16);
        let c20 = p.constant(20, Width::W16);
        let a = p.ult(x, c20); // x < 20
        let b = p.ult(c10, y); // y > 10
        let r = check(&mut p, &[eq, a, b]);
        let m = r.model().expect("sat");
        let xv = m.value(p.as_var(x).unwrap()).unwrap();
        let yv = m.value(p.as_var(y).unwrap()).unwrap();
        assert_eq!(xv, yv);
        assert!(xv > 10 && xv < 20);
    }

    #[test]
    fn equality_conflict_via_merge() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let y = p.fresh("y", Width::W8);
        let eq = p.eq(x, y);
        let c5 = p.constant(5, Width::W8);
        let c9 = p.constant(9, Width::W8);
        let a = p.eq(x, c5);
        let b = p.eq(y, c9);
        assert!(check(&mut p, &[eq, a, b]).is_unsat());
    }

    #[test]
    fn signed_comparison_end_to_end() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W32);
        let zero = p.constant(0, Width::W32);
        let hundred = p.constant(100, Width::W32);
        // x <s 0 and x <s 100: satisfied by negative values.
        let a = p.slt(x, zero);
        let b = p.slt(x, hundred);
        let r = check(&mut p, &[a, b]);
        let m = r.model().expect("negative x exists");
        let v = m.value(p.as_var(x).unwrap()).unwrap();
        assert!(Width::W32.to_signed(v) < 0, "got {v}");
        // x <s 0 and x >=s 0 is unsat.
        let c = p.sge(x, zero);
        assert!(check(&mut p, &[a, c]).is_unsat());
    }

    #[test]
    fn disjunction_splits() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let c1 = p.constant(1, Width::W8);
        let c2 = p.constant(2, Width::W8);
        let e1 = p.eq(x, c1);
        let e2 = p.eq(x, c2);
        let either = p.or(e1, e2);
        let not1 = p.not(e1);
        let r = check(&mut p, &[either, not1]);
        let m = r.model().expect("x == 2");
        assert_eq!(m.value(p.as_var(x).unwrap()), Some(2));
        let not2 = p.not(e2);
        assert!(check(&mut p, &[either, not1, not2]).is_unsat());
    }

    #[test]
    fn opaque_fun_generate_and_test() {
        let mut p = TermPool::new();
        // parity(x) == 1 with x < 4: solver must enumerate x.
        let parity = p.register_fun("parity", Width::W8, |args| args[0] % 2);
        let x = p.fresh("x", Width::W8);
        let four = p.constant(4, Width::W8);
        let lt = p.ult(x, four);
        let app = p.apply(parity, vec![x]);
        let one = p.constant(1, Width::W8);
        let odd = p.eq(app, one);
        let r = check(&mut p, &[lt, odd]);
        let m = r.model().expect("1 or 3 works");
        let v = m.value(p.as_var(x).unwrap()).unwrap();
        assert!(v == 1 || v == 3);
    }

    #[test]
    fn opaque_fun_unsat() {
        let mut p = TermPool::new();
        let always7 = p.register_fun("const7", Width::W8, |_| 7);
        let x = p.fresh("x", Width::W8);
        let app = p.apply(always7, vec![x]);
        let eight = p.constant(8, Width::W8);
        let eq = p.eq(app, eight);
        // Exhaustive over 256 values: provably unsat.
        assert!(check(&mut p, &[eq]).is_unsat());
    }

    #[test]
    fn fun_forcing_output_var() {
        let mut p = TermPool::new();
        let double = p.register_fun("double", Width::W16, |args| args[0] * 2);
        let x = p.fresh("x", Width::W8);
        let y = p.fresh("y", Width::W16);
        let wide_x_input = x;
        let app = p.apply(double, vec![wide_x_input]);
        let eq = p.eq(y, app);
        let c3 = p.constant(3, Width::W8);
        let x_is_3 = p.eq(x, c3);
        let r = check(&mut p, &[eq, x_is_3]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(p.as_var(y).unwrap()), Some(6));
    }

    #[test]
    fn cross_width_zext_constraint() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let wide = p.zext(x, Width::W32);
        let c300 = p.constant(300, Width::W32);
        // zext(x) > 300 is unsat at 8 bits.
        let gt = p.ult(c300, wide);
        assert!(check(&mut p, &[gt]).is_unsat());
        // zext(x) > 200 is sat.
        let c200 = p.constant(200, Width::W32);
        let gt2 = p.ult(c200, wide);
        let r = check(&mut p, &[gt2]);
        let m = r.model().expect("sat");
        assert!(m.value(p.as_var(x).unwrap()).unwrap() > 200);
    }

    #[test]
    fn large_domain_interval_only_no_enumeration() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W64);
        let lo = p.constant(1_000_000, Width::W64);
        let a = p.ult(lo, x);
        let (r, stats) = solve(&mut p, &[a], &cfg());
        assert!(r.is_sat());
        // Interval reasoning alone should solve this: no value enumeration.
        assert_eq!(stats.decisions, 0);
    }

    #[test]
    fn empty_query_is_sat() {
        let mut p = TermPool::new();
        assert!(check(&mut p, &[]).is_sat());
    }

    #[test]
    fn exhausted_budget_returns_unknown() {
        let mut p = TermPool::new();
        // A query needing case splits, with a budget too small to finish.
        let x = p.fresh("x", Width::W8);
        let parity = p.register_fun("parity", Width::W8, |a| a[0] % 2);
        let app = p.apply(parity, vec![x]);
        let one = p.constant(1, Width::W8);
        let odd = p.eq(app, one);
        let tiny = SolverConfig {
            max_decisions: 1,
            ..SolverConfig::default()
        };
        let (r, stats) = solve(&mut p, &[odd], &tiny);
        assert!(
            matches!(r, SatResult::Unknown | SatResult::Sat(_)),
            "must never claim Unsat under budget exhaustion: {r:?}"
        );
        assert!(stats.decisions <= 1);
    }

    #[test]
    fn extract_and_concat_via_enumeration() {
        let mut p = TermPool::new();
        // high byte of x == 0xAB and low byte == 0xCD pins x = 0xABCD.
        let x = p.fresh("x", Width::W16);
        let hi = p.extract(x, 8, Width::W8);
        let lo = p.extract(x, 0, Width::W8);
        let ab = p.constant(0xAB, Width::W8);
        let cd = p.constant(0xCD, Width::W8);
        let e1 = p.eq(hi, ab);
        let e2 = p.eq(lo, cd);
        let r = check(&mut p, &[e1, e2]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(p.as_var(x).unwrap()), Some(0xABCD));
        // Contradictory byte constraints are unsat.
        let e3 = p.ne(lo, cd);
        assert!(check(&mut p, &[e1, e2, e3]).is_unsat());
    }

    #[test]
    fn bool_width_operations() {
        let mut p = TermPool::new();
        let a = p.fresh("a", Width::BOOL);
        let b = p.fresh("b", Width::BOOL);
        let both = p.and(a, b);
        let r = check(&mut p, &[both]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(p.as_var(a).unwrap()), Some(1));
        assert_eq!(m.value(p.as_var(b).unwrap()), Some(1));
        let na = p.not(a);
        assert!(check(&mut p, &[both, na]).is_unsat());
    }

    #[test]
    fn sext_constraint_solved_by_enumeration() {
        let mut p = TermPool::new();
        // sext8→16(x) == 0xFFFF ⟺ x == 0xFF.
        let x = p.fresh("x", Width::W8);
        let wide = p.sext(x, Width::W16);
        let all_ones = p.constant(0xFFFF, Width::W16);
        let eq = p.eq(wide, all_ones);
        let r = check(&mut p, &[eq]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(p.as_var(x).unwrap()), Some(0xFF));
    }

    #[test]
    fn ite_boolean_expansion() {
        let mut p = TermPool::new();
        let c = p.fresh("c", Width::BOOL);
        let x = p.fresh("x", Width::W8);
        let c1 = p.constant(1, Width::W8);
        let c2 = p.constant(2, Width::W8);
        let e1 = p.eq(x, c1);
        let e2 = p.eq(x, c2);
        let ite = p.ite(c, e1, e2);
        let ctrue = c;
        let r = check(&mut p, &[ite, ctrue]);
        let m = r.model().expect("sat");
        assert_eq!(m.value(p.as_var(x).unwrap()), Some(1));
    }

    #[test]
    fn unsat_carries_certificate_with_core() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let five = p.constant(5, Width::W8);
        let a = p.ult(x, five);
        let b = p.ult(five, x);
        let r = check(&mut p, &[a, b]);
        let cert = r.certificate().expect("unsat has a certificate");
        assert!(!cert.core.is_empty());
        let fps: Vec<u128> = [a, b].iter().map(|&t| p.term_fp(t)).collect();
        assert!(
            cert.core.iter().all(|fp| fps.contains(fp)),
            "core fingerprints come from the input assertions"
        );
        assert!(cert.steps > 0);
    }

    #[test]
    fn certificate_core_drops_unused_assertions() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let y = p.fresh("y", Width::W8);
        let five = p.constant(5, Width::W8);
        let a = p.ult(x, five);
        let b = p.ult(five, x);
        // y is never mentioned by the conflict; a deferred/no-op assertion
        // about it must not enter the core.
        let parity = p.register_fun("parity", Width::W8, |args| args[0] % 2);
        let papp = p.apply(parity, vec![y]);
        let zero = p.constant(0, Width::W8);
        let unrelated = p.eq(papp, zero);
        let r = check(&mut p, &[unrelated, a, b]);
        let cert = r.certificate().expect("unsat");
        let unrelated_fp = p.term_fp(unrelated);
        assert!(
            !cert.core.contains(&unrelated_fp),
            "unused opaque assertion must be dropped from the core"
        );
        assert_eq!(cert.core.len(), 2);
    }

    #[test]
    fn false_assertion_yields_false_core_certificate() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let ltx = p.ult(x, x); // folds to false at construction
        let c9 = p.constant(9, Width::W8);
        let other = p.ult(x, c9);
        let r = check(&mut p, &[other, ltx]);
        let cert = r.certificate().expect("unsat");
        assert_eq!(cert.core, vec![p.term_fp(ltx)]);
        assert!(matches!(cert.proof, ProofNode::FalseCore { core: 0 }));
    }
}
