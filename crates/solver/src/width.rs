//! Fixed bit-widths for bitvector terms.
//!
//! Every term in the solver has a [`Width`] between 1 and 64 bits. Width 1 is
//! the boolean width. All values are stored as `u64` and are kept truncated
//! to their width; signed interpretations use two's complement at that width.

use std::fmt;

/// A bitvector width in the range `1..=64`.
///
/// # Examples
///
/// ```
/// use achilles_solver::Width;
///
/// let w = Width::W8;
/// assert_eq!(w.bits(), 8);
/// assert_eq!(w.mask(), 0xff);
/// assert_eq!(w.truncate(0x1_23), 0x23);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Width(u8);

impl Width {
    /// Boolean width (1 bit).
    pub const BOOL: Width = Width(1);
    /// 8-bit width.
    pub const W8: Width = Width(8);
    /// 16-bit width.
    pub const W16: Width = Width(16);
    /// 32-bit width.
    pub const W32: Width = Width(32);
    /// 64-bit width.
    pub const W64: Width = Width(64);

    /// Creates a width of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    pub fn new(bits: u8) -> Width {
        assert!(
            (1..=64).contains(&bits),
            "width must be in 1..=64, got {bits}"
        );
        Width(bits)
    }

    /// Number of bits.
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }

    /// All-ones mask for this width.
    pub fn mask(self) -> u64 {
        if self.0 == 64 {
            u64::MAX
        } else {
            (1u64 << self.0) - 1
        }
    }

    /// Truncates `v` to this width.
    pub fn truncate(self, v: u64) -> u64 {
        v & self.mask()
    }

    /// Largest unsigned value representable at this width.
    pub fn max_unsigned(self) -> u64 {
        self.mask()
    }

    /// Largest signed (two's complement) value at this width.
    pub fn max_signed(self) -> i64 {
        (self.mask() >> 1) as i64
    }

    /// Smallest signed (two's complement) value at this width.
    pub fn min_signed(self) -> i64 {
        -(self.max_signed()) - 1
    }

    /// The sign bit for this width (e.g. `0x80` at width 8).
    pub fn sign_bit(self) -> u64 {
        1u64 << (self.0 - 1)
    }

    /// Interprets the (truncated) value `v` as a signed integer.
    ///
    /// ```
    /// use achilles_solver::Width;
    /// assert_eq!(Width::W8.to_signed(0xff), -1);
    /// assert_eq!(Width::W8.to_signed(0x7f), 127);
    /// ```
    pub fn to_signed(self, v: u64) -> i64 {
        let v = self.truncate(v);
        if v & self.sign_bit() != 0 {
            // v - 2^w computed in wrapping arithmetic to avoid overflow at
            // width 64.
            v.wrapping_sub(self.mask()).wrapping_sub(1) as i64
        } else {
            v as i64
        }
    }

    /// Encodes a signed integer at this width (two's complement, truncated).
    ///
    /// ```
    /// use achilles_solver::Width;
    /// assert_eq!(Width::W8.from_signed(-1), 0xff);
    /// ```
    pub fn from_signed(self, v: i64) -> u64 {
        self.truncate(v as u64)
    }

    /// Number of distinct values at this width, or `None` for width 64.
    pub fn cardinality(self) -> Option<u64> {
        if self.0 == 64 {
            None
        } else {
            Some(1u64 << self.0)
        }
    }
}

impl fmt::Debug for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_and_truncate() {
        assert_eq!(Width::BOOL.mask(), 1);
        assert_eq!(Width::W8.mask(), 0xff);
        assert_eq!(Width::W16.mask(), 0xffff);
        assert_eq!(Width::W64.mask(), u64::MAX);
        assert_eq!(Width::W8.truncate(0x123), 0x23);
        assert_eq!(Width::W64.truncate(u64::MAX), u64::MAX);
    }

    #[test]
    fn signed_round_trip() {
        for w in [Width::W8, Width::W16, Width::W32, Width::W64] {
            for s in [-1i64, 0, 1, w.max_signed(), w.min_signed()] {
                assert_eq!(w.to_signed(w.from_signed(s)), s, "width {w}");
            }
        }
    }

    #[test]
    fn signed_bounds() {
        assert_eq!(Width::W8.max_signed(), 127);
        assert_eq!(Width::W8.min_signed(), -128);
        assert_eq!(Width::W8.sign_bit(), 0x80);
        assert_eq!(Width::BOOL.max_signed(), 0);
        assert_eq!(Width::BOOL.min_signed(), -1);
    }

    #[test]
    fn cardinality() {
        assert_eq!(Width::W8.cardinality(), Some(256));
        assert_eq!(Width::BOOL.cardinality(), Some(2));
        assert_eq!(Width::W64.cardinality(), None);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_panics() {
        let _ = Width::new(0);
    }
}
