//! Formula normalization (negation normal form) and affine term views.
//!
//! The search engine does not operate on raw boolean terms. Each asserted
//! term is first converted to a [`Formula`] tree in negation normal form:
//! negation is pushed down to the leaves, `not <u` / `not <=u` are rewritten
//! to their dual comparisons, and boolean `ite` is expanded. The leaves are
//! *literals*: a comparison or boolean term asserted positively or
//! negatively.
//!
//! [`affine_view`] recognizes terms of the shape `zext(var) + constant`
//! (modulo the term width), which is the fragment the interval propagator can
//! invert exactly.

use crate::interval::IntervalSet;
use crate::term::{Op, TermId, TermPool, VarId};
use crate::width::Width;

/// A formula in negation normal form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// Trivially true.
    True,
    /// Trivially false.
    False,
    /// The boolean term holds.
    Lit(Literal),
    /// All sub-formulas hold.
    And(Vec<Formula>),
    /// At least one sub-formula holds.
    Or(Vec<Formula>),
}

/// A possibly negated boolean term.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Literal {
    /// The boolean term.
    pub term: TermId,
    /// `true` to assert the term, `false` to assert its negation.
    pub positive: bool,
}

impl Literal {
    /// A positive literal.
    pub fn pos(term: TermId) -> Literal {
        Literal {
            term,
            positive: true,
        }
    }

    /// A negative literal.
    pub fn neg(term: TermId) -> Literal {
        Literal {
            term,
            positive: false,
        }
    }

    /// The same literal with flipped polarity.
    pub fn flipped(self) -> Literal {
        Literal {
            term: self.term,
            positive: !self.positive,
        }
    }
}

/// Converts a boolean term to negation normal form.
///
/// `positive == false` converts the *negation* of `t`.
///
/// # Examples
///
/// ```
/// use achilles_solver::{TermPool, Width, nnf, Formula};
///
/// let mut pool = TermPool::new();
/// let x = pool.fresh("x", Width::W8);
/// let c = pool.constant(5, Width::W8);
/// let lt = pool.ult(x, c);
/// let f = nnf(&mut pool, lt, false); // not (x < 5)  =>  5 <= x
/// assert!(matches!(f, Formula::Lit(_)));
/// ```
pub fn nnf(pool: &mut TermPool, t: TermId, positive: bool) -> Formula {
    debug_assert_eq!(pool.width(t), Width::BOOL, "nnf needs a boolean term");
    let node = pool.node(t).clone();
    match node.op {
        Op::Const(v) => {
            if (v != 0) == positive {
                Formula::True
            } else {
                Formula::False
            }
        }
        Op::Not => nnf(pool, node.args[0], !positive),
        Op::And => {
            let parts: Vec<Formula> = node.args.iter().map(|&a| nnf(pool, a, positive)).collect();
            if positive {
                mk_and(parts)
            } else {
                mk_or(parts)
            }
        }
        Op::Or => {
            let parts: Vec<Formula> = node.args.iter().map(|&a| nnf(pool, a, positive)).collect();
            if positive {
                mk_or(parts)
            } else {
                mk_and(parts)
            }
        }
        Op::Ult => {
            if positive {
                Formula::Lit(Literal::pos(t))
            } else {
                // not (a <u b)  =>  b <=u a
                let dual = pool.ule(node.args[1], node.args[0]);
                nnf(pool, dual, true)
            }
        }
        Op::Ule => {
            if positive {
                Formula::Lit(Literal::pos(t))
            } else {
                // not (a <=u b)  =>  b <u a
                let dual = pool.ult(node.args[1], node.args[0]);
                nnf(pool, dual, true)
            }
        }
        Op::Ite if node.width == Width::BOOL => {
            // ite(c, a, b)  =>  (c and a) or (not c and b)
            let (c, a, b) = (node.args[0], node.args[1], node.args[2]);
            let ca = nnf_pair(pool, c, true, a, positive);
            let cb = nnf_pair(pool, c, false, b, positive);
            mk_or(vec![ca, cb])
        }
        _ => Formula::Lit(Literal { term: t, positive }),
    }
}

fn nnf_pair(pool: &mut TermPool, c: TermId, cpos: bool, x: TermId, xpos: bool) -> Formula {
    let fc = nnf(pool, c, cpos);
    let fx = nnf(pool, x, xpos);
    mk_and(vec![fc, fx])
}

fn mk_and(parts: Vec<Formula>) -> Formula {
    let mut out = Vec::with_capacity(parts.len());
    for p in parts {
        match p {
            Formula::True => {}
            Formula::False => return Formula::False,
            Formula::And(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Formula::True,
        1 => out.pop().expect("len checked"),
        _ => Formula::And(out),
    }
}

fn mk_or(parts: Vec<Formula>) -> Formula {
    let mut out = Vec::with_capacity(parts.len());
    for p in parts {
        match p {
            Formula::False => {}
            Formula::True => return Formula::True,
            Formula::Or(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Formula::False,
        1 => out.pop().expect("len checked"),
        _ => Formula::Or(out),
    }
}

/// A term of the shape `(zext(var) + offset) mod 2^term_width`.
///
/// The propagator can invert this map exactly: the inverse image of an
/// interval set `S` is `(S - offset) ∩ [0, 2^var_width - 1]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AffineView {
    /// The underlying variable.
    pub var: VarId,
    /// Width of the variable.
    pub var_width: Width,
    /// Width of the whole term (`>= var_width`).
    pub term_width: Width,
    /// Constant offset, truncated to `term_width`.
    pub offset: u64,
}

impl AffineView {
    /// Inverse image of a set of term values as a set of variable values.
    pub fn inverse_image(&self, term_values: &IntervalSet) -> IntervalSet {
        debug_assert_eq!(term_values.width(), self.term_width);
        let shifted = term_values.sub_const(self.offset);
        // Keep only values representable at the variable width, then
        // reinterpret at that width.
        let mut out = IntervalSet::empty(self.var_width);
        let max = self.var_width.max_unsigned();
        for iv in shifted.intervals() {
            if iv.lo > max {
                continue;
            }
            let hi = iv.hi.min(max);
            let piece = IntervalSet::range(self.var_width, iv.lo, hi);
            out.union(&piece);
        }
        out
    }

    /// Forward image of a single variable value.
    pub fn apply(&self, var_value: u64) -> u64 {
        self.term_width
            .truncate(var_value.wrapping_add(self.offset))
    }
}

/// Recognizes `(zext(var) + constant)`-shaped terms.
///
/// Supported constructors: `Var`, `Add`/`Sub` with one constant side,
/// `ZExt` directly over a variable, and `BitXor` with the sign-bit constant
/// (equivalent to adding the sign bit).
pub fn affine_view(pool: &TermPool, t: TermId) -> Option<AffineView> {
    affine_view_with(pool, t, &|_| None)
}

/// Like [`affine_view`], but treats variables assigned by `lookup` as
/// constants, so e.g. `x + y` becomes affine in `y` once `x` is pinned.
pub fn affine_view_with(
    pool: &TermPool,
    t: TermId,
    lookup: &dyn Fn(VarId) -> Option<u64>,
) -> Option<AffineView> {
    let node = pool.node(t);
    let w = node.width;
    // A side whose variables are all pinned behaves as a constant; the
    // caller is expected to have handled the fully-constant case already.
    let side_const = |s: TermId| pool.eval_with(s, lookup);
    match node.op {
        Op::Var(v) if lookup(v).is_none() => Some(AffineView {
            var: v,
            var_width: w,
            term_width: w,
            offset: 0,
        }),
        Op::Add => {
            let (a, b) = (node.args[0], node.args[1]);
            if let Some(c) = side_const(b) {
                let base = affine_view_with(pool, a, lookup)?;
                Some(AffineView {
                    offset: w.truncate(base.offset.wrapping_add(c)),
                    ..base
                })
            } else if let Some(c) = side_const(a) {
                let base = affine_view_with(pool, b, lookup)?;
                Some(AffineView {
                    offset: w.truncate(base.offset.wrapping_add(c)),
                    ..base
                })
            } else {
                None
            }
        }
        Op::Sub => {
            let (a, b) = (node.args[0], node.args[1]);
            let c = side_const(b)?;
            let base = affine_view_with(pool, a, lookup)?;
            Some(AffineView {
                offset: w.truncate(base.offset.wrapping_sub(c)),
                ..base
            })
        }
        Op::BitXor => {
            let (a, b) = (node.args[0], node.args[1]);
            let (inner, c) = if let Some(c) = side_const(b) {
                (a, c)
            } else if let Some(c) = side_const(a) {
                (b, c)
            } else {
                return None;
            };
            // Flipping only the sign bit equals adding it (mod 2^w).
            if c != w.sign_bit() {
                return None;
            }
            let base = affine_view_with(pool, inner, lookup)?;
            Some(AffineView {
                offset: w.truncate(base.offset.wrapping_add(c)),
                ..base
            })
        }
        Op::ZExt => {
            // Only zext directly over a variable: zext(x + c) != zext(x) + c.
            let inner = node.args[0];
            let v = pool.as_var(inner)?;
            if lookup(v).is_some() {
                return None;
            }
            Some(AffineView {
                var: v,
                var_width: pool.width(inner),
                term_width: w,
                offset: 0,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nnf_pushes_negation_through_and() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let y = p.fresh("y", Width::W8);
        let five = p.constant(5, Width::W8);
        let a = p.ult(x, five);
        let b = p.eq(y, five);
        let both = p.and(a, b);
        let f = nnf(&mut p, both, false);
        // not (x<5 and y==5) => (5<=x) or (y!=5)
        match f {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                let has_dual_cmp = parts.iter().any(|q| match q {
                    Formula::Lit(l) => l.positive && matches!(p.node(l.term).op, Op::Ule),
                    _ => false,
                });
                let has_neg_eq = parts.iter().any(|q| match q {
                    Formula::Lit(l) => !l.positive && matches!(p.node(l.term).op, Op::Eq),
                    _ => false,
                });
                assert!(has_dual_cmp && has_neg_eq);
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn nnf_constants_collapse() {
        let mut p = TermPool::new();
        let t = p.tt();
        assert_eq!(nnf(&mut p, t, true), Formula::True);
        assert_eq!(nnf(&mut p, t, false), Formula::False);
        let x = p.fresh("x", Width::BOOL);
        let tt = p.tt();
        let mix = p.and(x, tt);
        assert_eq!(mix, x); // simplification already dropped the constant
        assert!(matches!(nnf(&mut p, mix, true), Formula::Lit(_)));
    }

    #[test]
    fn nnf_flattens_nested_connectives() {
        let mut p = TermPool::new();
        let lits: Vec<TermId> = (0..4)
            .map(|i| p.fresh(&format!("b{i}"), Width::BOOL))
            .collect();
        let ab = p.and(lits[0], lits[1]);
        let abc = p.and(ab, lits[2]);
        let abcd = p.and(abc, lits[3]);
        match nnf(&mut p, abcd, true) {
            Formula::And(parts) => assert_eq!(parts.len(), 4),
            other => panic!("expected flat And, got {other:?}"),
        }
    }

    #[test]
    fn affine_view_of_var_and_offsets() {
        let mut p = TermPool::new();
        let xv = p.fresh_var("x", Width::W8);
        let x = p.var(xv);
        let c3 = p.constant(3, Width::W8);
        let t = p.add(x, c3);
        let av = affine_view(&p, t).unwrap();
        assert_eq!(av.var, xv);
        assert_eq!(av.offset, 3);
        let t2 = p.sub(t, c3);
        let av2 = affine_view(&p, t2).unwrap();
        assert_eq!((av2.var, av2.offset), (xv, 0)); // offsets cancel
        let c250 = p.constant(250, Width::W8);
        let t3 = p.add(t, c250);
        let av3 = affine_view(&p, t3).unwrap();
        assert_eq!(av3.offset, 253);
    }

    #[test]
    fn affine_view_through_zext() {
        let mut p = TermPool::new();
        let xv = p.fresh_var("x", Width::W8);
        let x = p.var(xv);
        let wide = p.zext(x, Width::W16);
        let c = p.constant(1000, Width::W16);
        let t = p.add(wide, c);
        let av = affine_view(&p, t).unwrap();
        assert_eq!(av.var_width, Width::W8);
        assert_eq!(av.term_width, Width::W16);
        assert_eq!(av.offset, 1000);
        assert_eq!(av.apply(255), 1255);
    }

    #[test]
    fn affine_view_rejects_var_plus_var() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let y = p.fresh("y", Width::W8);
        let t = p.add(x, y);
        assert!(affine_view(&p, t).is_none());
    }

    #[test]
    fn affine_view_sign_bit_xor() {
        let mut p = TermPool::new();
        let xv = p.fresh_var("x", Width::W8);
        let x = p.var(xv);
        let bias = p.constant(0x80, Width::W8);
        let t = p.bit_xor(x, bias);
        let av = affine_view(&p, t).unwrap();
        assert_eq!(av.offset, 0x80);
        // Non-sign-bit xor is rejected.
        let other = p.constant(0x40, Width::W8);
        let t2 = p.bit_xor(x, other);
        assert!(affine_view(&p, t2).is_none());
    }

    #[test]
    fn inverse_image_clips_to_var_range() {
        let av = AffineView {
            var: VarId(0),
            var_width: Width::W8,
            term_width: Width::W16,
            offset: 1000,
        };
        // term in [1000, 1300]  =>  var in [0, 255] ∩ [0, 300] = [0, 255]
        let s = IntervalSet::range(Width::W16, 1000, 1300);
        let img = av.inverse_image(&s);
        assert_eq!((img.min(), img.max()), (Some(0), Some(255)));
        // term in [1300, 2000]  =>  var empty
        let s2 = IntervalSet::range(Width::W16, 1300, 2000);
        assert!(av.inverse_image(&s2).is_empty());
    }

    #[test]
    fn inverse_image_wrapping_offset() {
        let av = AffineView {
            var: VarId(0),
            var_width: Width::W8,
            term_width: Width::W8,
            offset: 200,
        };
        // term == 10  =>  var == (10 - 200) mod 256 = 66
        let s = IntervalSet::singleton(Width::W8, 10);
        let img = av.inverse_image(&s);
        assert_eq!(img.as_singleton(), Some(66));
        assert_eq!(av.apply(66), 10);
    }
}
