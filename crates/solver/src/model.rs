//! Satisfying assignments produced by the solver.

use std::collections::HashMap;
use std::fmt;

use crate::term::{TermId, TermPool, VarId};

/// A concrete assignment of values to symbolic variables.
///
/// Models are produced by the search engine for satisfiable queries and can
/// be used to evaluate arbitrary terms, in particular to *concretize* a
/// symbolic Trojan message into an injectable byte sequence.
///
/// # Examples
///
/// ```
/// use achilles_solver::{Model, TermPool, Width};
///
/// let mut pool = TermPool::new();
/// let x = pool.fresh_var("x", Width::W8);
/// let mut model = Model::new();
/// model.assign(x, 7);
/// let xt = pool.var(x);
/// let c = pool.constant(1, Width::W8);
/// let sum = pool.add(xt, c);
/// assert_eq!(model.eval(&pool, sum), Some(8));
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<VarId, u64>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Model {
        Model::default()
    }

    /// Sets the value of a variable (truncation is the caller's concern).
    pub fn assign(&mut self, var: VarId, value: u64) {
        self.values.insert(var, value);
    }

    /// The value of a variable, if assigned.
    pub fn value(&self, var: VarId) -> Option<u64> {
        self.values.get(&var).copied()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.values.iter().map(|(&v, &x)| (v, x))
    }

    /// Evaluates `term` under this model.
    ///
    /// Returns `None` if the term mentions an unassigned variable.
    pub fn eval(&self, pool: &TermPool, term: TermId) -> Option<u64> {
        pool.eval_with(term, &|v| self.value(v))
    }

    /// Evaluates a boolean term, defaulting unassigned variables to zero.
    ///
    /// Useful for checking whether a model found for one query also covers
    /// another predicate that mentions extra variables.
    pub fn eval_bool_total(&self, pool: &TermPool, term: TermId) -> bool {
        pool.eval_with(term, &|v| Some(self.value(v).unwrap_or(0))) == Some(1)
    }
}

impl fmt::Debug for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<(VarId, u64)> = self.iter().collect();
        entries.sort_by_key(|(v, _)| *v);
        f.debug_map()
            .entries(entries.iter().map(|(v, x)| (v, x)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::width::Width;

    #[test]
    fn assign_and_eval() {
        let mut pool = TermPool::new();
        let x = pool.fresh_var("x", Width::W16);
        let y = pool.fresh_var("y", Width::W16);
        let mut m = Model::new();
        m.assign(x, 100);
        let xt = pool.var(x);
        let yt = pool.var(y);
        let s = pool.add(xt, yt);
        assert_eq!(m.eval(&pool, s), None);
        m.assign(y, 28);
        assert_eq!(m.eval(&pool, s), Some(128));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn total_eval_defaults_to_zero() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let zero = pool.constant(0, Width::W8);
        let is_zero = pool.eq(x, zero);
        let m = Model::new();
        assert!(m.eval_bool_total(&pool, is_zero));
    }
}
