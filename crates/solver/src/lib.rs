//! # achilles-solver — an SMT-lite bitvector solver
//!
//! This crate is the constraint-solving substrate of the Achilles
//! trojan-message finder (ASPLOS'14 reproduction). It plays the role STP and
//! Z3 play in the paper: deciding satisfiability of path constraints gathered
//! by symbolic execution and producing concrete models used to *concretize*
//! symbolic Trojan messages.
//!
//! The term language is fixed-width bitvectors (1–64 bits) with wrapping
//! arithmetic, bitwise operators, comparisons (signed comparisons are
//! lowered at construction time), boolean connectives, and *opaque
//! functions* — registered Rust closures such as CRCs and MACs that stay
//! symbolic until all arguments are concrete.
//!
//! ## Quickstart
//!
//! ```
//! use achilles_solver::{Solver, TermPool, Width};
//!
//! let mut pool = TermPool::new();
//! let mut solver = Solver::new();
//!
//! // msg.address is a 32-bit field that must be below 100 but may be
//! // "negative" (two's complement) — the Trojan window of the paper's
//! // working example.
//! let addr = pool.fresh("msg.address", Width::W32);
//! let hundred = pool.constant(100, Width::W32);
//! let zero = pool.constant(0, Width::W32);
//! let below_max = pool.slt(addr, hundred);
//! let negative = pool.slt(addr, zero);
//!
//! let model = solver
//!     .model(&mut pool, &[below_max, negative])
//!     .expect("negative addresses below 100 exist");
//! let v = model.value(pool.as_var(addr).unwrap()).unwrap();
//! assert!(Width::W32.to_signed(v) < 0);
//! ```
//!
//! ## Certificates and cores
//!
//! `Sat` verdicts have always been verified end-to-end: the model is
//! re-evaluated against every assertion, and witnesses are later replayed
//! concretely. `Unsat` verdicts — every *pruned* branch of the Trojan
//! search — used to be trusted blindly. They no longer are: each
//! [`SatResult::Unsat`] carries a [`Certificate`], a refutation trace
//! (interval restrictions, class merges, clause splits, value
//! enumerations) expressed purely in terms of assertion refs and variable
//! fingerprints, plus the **unsat core**: the subset of input assertions
//! the trace actually references, in assertion order. The independent
//! `achilles-proofcheck` crate re-derives every step from the [`TermPool`]
//! alone — it shares only the term/width definitions with this crate, so a
//! bug in the search cannot validate its own mistake. Install its audit
//! hook (see [`set_proof_audit`]) and every fresh or subsumption-derived
//! `Unsat` is checked on the spot.
//!
//! Cores also pay for themselves as cache keys: a certificate proves its
//! core unsatisfiable, and any *superset* of an unsat set is unsat, so
//! [`SharedCache`] keeps a core-subsumption index — a query whose
//! fingerprint set contains a cached core answers `Unsat` (with the cached
//! certificate) without searching. That turns the dominant `pathS ∧ pathC`
//! drop checks into cache hits even when the exact key was never seen.
//!
//! ## Architecture
//!
//! * [`term`] — hash-consed terms, variables, opaque functions ([`TermPool`]);
//!   cloneable pools with structural fingerprints and cross-pool import for
//!   parallel workers
//! * [`interval`] — interval-set domains ([`IntervalSet`])
//! * [`atom`] — negation normal form and affine views
//! * [`search`] — propagation + DPLL search ([`solve`])
//! * [`certificate`] — checkable unsat certificates ([`Certificate`]) and
//!   the process-wide proof-audit hook
//! * [`model`] — verified satisfying assignments ([`Model`])
//! * [`solver`] — caching facade ([`Solver`]), two-tier: local map +
//!   optional cross-worker [`SharedCache`]
//! * [`scoped`] — incremental push/pop solving over growing path
//!   constraints ([`ScopedSolver`])
//! * [`cache`] — the sharded fingerprint-keyed cache workers share, with
//!   the core-subsumption index
//! * [`pretty`] — human-readable rendering ([`render`])
//! * [`smtlib`] — SMT-LIB 2 export for external cross-checking ([`to_smtlib`])

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atom;
pub mod cache;
pub mod certificate;
pub mod interval;
pub mod model;
pub mod pretty;
pub mod scoped;
pub mod search;
pub mod smtlib;
pub mod solver;
pub mod term;
pub mod width;

pub use atom::{affine_view, affine_view_with, nnf, AffineView, Formula, Literal};
pub use cache::{SharedCache, SharedCacheStats};
pub use certificate::{
    proof_audit, proof_audit_installed, proof_audit_stats, set_proof_audit, Certificate,
    ProofAuditFn, ProofNode, ProofStep,
};
pub use interval::{Interval, IntervalSet};
pub use model::Model;
pub use pretty::{render, render_conjunction};
pub use scoped::{ScopedSolver, ScopedStats};
pub use search::{solve, SatResult, SearchStats, SolverConfig};
pub use smtlib::to_smtlib;
pub use solver::{Solver, SolverStats};
pub use term::{FunId, Op, TermData, TermId, TermPool, VarId, VarInfo};
pub use width::Width;
