//! The cross-worker shared query cache.
//!
//! Parallel exploration gives every worker its own [`TermPool`] fork and its
//! own [`Solver`](crate::solver::Solver), so worker-local caches cannot key
//! on `TermId`s — ids diverge between pools as soon as a worker interns a new
//! term. This cache instead keys queries on the *sorted set of structural
//! fingerprints* of the asserted terms ([`TermPool::term_fp`]): two workers
//! that build the same conjunction — typically by re-executing the same
//! server-path prefix — produce the same key even though their `TermId`s
//! differ.
//!
//! Satisfiable entries store the model as `(variable fingerprint, value)`
//! pairs. A hit is translated back into the reader's pool through
//! [`TermPool::var_by_fp`]; every variable a solver assigns occurs in the
//! asserted terms, so the reader — which interned those terms to build the
//! query — always knows them.
//!
//! The map is sharded by key hash behind `RwLock`s, so concurrent readers
//! never contend and writers only lock one shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::model::Model;
use crate::search::SatResult;
use crate::term::{TermId, TermPool};

/// Number of independently locked shards (power of two).
const SHARDS: usize = 64;

/// A query result in pool-independent form.
#[derive(Clone, Debug)]
enum EntryKind {
    /// Satisfiable; the model as (variable fingerprint, value) pairs.
    Sat(Arc<Vec<(u128, u64)>>),
    Unsat,
    Unknown,
}

/// One cached result plus the epoch it was published in.
#[derive(Clone, Debug)]
struct Entry {
    kind: EntryKind,
    epoch: u64,
}

/// Counters of one [`SharedCache`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SharedCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Hits whose entry was published in an *earlier epoch* — a result
    /// computed by a previous pipeline phase (see
    /// [`SharedCache::advance_epoch`]). Always ≤ `hits`.
    pub cross_epoch_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Results published.
    pub inserts: u64,
}

/// A sharded, fingerprint-keyed query cache shared by all workers of a
/// parallel exploration.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use achilles_solver::{SharedCache, Solver, TermPool, Width};
///
/// let shared = Arc::new(SharedCache::new());
/// let mut base = TermPool::new();
/// let x = base.fresh("x", Width::W8);
/// let c = base.constant(9, Width::W8);
/// let lt = base.ult(x, c);
///
/// // Worker 1 solves and publishes.
/// let mut pool1 = base.fork(1);
/// let mut s1 = Solver::new().with_shared_cache(Arc::clone(&shared));
/// assert!(s1.is_sat(&mut pool1, &[lt]));
///
/// // Worker 2 gets the answer without searching.
/// let mut pool2 = base.fork(2);
/// let mut s2 = Solver::new().with_shared_cache(Arc::clone(&shared));
/// assert!(s2.is_sat(&mut pool2, &[lt]));
/// assert_eq!(s2.stats().shared_hits, 1);
/// ```
#[derive(Debug)]
pub struct SharedCache {
    shards: Vec<RwLock<HashMap<Box<[u128]>, Entry>>>,
    /// The current phase epoch (see [`SharedCache::advance_epoch`]).
    epoch: AtomicU64,
    hits: AtomicU64,
    cross_hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl Default for SharedCache {
    fn default() -> SharedCache {
        SharedCache::new()
    }
}

impl SharedCache {
    /// Creates an empty cache.
    pub fn new() -> SharedCache {
        SharedCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            cross_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Starts a new phase epoch. Entries keep the epoch they were
    /// published in; a later hit on an entry from an earlier epoch counts
    /// into [`SharedCacheStats::cross_epoch_hits`] — the measure of how
    /// much one pipeline phase reuses work a previous phase paid for
    /// (client predicate extraction → preprocessing → server Trojan
    /// search → session analyses). Callers that own a cache for exactly
    /// one exploration never need to call this.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current phase epoch (0 until the first
    /// [`advance_epoch`](SharedCache::advance_epoch)).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The pool-independent key of a query: sorted, deduplicated structural
    /// fingerprints of the asserted terms.
    pub fn key_of(pool: &TermPool, assertions: &[TermId]) -> Box<[u128]> {
        let mut key: Vec<u128> = assertions.iter().map(|&t| pool.term_fp(t)).collect();
        key.sort_unstable();
        key.dedup();
        key.into_boxed_slice()
    }

    fn shard_of(key: &[u128]) -> usize {
        // The fingerprints are already well mixed; fold them.
        let mut h = 0xD6E8_FEB8_6659_FD93u64 ^ key.len() as u64;
        for fp in key {
            h = (h ^ (*fp as u64))
                .rotate_left(23)
                .wrapping_mul(0x2545_F491_4F6C_DD1D);
        }
        (h as usize) & (SHARDS - 1)
    }

    /// Looks up a query, translating a satisfiable entry's model into
    /// `pool`'s variable ids.
    pub fn lookup(&self, pool: &TermPool, key: &[u128]) -> Option<SatResult> {
        let shard = self.shards[Self::shard_of(key)]
            .read()
            .expect("cache shard poisoned");
        let entry = match shard.get(key) {
            Some(e) => e.clone(),
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        drop(shard);
        let entry_epoch = entry.epoch;
        let result = match entry.kind {
            EntryKind::Unsat => SatResult::Unsat,
            EntryKind::Unknown => SatResult::Unknown,
            EntryKind::Sat(pairs) => {
                let mut model = Model::new();
                for &(fp, value) in pairs.iter() {
                    match pool.var_by_fp(fp) {
                        Some(v) => model.assign(v, value),
                        // A variable this pool has never interned: the entry
                        // cannot be translated, treat as a miss (sound — the
                        // caller just solves locally).
                        None => {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            return None;
                        }
                    }
                }
                SatResult::Sat(Arc::new(model))
            }
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        if entry_epoch < self.epoch() {
            self.cross_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some(result)
    }

    /// Publishes a result under `key` (stamped with the current epoch).
    pub fn insert(&self, pool: &TermPool, key: Box<[u128]>, result: &SatResult) {
        let kind = match result {
            SatResult::Unsat => EntryKind::Unsat,
            SatResult::Unknown => EntryKind::Unknown,
            SatResult::Sat(model) => {
                let pairs: Vec<(u128, u64)> =
                    model.iter().map(|(v, x)| (pool.var_fp(v), x)).collect();
                EntryKind::Sat(Arc::new(pairs))
            }
        };
        let entry = Entry {
            kind,
            epoch: self.epoch(),
        };
        let mut shard = self.shards[Self::shard_of(&key)]
            .write()
            .expect("cache shard poisoned");
        shard.entry(key).or_insert(entry);
        drop(shard);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters so far.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            cross_epoch_hits: self.cross_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::width::Width;

    #[test]
    fn key_is_order_insensitive_and_deduped() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let c1 = pool.constant(1, Width::W8);
        let c9 = pool.constant(9, Width::W8);
        let a = pool.ult(c1, x);
        let b = pool.ult(x, c9);
        assert_eq!(
            SharedCache::key_of(&pool, &[a, b]),
            SharedCache::key_of(&pool, &[b, a, b])
        );
    }

    #[test]
    fn model_round_trips_across_forked_pools() {
        let mut base = TermPool::new();
        let x = base.fresh("x", Width::W16);
        let c = base.constant(500, Width::W16);
        let eq = base.eq(x, c);

        let cache = SharedCache::new();
        let pool1 = base.fork(1);
        let mut m = Model::new();
        m.assign(pool1.as_var(x).unwrap(), 500);
        let key = SharedCache::key_of(&pool1, &[eq]);
        cache.insert(&pool1, key.clone(), &SatResult::Sat(Arc::new(m)));

        let pool2 = base.fork(2);
        let hit = cache.lookup(&pool2, &key).expect("published entry");
        let model = hit.model().expect("sat entry");
        assert_eq!(model.value(pool2.as_var(x).unwrap()), Some(500));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().inserts, 1);
    }

    #[test]
    fn unknown_variable_degrades_to_miss() {
        let mut pool1 = TermPool::new().fork(1);
        let y = pool1.fresh("only_in_1", Width::W8);
        let c = pool1.constant(3, Width::W8);
        let eq = pool1.eq(y, c);
        let cache = SharedCache::new();
        let key = SharedCache::key_of(&pool1, &[eq]);
        let mut m = Model::new();
        m.assign(pool1.as_var(y).unwrap(), 3);
        cache.insert(&pool1, key.clone(), &SatResult::Sat(Arc::new(m)));

        let pool2 = TermPool::new().fork(2);
        assert!(
            cache.lookup(&pool2, &key).is_none(),
            "untranslatable model is a miss"
        );
    }

    #[test]
    fn cross_epoch_hits_separate_phase_reuse_from_worker_reuse() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let c = pool.constant(9, Width::W8);
        let lt = pool.ult(x, c);
        let key = SharedCache::key_of(&pool, &[lt]);

        let cache = SharedCache::new();
        cache.insert(&pool, key.clone(), &SatResult::Unsat);
        // Same epoch: an ordinary hit, not a cross-epoch one.
        assert!(cache.lookup(&pool, &key).is_some());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().cross_epoch_hits, 0);

        // Next phase: the same entry now counts as cross-epoch reuse.
        assert_eq!(cache.advance_epoch(), 1);
        assert_eq!(cache.epoch(), 1);
        assert!(cache.lookup(&pool, &key).is_some());
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().cross_epoch_hits, 1);

        // An entry published *in* the new phase is same-epoch again.
        let y = pool.fresh("y", Width::W8);
        let eq = pool.eq(y, c);
        let key2 = SharedCache::key_of(&pool, &[eq]);
        cache.insert(&pool, key2.clone(), &SatResult::Unsat);
        assert!(cache.lookup(&pool, &key2).is_some());
        assert_eq!(cache.stats().cross_epoch_hits, 1);
    }

    #[test]
    fn tagged_vars_share_constraints_across_workers() {
        // Two workers create "the same" variable independently (same tag):
        // the second worker's structurally equal query hits the first's entry.
        let base = TermPool::new();
        let cache = SharedCache::new();

        let mut pool1 = base.fork(1);
        let v1 = pool1.fresh_var_tagged("msg.len", Width::W8, 42);
        let x1 = pool1.var(v1);
        let c1 = pool1.constant(7, Width::W8);
        let q1 = pool1.ult(x1, c1);
        let mut m = Model::new();
        m.assign(v1, 0);
        let key1 = SharedCache::key_of(&pool1, &[q1]);
        cache.insert(&pool1, key1, &SatResult::Sat(Arc::new(m)));

        let mut pool2 = base.fork(2);
        let v2 = pool2.fresh_var_tagged("msg.len", Width::W8, 42);
        let x2 = pool2.var(v2);
        let c2 = pool2.constant(7, Width::W8);
        let q2 = pool2.ult(x2, c2);
        let key2 = SharedCache::key_of(&pool2, &[q2]);
        let hit = cache
            .lookup(&pool2, &key2)
            .expect("equal tags make equal keys");
        assert_eq!(hit.model().unwrap().value(v2), Some(0));
    }
}
