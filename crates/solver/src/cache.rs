//! The cross-worker shared query cache.
//!
//! Parallel exploration gives every worker its own [`TermPool`] fork and its
//! own [`Solver`](crate::solver::Solver), so worker-local caches cannot key
//! on `TermId`s — ids diverge between pools as soon as a worker interns a new
//! term. This cache instead keys queries on the *sorted set of structural
//! fingerprints* of the asserted terms ([`TermPool::term_fp`]): two workers
//! that build the same conjunction — typically by re-executing the same
//! server-path prefix — produce the same key even though their `TermId`s
//! differ.
//!
//! Satisfiable entries store the model as `(variable fingerprint, value)`
//! pairs. A hit is translated back into the reader's pool through
//! [`TermPool::var_by_fp`]; every variable a solver assigns occurs in the
//! asserted terms, so the reader — which interned those terms to build the
//! query — always knows them.
//!
//! Unsatisfiable entries store their [`Certificate`], and the certificate's
//! **unsat core** feeds a second, *subsumption* tier: a query whose
//! fingerprint set is a superset of a cached core is unsat (any superset of
//! an unsat set is), so [`SharedCache::lookup_subsumed`] can answer it —
//! with the cached certificate as proof — even though the exact key was
//! never inserted. This is what turns the dominant `pathS ∧ pathC` drop
//! checks into cache hits across witnesses that share only a path prefix.
//!
//! The map is sharded by key hash behind `RwLock`s, so concurrent readers
//! never contend and writers only lock one shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::certificate::Certificate;
use crate::model::Model;
use crate::search::SatResult;
use crate::term::{TermId, TermPool};

/// Number of independently locked shards (power of two).
const SHARDS: usize = 64;

/// A query result in pool-independent form.
#[derive(Clone, Debug)]
enum EntryKind {
    /// Satisfiable; the model as (variable fingerprint, value) pairs.
    Sat(Arc<Vec<(u128, u64)>>),
    /// Unsatisfiable, with its refutation certificate.
    Unsat(Arc<Certificate>),
    Unknown,
}

/// One cached result plus the epoch it was published in.
#[derive(Clone, Debug)]
struct Entry {
    kind: EntryKind,
    epoch: u64,
}

/// One core-index entry: a sorted, deduplicated unsat core plus the
/// certificate that proves it.
#[derive(Clone, Debug)]
struct CoreEntry {
    core: Box<[u128]>,
    cert: Arc<Certificate>,
}

/// Counters of one [`SharedCache`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SharedCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Hits whose entry was published in an *earlier epoch* — a result
    /// computed by a previous pipeline phase (see
    /// [`SharedCache::advance_epoch`]). Always ≤ `hits`.
    pub cross_epoch_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Results published.
    pub inserts: u64,
    /// Queries answered by the core-subsumption tier: the exact key was
    /// absent but the key contained a cached unsat core.
    pub core_subsumption_hits: u64,
    /// Unsat cores added to the subsumption index.
    pub cores_indexed: u64,
    /// Certificate-carrying `Unsat` results published.
    pub certified_unsat: u64,
}

impl SharedCacheStats {
    /// Publishes this cache's lifetime counters as `achilles_shared_cache_*`
    /// registry gauges. The shared cache is raced by every worker of a
    /// parallel exploration, so all of its counters are
    /// [`Wall`](achilles_obs::Class::Wall)-classed: hit/miss splits move
    /// with thread interleaving even when the exploration's *results* are
    /// bit-identical.
    pub fn record_metrics(&self) {
        use achilles_obs::Class::Wall;
        let reg = achilles_obs::global();
        for (name, value) in [
            ("achilles_shared_cache_hits_total", self.hits),
            (
                "achilles_shared_cache_cross_epoch_hits_total",
                self.cross_epoch_hits,
            ),
            ("achilles_shared_cache_misses_total", self.misses),
            ("achilles_shared_cache_inserts_total", self.inserts),
            (
                "achilles_shared_cache_core_subsumption_hits_total",
                self.core_subsumption_hits,
            ),
            (
                "achilles_shared_cache_cores_indexed_total",
                self.cores_indexed,
            ),
            (
                "achilles_shared_cache_certified_unsat_total",
                self.certified_unsat,
            ),
        ] {
            reg.set(Wall, name, &[], value);
        }
    }
}

/// A sharded, fingerprint-keyed query cache shared by all workers of a
/// parallel exploration.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use achilles_solver::{SharedCache, Solver, TermPool, Width};
///
/// let shared = Arc::new(SharedCache::new());
/// let mut base = TermPool::new();
/// let x = base.fresh("x", Width::W8);
/// let c = base.constant(9, Width::W8);
/// let lt = base.ult(x, c);
///
/// // Worker 1 solves and publishes.
/// let mut pool1 = base.fork(1);
/// let mut s1 = Solver::new().with_shared_cache(Arc::clone(&shared));
/// assert!(s1.is_sat(&mut pool1, &[lt]));
///
/// // Worker 2 gets the answer without searching.
/// let mut pool2 = base.fork(2);
/// let mut s2 = Solver::new().with_shared_cache(Arc::clone(&shared));
/// assert!(s2.is_sat(&mut pool2, &[lt]));
/// assert_eq!(s2.stats().shared_hits, 1);
/// ```
#[derive(Debug)]
pub struct SharedCache {
    shards: Vec<RwLock<HashMap<Box<[u128]>, Entry>>>,
    /// Subsumption index: minimum core fingerprint → cores starting there.
    /// Sharded by that fingerprint so a reader probes one shard per key fp.
    cores: Vec<RwLock<HashMap<u128, Vec<CoreEntry>>>>,
    /// Whether [`lookup_subsumed`](SharedCache::lookup_subsumed) answers.
    /// The index is always maintained; only lookups are gated, so the
    /// toggle can be flipped per run for differential testing.
    subsumption: AtomicBool,
    /// The current phase epoch (see [`SharedCache::advance_epoch`]).
    epoch: AtomicU64,
    hits: AtomicU64,
    cross_hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    core_hits: AtomicU64,
    cores_indexed: AtomicU64,
    certified_unsat: AtomicU64,
}

impl Default for SharedCache {
    fn default() -> SharedCache {
        SharedCache::new()
    }
}

impl SharedCache {
    /// Creates an empty cache (subsumption lookups enabled).
    pub fn new() -> SharedCache {
        SharedCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            cores: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            subsumption: AtomicBool::new(true),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            cross_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            core_hits: AtomicU64::new(0),
            cores_indexed: AtomicU64::new(0),
            certified_unsat: AtomicU64::new(0),
        }
    }

    /// Enables or disables the core-subsumption lookup tier. The index is
    /// still maintained while disabled, so re-enabling needs no warm-up.
    pub fn set_subsumption(&self, enabled: bool) {
        self.subsumption.store(enabled, Ordering::Relaxed);
    }

    /// Whether subsumption lookups are enabled.
    pub fn subsumption_enabled(&self) -> bool {
        self.subsumption.load(Ordering::Relaxed)
    }

    /// Starts a new phase epoch. Entries keep the epoch they were
    /// published in; a later hit on an entry from an earlier epoch counts
    /// into [`SharedCacheStats::cross_epoch_hits`] — the measure of how
    /// much one pipeline phase reuses work a previous phase paid for
    /// (client predicate extraction → preprocessing → server Trojan
    /// search → session analyses). Callers that own a cache for exactly
    /// one exploration never need to call this.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current phase epoch (0 until the first
    /// [`advance_epoch`](SharedCache::advance_epoch)).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The pool-independent key of a query: sorted, deduplicated structural
    /// fingerprints of the asserted terms.
    pub fn key_of(pool: &TermPool, assertions: &[TermId]) -> Box<[u128]> {
        let mut key: Vec<u128> = assertions.iter().map(|&t| pool.term_fp(t)).collect();
        key.sort_unstable();
        key.dedup();
        key.into_boxed_slice()
    }

    fn shard_of(key: &[u128]) -> usize {
        // The fingerprints are already well mixed; fold them.
        let mut h = 0xD6E8_FEB8_6659_FD93u64 ^ key.len() as u64;
        for fp in key {
            h = (h ^ (*fp as u64))
                .rotate_left(23)
                .wrapping_mul(0x2545_F491_4F6C_DD1D);
        }
        (h as usize) & (SHARDS - 1)
    }

    fn shard_of_fp(fp: u128) -> usize {
        ((fp as u64)
            .rotate_left(23)
            .wrapping_mul(0x2545_F491_4F6C_DD1D) as usize)
            & (SHARDS - 1)
    }

    /// Looks up a query, translating a satisfiable entry's model into
    /// `pool`'s variable ids.
    pub fn lookup(&self, pool: &TermPool, key: &[u128]) -> Option<SatResult> {
        let shard = self.shards[Self::shard_of(key)]
            .read()
            .expect("cache shard poisoned");
        let entry = match shard.get(key) {
            Some(e) => e.clone(),
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        drop(shard);
        let entry_epoch = entry.epoch;
        let result = match entry.kind {
            EntryKind::Unsat(cert) => SatResult::Unsat(cert),
            EntryKind::Unknown => SatResult::Unknown,
            EntryKind::Sat(pairs) => {
                let mut model = Model::new();
                for &(fp, value) in pairs.iter() {
                    match pool.var_by_fp(fp) {
                        Some(v) => model.assign(v, value),
                        // A variable this pool has never interned: the entry
                        // cannot be translated, treat as a miss (sound — the
                        // caller just solves locally).
                        None => {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            return None;
                        }
                    }
                }
                SatResult::Sat(Arc::new(model))
            }
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        if entry_epoch < self.epoch() {
            self.cross_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some(result)
    }

    /// Subsumption tier: answers with a certificate if `key` (sorted,
    /// deduplicated) is a *superset* of a cached unsat core — any superset
    /// of an unsat assertion set is unsat. The returned certificate's core
    /// is by construction a subset of `key`, so it validates against the
    /// caller's assertions as-is.
    ///
    /// Returns `None` when the tier is disabled
    /// (see [`set_subsumption`](SharedCache::set_subsumption)).
    pub fn lookup_subsumed(&self, key: &[u128]) -> Option<Arc<Certificate>> {
        if !self.subsumption_enabled() {
            return None;
        }
        // A subsumed core's minimum fingerprint is some element of `key`,
        // so probing the index at every key fp finds all candidates.
        for &fp in key {
            let bucket = self.cores[Self::shard_of_fp(fp)]
                .read()
                .expect("core shard poisoned");
            let Some(entries) = bucket.get(&fp) else {
                continue;
            };
            for entry in entries {
                if is_subset(&entry.core, key) {
                    let cert = Arc::clone(&entry.cert);
                    drop(bucket);
                    self.core_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(cert);
                }
            }
        }
        None
    }

    /// Publishes a result under `key` (stamped with the current epoch).
    /// `Unsat` results also index their certificate's core for subsumption.
    pub fn insert(&self, pool: &TermPool, key: Box<[u128]>, result: &SatResult) {
        let kind = match result {
            SatResult::Unsat(cert) => {
                self.certified_unsat.fetch_add(1, Ordering::Relaxed);
                self.index_core(cert);
                EntryKind::Unsat(Arc::clone(cert))
            }
            SatResult::Unknown => EntryKind::Unknown,
            SatResult::Sat(model) => {
                let pairs: Vec<(u128, u64)> =
                    model.iter().map(|(v, x)| (pool.var_fp(v), x)).collect();
                EntryKind::Sat(Arc::new(pairs))
            }
        };
        let entry = Entry {
            kind,
            epoch: self.epoch(),
        };
        let mut shard = self.shards[Self::shard_of(&key)]
            .write()
            .expect("cache shard poisoned");
        shard.entry(key).or_insert(entry);
        drop(shard);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds a certificate's core to the subsumption index (deduplicated).
    fn index_core(&self, cert: &Arc<Certificate>) {
        if cert.core.is_empty() {
            return;
        }
        let mut core: Vec<u128> = cert.core.clone();
        core.sort_unstable();
        core.dedup();
        let min_fp = core[0];
        let core: Box<[u128]> = core.into_boxed_slice();
        let mut bucket = self.cores[Self::shard_of_fp(min_fp)]
            .write()
            .expect("core shard poisoned");
        let entries = bucket.entry(min_fp).or_default();
        if entries.iter().any(|e| e.core == core) {
            return;
        }
        entries.push(CoreEntry {
            core,
            cert: Arc::clone(cert),
        });
        drop(bucket);
        self.cores_indexed.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters so far.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            cross_epoch_hits: self.cross_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            core_subsumption_hits: self.core_hits.load(Ordering::Relaxed),
            cores_indexed: self.cores_indexed.load(Ordering::Relaxed),
            certified_unsat: self.certified_unsat.load(Ordering::Relaxed),
        }
    }
}

/// Whether sorted slice `a` is a subset of sorted slice `b`.
fn is_subset(a: &[u128], b: &[u128]) -> bool {
    let mut bi = 0;
    'outer: for &x in a {
        while bi < b.len() {
            match b[bi].cmp(&x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::ProofNode;
    use crate::width::Width;

    fn dummy_unsat(core: Vec<u128>) -> SatResult {
        SatResult::Unsat(Arc::new(Certificate {
            core,
            proof: ProofNode::Admitted,
            steps: 1,
        }))
    }

    #[test]
    fn key_is_order_insensitive_and_deduped() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let c1 = pool.constant(1, Width::W8);
        let c9 = pool.constant(9, Width::W8);
        let a = pool.ult(c1, x);
        let b = pool.ult(x, c9);
        assert_eq!(
            SharedCache::key_of(&pool, &[a, b]),
            SharedCache::key_of(&pool, &[b, a, b])
        );
    }

    #[test]
    fn model_round_trips_across_forked_pools() {
        let mut base = TermPool::new();
        let x = base.fresh("x", Width::W16);
        let c = base.constant(500, Width::W16);
        let eq = base.eq(x, c);

        let cache = SharedCache::new();
        let pool1 = base.fork(1);
        let mut m = Model::new();
        m.assign(pool1.as_var(x).unwrap(), 500);
        let key = SharedCache::key_of(&pool1, &[eq]);
        cache.insert(&pool1, key.clone(), &SatResult::Sat(Arc::new(m)));

        let pool2 = base.fork(2);
        let hit = cache.lookup(&pool2, &key).expect("published entry");
        let model = hit.model().expect("sat entry");
        assert_eq!(model.value(pool2.as_var(x).unwrap()), Some(500));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().inserts, 1);
    }

    #[test]
    fn unknown_variable_degrades_to_miss() {
        let mut pool1 = TermPool::new().fork(1);
        let y = pool1.fresh("only_in_1", Width::W8);
        let c = pool1.constant(3, Width::W8);
        let eq = pool1.eq(y, c);
        let cache = SharedCache::new();
        let key = SharedCache::key_of(&pool1, &[eq]);
        let mut m = Model::new();
        m.assign(pool1.as_var(y).unwrap(), 3);
        cache.insert(&pool1, key.clone(), &SatResult::Sat(Arc::new(m)));

        let pool2 = TermPool::new().fork(2);
        assert!(
            cache.lookup(&pool2, &key).is_none(),
            "untranslatable model is a miss"
        );
    }

    #[test]
    fn cross_epoch_hits_separate_phase_reuse_from_worker_reuse() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let c = pool.constant(9, Width::W8);
        let lt = pool.ult(x, c);
        let key = SharedCache::key_of(&pool, &[lt]);

        let cache = SharedCache::new();
        cache.insert(&pool, key.clone(), &dummy_unsat(key.to_vec()));
        // Same epoch: an ordinary hit, not a cross-epoch one.
        assert!(cache.lookup(&pool, &key).is_some());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().cross_epoch_hits, 0);

        // Next phase: the same entry now counts as cross-epoch reuse.
        assert_eq!(cache.advance_epoch(), 1);
        assert_eq!(cache.epoch(), 1);
        assert!(cache.lookup(&pool, &key).is_some());
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().cross_epoch_hits, 1);

        // An entry published *in* the new phase is same-epoch again.
        let y = pool.fresh("y", Width::W8);
        let eq = pool.eq(y, c);
        let key2 = SharedCache::key_of(&pool, &[eq]);
        cache.insert(&pool, key2.clone(), &dummy_unsat(key2.to_vec()));
        assert!(cache.lookup(&pool, &key2).is_some());
        assert_eq!(cache.stats().cross_epoch_hits, 1);
    }

    #[test]
    fn tagged_vars_share_constraints_across_workers() {
        // Two workers create "the same" variable independently (same tag):
        // the second worker's structurally equal query hits the first's entry.
        let base = TermPool::new();
        let cache = SharedCache::new();

        let mut pool1 = base.fork(1);
        let v1 = pool1.fresh_var_tagged("msg.len", Width::W8, 42);
        let x1 = pool1.var(v1);
        let c1 = pool1.constant(7, Width::W8);
        let q1 = pool1.ult(x1, c1);
        let mut m = Model::new();
        m.assign(v1, 0);
        let key1 = SharedCache::key_of(&pool1, &[q1]);
        cache.insert(&pool1, key1, &SatResult::Sat(Arc::new(m)));

        let mut pool2 = base.fork(2);
        let v2 = pool2.fresh_var_tagged("msg.len", Width::W8, 42);
        let x2 = pool2.var(v2);
        let c2 = pool2.constant(7, Width::W8);
        let q2 = pool2.ult(x2, c2);
        let key2 = SharedCache::key_of(&pool2, &[q2]);
        let hit = cache
            .lookup(&pool2, &key2)
            .expect("equal tags make equal keys");
        assert_eq!(hit.model().unwrap().value(v2), Some(0));
    }

    #[test]
    fn superset_key_hits_the_core_index() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let c5 = pool.constant(5, Width::W8);
        let a = pool.ult(x, c5);
        let b = pool.ult(c5, x);
        let key = SharedCache::key_of(&pool, &[a, b]);

        let cache = SharedCache::new();
        cache.insert(&pool, key.clone(), &dummy_unsat(key.to_vec()));
        assert_eq!(cache.stats().certified_unsat, 1);
        assert_eq!(cache.stats().cores_indexed, 1);

        // A strictly larger query was never inserted, but contains the core.
        let c9 = pool.constant(9, Width::W8);
        let extra = pool.ult(x, c9);
        let superset = SharedCache::key_of(&pool, &[a, b, extra]);
        assert!(cache.lookup(&pool, &superset).is_none(), "no exact entry");
        let cert = cache
            .lookup_subsumed(&superset)
            .expect("superset of a cached core");
        assert!(is_subset(&cert.core, &superset));
        assert_eq!(cache.stats().core_subsumption_hits, 1);

        // A disjoint query does not hit.
        let disjoint = SharedCache::key_of(&pool, &[extra]);
        assert!(cache.lookup_subsumed(&disjoint).is_none());

        // Disabling the tier silences lookups without clearing the index.
        cache.set_subsumption(false);
        assert!(cache.lookup_subsumed(&superset).is_none());
        cache.set_subsumption(true);
        assert!(cache.lookup_subsumed(&superset).is_some());
    }

    #[test]
    fn subset_test_is_exact() {
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2, 3], &[1, 3]));
        assert!(!is_subset(&[0], &[1]));
    }
}
