//! Incremental solving over a growing assertion stack.
//!
//! Server-path analysis grows its constraint set one conjunct at a time and
//! re-checks satisfiability after every extension. [`ScopedSolver`] mirrors
//! that shape with push/pop assertion frames and exploits two facts about
//! monotone conjunction growth:
//!
//! * **Model reuse** — a model of frame *k* that happens to satisfy the
//!   conjuncts pushed since is a model of the current frame; evaluating a
//!   handful of terms is orders of magnitude cheaper than a search. This is
//!   the incremental-SMT "check the last model first" trick, and on path
//!   constraints it hits constantly because each new conjunct usually leaves
//!   most of the space intact.
//! * **Sticky unsat** — once a frame is unsatisfiable every extension of it
//!   is too, so deeper checks return `Unsat` without touching the solver.
//!
//! Anything not answered by those two short-circuits falls through to the
//! wrapped [`Solver`], whose local and shared caches then apply. Soundness
//! does not depend on the reuse heuristics: a reused model is only returned
//! after it has been *evaluated* against every live conjunct.

use std::sync::Arc;

use crate::certificate::Certificate;
use crate::model::Model;
use crate::search::SatResult;
use crate::solver::Solver;
use crate::term::{TermId, TermPool};

/// Counters of one [`ScopedSolver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ScopedStats {
    /// Checks issued through the scoped interface.
    pub checks: u64,
    /// Checks answered by re-evaluating a previous frame's model.
    pub model_reuse_hits: u64,
    /// Checks answered by the sticky-unsat short-circuit.
    pub sticky_unsat_hits: u64,
    /// Checks that fell through to the wrapped solver.
    pub solver_calls: u64,
}

/// A push/pop assertion stack with incremental satisfiability checks.
///
/// # Examples
///
/// ```
/// use achilles_solver::{ScopedSolver, Solver, TermPool, Width};
///
/// let mut pool = TermPool::new();
/// let mut solver = Solver::new();
/// let mut scoped = ScopedSolver::new();
///
/// let x = pool.fresh("x", Width::W8);
/// let c100 = pool.constant(100, Width::W8);
/// let c50 = pool.constant(50, Width::W8);
///
/// let lt100 = pool.ult(x, c100);
/// scoped.push(lt100);
/// assert!(scoped.check(&mut pool, &mut solver).is_sat());
///
/// // The second check reuses the first frame's model: x = 0 also
/// // satisfies x < 50, so no search is needed.
/// let lt50 = pool.ult(x, c50);
/// scoped.push(lt50);
/// assert!(scoped.check(&mut pool, &mut solver).is_sat());
/// assert_eq!(scoped.stats().model_reuse_hits, 1);
///
/// scoped.pop();
/// assert_eq!(scoped.depth(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ScopedSolver {
    /// The live conjunction, one entry per pushed frame.
    assertions: Vec<TermId>,
    /// The deepest model known to satisfy a prefix of the stack, together
    /// with the frame count it was verified against.
    last_model: Option<(usize, Arc<Model>)>,
    /// Shallowest frame count proven unsatisfiable, with the certificate
    /// that proved it. The certificate's core only references assertions in
    /// frames `[0..from]`, so it stays valid for every deeper stack the
    /// sticky short-circuit answers.
    unsat_from: Option<(usize, Arc<Certificate>)>,
    stats: ScopedStats,
}

impl ScopedSolver {
    /// An empty stack.
    pub fn new() -> ScopedSolver {
        ScopedSolver::default()
    }

    /// An empty stack pre-loaded with `initial` assertions (one frame each).
    pub fn with_assertions(initial: &[TermId]) -> ScopedSolver {
        let mut s = ScopedSolver::new();
        for &t in initial {
            s.push(t);
        }
        s
    }

    /// Current number of frames.
    pub fn depth(&self) -> usize {
        self.assertions.len()
    }

    /// The live conjunction, in push order.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Counters so far.
    pub fn stats(&self) -> &ScopedStats {
        &self.stats
    }

    /// Pushes one assertion frame.
    pub fn push(&mut self, t: TermId) {
        self.assertions.push(t);
    }

    /// Pops the newest frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    pub fn pop(&mut self) {
        assert!(!self.assertions.is_empty(), "pop on empty ScopedSolver");
        self.assertions.pop();
        let depth = self.assertions.len();
        if let Some((at, _)) = self.last_model {
            if at > depth {
                // The model may still satisfy the shallower stack; keep it
                // but re-verify lazily from the popped depth.
                self.last_model = self.last_model.take().map(|(_, m)| (depth.min(at), m));
            }
        }
        if let Some((from, _)) = &self.unsat_from {
            if *from > depth {
                self.unsat_from = None;
            }
        }
    }

    /// Decides the conjunction of the current stack.
    pub fn check(&mut self, pool: &mut TermPool, solver: &mut Solver) -> SatResult {
        self.stats.checks += 1;
        let depth = self.assertions.len();
        if let Some((from, cert)) = &self.unsat_from {
            if *from <= depth {
                self.stats.sticky_unsat_hits += 1;
                return SatResult::Unsat(Arc::clone(cert));
            }
        }
        // Try the previous model against the conjuncts it has not yet been
        // verified on.
        if let Some((verified_to, model)) = &self.last_model {
            let model = Arc::clone(model);
            let verified_to = *verified_to;
            if verified_to <= depth
                && self.assertions[verified_to..depth]
                    .iter()
                    .all(|&t| model.eval(pool, t) == Some(1))
            {
                self.stats.model_reuse_hits += 1;
                self.last_model = Some((depth, Arc::clone(&model)));
                return SatResult::Sat(model);
            }
        }
        self.stats.solver_calls += 1;
        let result = solver.check(pool, &self.assertions);
        match &result {
            SatResult::Sat(model) => self.last_model = Some((depth, Arc::clone(model))),
            SatResult::Unsat(cert) => {
                // Keep the shallowest proof: its core references the fewest
                // frames, so it covers the most future extensions.
                let replace = match &self.unsat_from {
                    Some((prev, _)) => depth < *prev,
                    None => true,
                };
                if replace {
                    self.unsat_from = Some((depth, Arc::clone(cert)));
                }
            }
            SatResult::Unknown => {}
        }
        result
    }

    /// Decides `stack ∧ extra` without leaving the frame pushed.
    pub fn check_with(
        &mut self,
        pool: &mut TermPool,
        solver: &mut Solver,
        extra: TermId,
    ) -> SatResult {
        self.push(extra);
        let result = self.check(pool, solver);
        self.pop();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::width::Width;

    fn harness() -> (TermPool, Solver, ScopedSolver) {
        (TermPool::new(), Solver::new(), ScopedSolver::new())
    }

    #[test]
    fn growing_stack_reuses_models() {
        let (mut pool, mut solver, mut scoped) = harness();
        let x = pool.fresh("x", Width::W16);
        // Push x < 1000, x < 900, ..., x < 100: the model x = 0 from the
        // first solve covers every later frame.
        for hi in (1..=10).rev() {
            let c = pool.constant(hi * 100, Width::W16);
            let lt = pool.ult(x, c);
            scoped.push(lt);
            assert!(scoped.check(&mut pool, &mut solver).is_sat());
        }
        assert_eq!(scoped.stats().checks, 10);
        assert_eq!(
            scoped.stats().solver_calls,
            1,
            "one search covers the whole chain"
        );
        assert_eq!(scoped.stats().model_reuse_hits, 9);
    }

    #[test]
    fn conflicting_push_falls_through_and_sticks() {
        let (mut pool, mut solver, mut scoped) = harness();
        let x = pool.fresh("x", Width::W8);
        let c5 = pool.constant(5, Width::W8);
        let lt = pool.ult(x, c5);
        let gt = pool.ult(c5, x);
        scoped.push(lt);
        assert!(scoped.check(&mut pool, &mut solver).is_sat());
        scoped.push(gt);
        assert!(scoped.check(&mut pool, &mut solver).is_unsat());
        // Any extension is unsat without a solver call.
        let c9 = pool.constant(9, Width::W8);
        let more = pool.ult(x, c9);
        scoped.push(more);
        let calls_before = scoped.stats().solver_calls;
        assert!(scoped.check(&mut pool, &mut solver).is_unsat());
        assert_eq!(scoped.stats().solver_calls, calls_before);
        assert_eq!(scoped.stats().sticky_unsat_hits, 1);
    }

    #[test]
    fn pop_clears_sticky_unsat() {
        let (mut pool, mut solver, mut scoped) = harness();
        let x = pool.fresh("x", Width::W8);
        let c5 = pool.constant(5, Width::W8);
        let lt = pool.ult(x, c5);
        let gt = pool.ult(c5, x);
        scoped.push(lt);
        scoped.push(gt);
        assert!(scoped.check(&mut pool, &mut solver).is_unsat());
        scoped.pop();
        assert!(
            scoped.check(&mut pool, &mut solver).is_sat(),
            "x < 5 alone is sat"
        );
    }

    #[test]
    fn check_with_leaves_stack_unchanged() {
        let (mut pool, mut solver, mut scoped) = harness();
        let x = pool.fresh("x", Width::W8);
        let c5 = pool.constant(5, Width::W8);
        let lt = pool.ult(x, c5);
        scoped.push(lt);
        let gt = pool.ult(c5, x);
        assert!(scoped.check_with(&mut pool, &mut solver, gt).is_unsat());
        assert_eq!(scoped.depth(), 1);
        assert!(scoped.check(&mut pool, &mut solver).is_sat());
    }

    #[test]
    fn model_reuse_is_verified_not_assumed() {
        let (mut pool, mut solver, mut scoped) = harness();
        let x = pool.fresh("x", Width::W8);
        let c0 = pool.constant(0, Width::W8);
        let c9 = pool.constant(9, Width::W8);
        let lt9 = pool.ult(x, c9);
        scoped.push(lt9);
        assert!(scoped.check(&mut pool, &mut solver).is_sat());
        // The default model is x = 0; pushing x > 0 must NOT be answered by
        // reuse — the solver must run and produce a different model.
        let gt0 = pool.ult(c0, x);
        scoped.push(gt0);
        let r = scoped.check(&mut pool, &mut solver);
        let m = r.model().expect("0 < x < 9 is sat");
        let v = m.value(pool.as_var(x).unwrap()).unwrap();
        assert!(v > 0 && v < 9);
        assert_eq!(scoped.stats().model_reuse_hits, 0);
    }
}
