//! Interval-set domains over unsigned bitvector values.
//!
//! A [`IntervalSet`] is a sorted, disjoint, non-adjacent list of closed
//! unsigned intervals `[lo, hi]` within the value range of a [`Width`]. It is
//! the domain representation used by the solver's constraint propagation:
//! comparisons against constants intersect the set, disequalities punch
//! holes, and wrapping additions rotate it (possibly splitting one interval
//! into two).

use std::fmt;

use crate::width::Width;

/// A closed unsigned interval `[lo, hi]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Interval {
        assert!(lo <= hi, "interval [{lo}, {hi}] is empty");
        Interval { lo, hi }
    }

    /// Number of values in the interval (saturating at `u64::MAX`).
    pub fn len(&self) -> u64 {
        (self.hi - self.lo).saturating_add(1)
    }

    /// Closed intervals are never empty (kept for API symmetry with `len`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `v` lies in the interval.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// A set of unsigned values at a given width, stored as sorted disjoint
/// intervals.
///
/// # Examples
///
/// ```
/// use achilles_solver::{IntervalSet, Width};
///
/// let mut d = IntervalSet::full(Width::W8);
/// d.intersect_range(10, 20);
/// d.remove_value(15);
/// assert!(d.contains(14));
/// assert!(!d.contains(15));
/// assert_eq!(d.len(), 10);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct IntervalSet {
    width: Width,
    // Sorted, disjoint, non-adjacent.
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// The full domain `[0, 2^w - 1]`.
    pub fn full(width: Width) -> IntervalSet {
        IntervalSet {
            width,
            ivs: vec![Interval::new(0, width.max_unsigned())],
        }
    }

    /// The empty domain.
    pub fn empty(width: Width) -> IntervalSet {
        IntervalSet { width, ivs: vec![] }
    }

    /// A single value.
    pub fn singleton(width: Width, v: u64) -> IntervalSet {
        let v = width.truncate(v);
        IntervalSet {
            width,
            ivs: vec![Interval::new(v, v)],
        }
    }

    /// A single interval `[lo, hi]` (bounds truncated to the width).
    ///
    /// # Panics
    ///
    /// Panics if, after truncation, `lo > hi`.
    pub fn range(width: Width, lo: u64, hi: u64) -> IntervalSet {
        let lo = width.truncate(lo);
        let hi = width.truncate(hi);
        IntervalSet {
            width,
            ivs: vec![Interval::new(lo, hi)],
        }
    }

    /// The width of this domain.
    pub fn width(&self) -> Width {
        self.width
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Number of values in the set (saturating).
    pub fn len(&self) -> u64 {
        self.ivs
            .iter()
            .fold(0u64, |acc, iv| acc.saturating_add(iv.len()))
    }

    /// Whether the set contains exactly one value; returns it.
    pub fn as_singleton(&self) -> Option<u64> {
        if self.ivs.len() == 1 && self.ivs[0].lo == self.ivs[0].hi {
            Some(self.ivs[0].lo)
        } else {
            None
        }
    }

    /// Whether `v` is in the set.
    pub fn contains(&self, v: u64) -> bool {
        self.ivs.iter().any(|iv| iv.contains(v))
    }

    /// Smallest value in the set.
    pub fn min(&self) -> Option<u64> {
        self.ivs.first().map(|iv| iv.lo)
    }

    /// Largest value in the set.
    pub fn max(&self) -> Option<u64> {
        self.ivs.last().map(|iv| iv.hi)
    }

    /// The underlying intervals (sorted, disjoint).
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    fn normalize(mut ivs: Vec<Interval>) -> Vec<Interval> {
        ivs.sort_by_key(|iv| iv.lo);
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            if let Some(last) = out.last_mut() {
                // Merge overlapping or adjacent intervals.
                if iv.lo <= last.hi.saturating_add(1) {
                    last.hi = last.hi.max(iv.hi);
                    continue;
                }
            }
            out.push(iv);
        }
        out
    }

    /// Intersects in place with `[lo, hi]`.
    pub fn intersect_range(&mut self, lo: u64, hi: u64) {
        if lo > hi {
            self.ivs.clear();
            return;
        }
        self.ivs.retain_mut(|iv| {
            if iv.hi < lo || iv.lo > hi {
                return false;
            }
            iv.lo = iv.lo.max(lo);
            iv.hi = iv.hi.min(hi);
            true
        });
    }

    /// Intersects in place with another set of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn intersect(&mut self, other: &IntervalSet) {
        assert_eq!(self.width, other.width, "interval set width mismatch");
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            let a = self.ivs[i];
            let b = other.ivs[j];
            let lo = a.lo.max(b.lo);
            let hi = a.hi.min(b.hi);
            if lo <= hi {
                out.push(Interval::new(lo, hi));
            }
            if a.hi < b.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        self.ivs = out;
    }

    /// Unions in place with another set of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn union(&mut self, other: &IntervalSet) {
        assert_eq!(self.width, other.width, "interval set width mismatch");
        let mut all = self.ivs.clone();
        all.extend_from_slice(&other.ivs);
        self.ivs = Self::normalize(all);
    }

    /// Removes a single value from the set.
    pub fn remove_value(&mut self, v: u64) {
        let v = self.width.truncate(v);
        let mut out = Vec::with_capacity(self.ivs.len() + 1);
        for iv in &self.ivs {
            if !iv.contains(v) {
                out.push(*iv);
                continue;
            }
            if iv.lo < v {
                out.push(Interval::new(iv.lo, v - 1));
            }
            if iv.hi > v {
                out.push(Interval::new(v + 1, iv.hi));
            }
        }
        self.ivs = out;
    }

    /// The complement within `[0, 2^w - 1]`.
    pub fn complement(&self) -> IntervalSet {
        let max = self.width.max_unsigned();
        let mut out = Vec::new();
        let mut next = 0u64;
        let mut open = true;
        for iv in &self.ivs {
            if iv.lo > next {
                out.push(Interval::new(next, iv.lo - 1));
            }
            if iv.hi == max {
                open = false;
                break;
            }
            next = iv.hi + 1;
        }
        if open && next <= max {
            out.push(Interval::new(next, max));
        }
        IntervalSet {
            width: self.width,
            ivs: out,
        }
    }

    /// Adds the constant `c` to every value, wrapping at the width.
    ///
    /// A wrapped interval splits into two, so the result may have one more
    /// interval than the input. This is the inverse-image operation used when
    /// propagating constraints through `x + c`.
    pub fn add_const(&self, c: u64) -> IntervalSet {
        let c = self.width.truncate(c);
        if c == 0 {
            return self.clone();
        }
        let max = self.width.max_unsigned();
        let mut out = Vec::with_capacity(self.ivs.len() + 1);
        for iv in &self.ivs {
            let lo = self.width.truncate(iv.lo.wrapping_add(c));
            let hi = self.width.truncate(iv.hi.wrapping_add(c));
            if lo <= hi {
                out.push(Interval::new(lo, hi));
            } else {
                // The interval wrapped around the top.
                out.push(Interval::new(lo, max));
                out.push(Interval::new(0, hi));
            }
        }
        IntervalSet {
            width: self.width,
            ivs: Self::normalize(out),
        }
    }

    /// Subtracts the constant `c` from every value, wrapping at the width.
    pub fn sub_const(&self, c: u64) -> IntervalSet {
        self.add_const(self.width.truncate(c.wrapping_neg()))
    }

    /// Iterates over all values in ascending order.
    ///
    /// Intended for small domains; the iterator is lazy so callers can bound
    /// the number of values they draw.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            idx: 0,
            next: self.ivs.first().map(|iv| iv.lo),
        }
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.ivs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if iv.lo == iv.hi {
                write!(f, "{}", iv.lo)?;
            } else {
                write!(f, "[{}, {}]", iv.lo, iv.hi)?;
            }
        }
        write!(f, "}}:{}", self.width)
    }
}

/// Ascending-order value iterator over an [`IntervalSet`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a IntervalSet,
    idx: usize,
    next: Option<u64>,
}

impl Iterator for Iter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let v = self.next?;
        let iv = self.set.ivs[self.idx];
        if v < iv.hi {
            self.next = Some(v + 1);
        } else {
            self.idx += 1;
            self.next = self.set.ivs.get(self.idx).map(|iv| iv.lo);
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_singleton() {
        let d = IntervalSet::full(Width::W8);
        assert_eq!(d.len(), 256);
        assert!(d.contains(0) && d.contains(255));
        let s = IntervalSet::singleton(Width::W8, 300);
        assert_eq!(s.as_singleton(), Some(44)); // truncated
    }

    #[test]
    fn intersect_range_clips() {
        let mut d = IntervalSet::full(Width::W8);
        d.intersect_range(10, 20);
        assert_eq!(d.len(), 11);
        d.intersect_range(15, 255);
        assert_eq!((d.min(), d.max()), (Some(15), Some(20)));
        d.intersect_range(30, 40);
        assert!(d.is_empty());
    }

    #[test]
    fn remove_value_splits() {
        let mut d = IntervalSet::range(Width::W8, 0, 10);
        d.remove_value(5);
        assert_eq!(d.len(), 10);
        assert!(!d.contains(5));
        assert_eq!(d.intervals().len(), 2);
        d.remove_value(0);
        d.remove_value(10);
        assert_eq!((d.min(), d.max()), (Some(1), Some(9)));
    }

    #[test]
    fn complement_round_trip() {
        let mut d = IntervalSet::full(Width::W8);
        d.intersect_range(10, 20);
        d.remove_value(15);
        let c = d.complement();
        assert_eq!(c.len(), 256 - 10);
        assert!(c.contains(15));
        assert!(!c.contains(16));
        let cc = c.complement();
        assert_eq!(cc, d);
    }

    #[test]
    fn complement_of_full_and_empty() {
        let full = IntervalSet::full(Width::W8);
        assert!(full.complement().is_empty());
        let empty = IntervalSet::empty(Width::W8);
        assert_eq!(empty.complement(), full);
    }

    #[test]
    fn add_const_wraps_and_splits() {
        let d = IntervalSet::range(Width::W8, 250, 255);
        let shifted = d.add_const(10);
        // [250,255] + 10 = [4,9] wrapped.
        assert_eq!((shifted.min(), shifted.max()), (Some(4), Some(9)));
        let partial = IntervalSet::range(Width::W8, 200, 255).add_const(30);
        // [200,255]+30 = [230,255] ∪ [0,29] → wraps into two intervals.
        assert_eq!(partial.intervals().len(), 2);
        assert!(partial.contains(230) && partial.contains(255));
        assert!(partial.contains(0) && partial.contains(29));
        assert!(!partial.contains(30) && !partial.contains(229));
    }

    #[test]
    fn sub_const_inverts_add() {
        let d = IntervalSet::range(Width::W16, 100, 200);
        let back = d.add_const(1234).sub_const(1234);
        assert_eq!(back, d);
    }

    #[test]
    fn intersect_sets() {
        let mut a = IntervalSet::range(Width::W8, 0, 100);
        a.remove_value(50);
        let b = IntervalSet::range(Width::W8, 40, 60);
        a.intersect(&b);
        assert_eq!(a.len(), 20);
        assert!(!a.contains(50));
        assert!(a.contains(40) && a.contains(60));
    }

    #[test]
    fn union_merges_adjacent() {
        let mut a = IntervalSet::range(Width::W8, 0, 10);
        let b = IntervalSet::range(Width::W8, 11, 20);
        a.union(&b);
        assert_eq!(a.intervals().len(), 1);
        assert_eq!(a.len(), 21);
    }

    #[test]
    fn iter_visits_all() {
        let mut d = IntervalSet::range(Width::W8, 3, 7);
        d.remove_value(5);
        let vals: Vec<u64> = d.iter().collect();
        assert_eq!(vals, vec![3, 4, 6, 7]);
    }

    #[test]
    fn width64_full_len_saturates() {
        let d = IntervalSet::full(Width::W64);
        assert_eq!(d.len(), u64::MAX);
        assert!(d.contains(u64::MAX));
    }
}
