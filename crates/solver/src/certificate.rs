//! Unsat certificates: checkable refutation traces.
//!
//! Every [`SatResult::Unsat`](crate::search::SatResult) verdict carries a
//! [`Certificate`]: the subset of input assertions the refutation actually
//! used (the **unsat core**, identified by structural fingerprint so it is
//! pool-independent), plus a [`ProofNode`] tree describing *how* the search
//! refuted the conjunction — interval restrictions, variable merges, clause
//! splits and value enumerations.
//!
//! The certificate never records claimed truth sets or domains: it only
//! points at assertions (by **ref**, see below) and variables (by
//! fingerprint). An independent checker re-derives every restriction from
//! the terms themselves, so a propagation bug in the search cannot validate
//! its own mistake. The checker lives in the separate `achilles-proofcheck`
//! crate; this module only defines the data types and the process-wide
//! audit hook the checker installs.
//!
//! ## The ref protocol
//!
//! Proof steps justify themselves by *refs* — indices into a context the
//! checker builds deterministically. Converting an asserted term to
//! negation normal form yields a tree of `And` / `Or` / literal nodes; the
//! context entries are exactly the **literals and `Or` nodes** encountered
//! while structurally walking the asserted formulas in order (`And`
//! children are walked in place; an `Or` contributes one entry and its
//! children are *not* walked until a [`ProofNode::SplitOr`] case assumes
//! one of them). Splitting pushes the assumed disjunct's entries at the
//! end of the context and truncates them when the case closes, so a ref is
//! meaningful exactly within the subtree that assumed it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::term::{TermId, TermPool};

/// One domain-refinement step of a refutation, replayed by the checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// Asserting the literal at `just` restricted the domain of the class
    /// of the variable with fingerprint `var`.
    Restrict {
        /// Context ref of the justifying literal.
        just: u32,
        /// Structural fingerprint of the restricted variable.
        var: u128,
    },
    /// Asserting the (positive, affine-vs-affine) equality at `just`
    /// merged the two variable classes it relates.
    Merge {
        /// Context ref of the justifying equality literal.
        just: u32,
    },
}

/// A refutation tree. Leaves close a branch with a conflict; inner nodes
/// replay derivations or case-split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofNode {
    /// Apply `steps` in order, then check `then` in the refined state.
    Derive {
        /// Restrictions/merges to replay, in derivation order.
        steps: Vec<ProofStep>,
        /// The rest of the refutation.
        then: Box<ProofNode>,
    },
    /// Case-split on the `Or` entry at ref `or`: one case per disjunct,
    /// in disjunct order. Each case assumes its disjunct (pushing its
    /// entries onto the context) and must itself be a refutation.
    SplitOr {
        /// Context ref of the `Or` entry being split.
        or: u32,
        /// One refutation per disjunct.
        cases: Vec<ProofNode>,
    },
    /// Enumerate the domain of the class of variable `var` (the checker's
    /// *own* domain, ascending): one case per value, each checked with the
    /// class pinned to that value.
    SplitVal {
        /// Structural fingerprint of the enumerated variable.
        var: u128,
        /// One refutation per domain value, ascending.
        cases: Vec<ProofNode>,
    },
    /// The literal at `just` evaluates to the wrong polarity under the
    /// current pinned values.
    Falsified {
        /// Context ref of the contradicted literal.
        just: u32,
    },
    /// Re-deriving the restriction for the literal at `just` empties the
    /// domain of the variable with fingerprint `var`.
    EmptyRestrict {
        /// Context ref of the justifying literal.
        just: u32,
        /// Structural fingerprint of the emptied variable.
        var: u128,
    },
    /// Re-deriving the merge for the equality at `just` intersects two
    /// class domains to nothing.
    EmptyMerge {
        /// Context ref of the justifying equality literal.
        just: u32,
    },
    /// Core assertion `core` normalizes to literally `false`.
    FalseCore {
        /// Index into [`Certificate::core`].
        core: u32,
    },
    /// An unjustified claim. The checker rejects it unconditionally; the
    /// search never emits it (it exists so tests can tamper with proofs).
    Admitted,
}

impl ProofNode {
    /// Number of nodes and steps in the tree (a size measure, not a
    /// soundness property).
    pub fn size(&self) -> u64 {
        match self {
            ProofNode::Derive { steps, then } => 1 + steps.len() as u64 + then.size(),
            ProofNode::SplitOr { cases, .. } | ProofNode::SplitVal { cases, .. } => {
                1 + cases.iter().map(ProofNode::size).sum::<u64>()
            }
            _ => 1,
        }
    }
}

/// A checkable refutation of a conjunction of assertions.
///
/// `core` lists the structural fingerprints ([`TermPool::term_fp`]) of the
/// assertions the proof references, in assertion order — the unsat core,
/// minimal by construction (an assertion no step or split points at is
/// dropped). The proof's refs are expressed against the context built from
/// the core assertions alone, so the certificate also validates against any
/// *superset* of the core: that is what makes cores reusable as cache
/// subsumption keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Fingerprints of the core assertions, in assertion order.
    pub core: Vec<u128>,
    /// The refutation, with refs relative to the core context.
    pub proof: ProofNode,
    /// Total nodes + steps (diagnostic size measure).
    pub steps: u64,
}

/// A process-wide certificate audit callback.
///
/// Installed by the independent checker crate; called by
/// [`Solver::check`](crate::solver::Solver::check) for every freshly
/// computed or subsumption-derived `Unsat` verdict. Returning `Err`
/// indicates a rejected certificate and makes the solver panic — a wrong
/// pruning proof must never pass silently.
pub type ProofAuditFn =
    Arc<dyn Fn(&mut TermPool, &[TermId], &Certificate) -> Result<(), String> + Send + Sync>;

static AUDIT: RwLock<Option<ProofAuditFn>> = RwLock::new(None);
static AUDIT_CHECKS: AtomicU64 = AtomicU64::new(0);
static AUDIT_WALL_NANOS: AtomicU64 = AtomicU64::new(0);

/// Installs (or, with `None`, removes) the process-wide proof audit hook.
pub fn set_proof_audit(f: Option<ProofAuditFn>) {
    *AUDIT.write().expect("proof audit lock poisoned") = f;
}

/// Whether a proof audit hook is installed.
pub fn proof_audit_installed() -> bool {
    AUDIT.read().expect("proof audit lock poisoned").is_some()
}

/// Runs the installed audit hook, if any, recording check count and wall
/// time. Returns `Ok(())` when no hook is installed.
pub fn proof_audit(
    pool: &mut TermPool,
    assertions: &[TermId],
    cert: &Certificate,
) -> Result<(), String> {
    let hook = AUDIT.read().expect("proof audit lock poisoned").clone();
    let Some(hook) = hook else {
        return Ok(());
    };
    let started = Instant::now();
    let result = hook(pool, assertions, cert);
    AUDIT_CHECKS.fetch_add(1, Ordering::Relaxed);
    AUDIT_WALL_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    result
}

/// `(certificates checked, wall time spent checking)` since process start.
pub fn proof_audit_stats() -> (u64, Duration) {
    (
        AUDIT_CHECKS.load(Ordering::Relaxed),
        Duration::from_nanos(AUDIT_WALL_NANOS.load(Ordering::Relaxed)),
    )
}
