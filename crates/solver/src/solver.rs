//! The [`Solver`] facade: query caching and statistics on top of the search
//! engine.
//!
//! Achilles issues highly repetitive queries — the server path constraint
//! grows one conjunct at a time, and each extension is re-checked against
//! many client path predicates — so a result cache keyed on the (sorted)
//! assertion set pays for itself immediately. Terms are immutable and
//! interned, which makes the cache sound.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::SharedCache;
use crate::certificate::{proof_audit, Certificate};
use crate::model::Model;
use crate::search::{solve, SatResult, SearchStats, SolverConfig};
use crate::term::{TermId, TermPool};

/// Aggregate statistics across all queries of a [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Total queries issued (including cache hits).
    pub queries: u64,
    /// Queries answered from the local cache.
    pub cache_hits: u64,
    /// Queries answered from the attached [`SharedCache`] (a result another
    /// worker computed).
    pub shared_hits: u64,
    /// Queries whose sorted/deduplicated key was reused without allocating
    /// (the incremental fast path).
    pub presorted_queries: u64,
    /// Satisfiable answers (computed, not cached).
    pub sat: u64,
    /// Unsatisfiable answers (computed, not cached).
    pub unsat: u64,
    /// Unknown answers (computed, not cached).
    pub unknown: u64,
    /// Unsat answers that carried a freshly recorded certificate (equals
    /// `unsat`; kept separate so aggregated reports can distinguish
    /// certificate-bearing verdicts from legacy/unknown prunes).
    pub certified_unsat: u64,
    /// Queries answered by the shared cache's core-subsumption tier: no
    /// exact entry existed, but the query's fingerprint set contained a
    /// cached unsat core.
    pub core_subsumption_hits: u64,
    /// Total time spent in the search engine.
    pub solve_time: Duration,
    /// Sum of search-internal counters.
    pub search: SearchStats,
}

impl SolverStats {
    /// Mirrors the counter delta `self - before` into the process-wide
    /// metrics registry ([`achilles_obs::global`]). Explorations call this
    /// once when their final stats are assembled, so the registry stays a
    /// pure view over the same accumulators callers already see.
    ///
    /// Workload-fixed counters (queries, verdict splits, certificates,
    /// subsumption answers, DPLL search work) are
    /// [`Deterministic`](achilles_obs::Class::Deterministic); counters that
    /// depend on cross-worker cache races or the clock (`shared_hits`,
    /// `solve_time`) are [`Wall`](achilles_obs::Class::Wall).
    pub fn record_metrics_delta(&self, before: &SolverStats) {
        use achilles_obs::Class::{Deterministic, Wall};
        let reg = achilles_obs::global();
        let d = |a: u64, b: u64| a.saturating_sub(b);
        for (name, after, prev) in [
            (
                "achilles_solver_queries_total",
                self.queries,
                before.queries,
            ),
            (
                "achilles_solver_cache_hits_total",
                self.cache_hits,
                before.cache_hits,
            ),
            (
                "achilles_solver_presorted_queries_total",
                self.presorted_queries,
                before.presorted_queries,
            ),
            ("achilles_solver_sat_total", self.sat, before.sat),
            ("achilles_solver_unsat_total", self.unsat, before.unsat),
            (
                "achilles_solver_unknown_total",
                self.unknown,
                before.unknown,
            ),
            (
                "achilles_solver_certified_unsat_total",
                self.certified_unsat,
                before.certified_unsat,
            ),
            (
                "achilles_solver_core_subsumption_hits_total",
                self.core_subsumption_hits,
                before.core_subsumption_hits,
            ),
            (
                "achilles_solver_search_decisions_total",
                self.search.decisions,
                before.search.decisions,
            ),
            (
                "achilles_solver_search_propagations_total",
                self.search.propagations,
                before.search.propagations,
            ),
            (
                "achilles_solver_search_deferred_checks_total",
                self.search.deferred_checks,
                before.search.deferred_checks,
            ),
            (
                "achilles_solver_search_verification_failures_total",
                self.search.verification_failures,
                before.search.verification_failures,
            ),
            (
                "achilles_solver_search_certificate_steps_total",
                self.search.certificate_steps,
                before.search.certificate_steps,
            ),
        ] {
            reg.add(Deterministic, name, &[], d(after, prev));
        }
        reg.add(
            Wall,
            "achilles_solver_shared_hits_total",
            &[],
            d(self.shared_hits, before.shared_hits),
        );
        reg.add(
            Wall,
            "achilles_solver_solve_time_ns_total",
            &[],
            self.solve_time.saturating_sub(before.solve_time).as_nanos() as u64,
        );
    }
}

#[derive(Clone)]
enum Cached {
    Sat(Arc<Model>),
    Unsat(Arc<Certificate>),
    Unknown,
}

impl Cached {
    fn to_result(&self) -> SatResult {
        match self {
            Cached::Sat(m) => SatResult::Sat(Arc::clone(m)),
            Cached::Unsat(c) => SatResult::Unsat(Arc::clone(c)),
            Cached::Unknown => SatResult::Unknown,
        }
    }
}

/// A caching satisfiability interface over a [`TermPool`].
///
/// # Examples
///
/// ```
/// use achilles_solver::{Solver, TermPool, Width};
///
/// let mut pool = TermPool::new();
/// let mut solver = Solver::new();
/// let x = pool.fresh("x", Width::W8);
/// let c = pool.constant(9, Width::W8);
/// let lt = pool.ult(x, c);
/// assert!(solver.is_sat(&mut pool, &[lt]));
/// assert!(solver.is_sat(&mut pool, &[lt])); // second call hits the cache
/// assert_eq!(solver.stats().cache_hits, 1);
/// ```
#[derive(Default)]
pub struct Solver {
    config: SolverConfig,
    stats: SolverStats,
    cache: HashMap<Vec<TermId>, Cached>,
    shared: Option<Arc<SharedCache>>,
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Creates a solver with a custom configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            config,
            ..Solver::default()
        }
    }

    /// Attaches a cross-worker [`SharedCache`]: misses in the local cache
    /// consult it before searching, and computed results are published to it.
    pub fn with_shared_cache(mut self, shared: Arc<SharedCache>) -> Solver {
        self.shared = Some(shared);
        self
    }

    /// The attached shared cache, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedCache>> {
        self.shared.as_ref()
    }

    /// The configuration in use.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Clears the query cache (statistics are kept).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Number of cached query results.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Decides the conjunction of `assertions`.
    pub fn check(&mut self, pool: &mut TermPool, assertions: &[TermId]) -> SatResult {
        self.stats.queries += 1;
        // Fast path: server path constraints grow one conjunct at a time, so
        // the assertion slice is usually already sorted and unique — look it
        // up by reference before paying for the owned, sorted key.
        let presorted = assertions.windows(2).all(|w| w[0] < w[1]);
        if presorted {
            self.stats.presorted_queries += 1;
            if let Some(hit) = self.cache.get(assertions) {
                self.stats.cache_hits += 1;
                return hit.to_result();
            }
        }
        let key: Vec<TermId> = if presorted {
            assertions.to_vec()
        } else {
            let mut key = assertions.to_vec();
            key.sort_unstable();
            key.dedup();
            key
        };
        if !presorted {
            if let Some(hit) = self.cache.get(&key) {
                self.stats.cache_hits += 1;
                return hit.to_result();
            }
        }
        // Second tier: a result another worker already computed.
        let shared_key = if self.shared.is_some() {
            Some(SharedCache::key_of(pool, &key))
        } else {
            None
        };
        if let (Some(shared), Some(skey)) = (self.shared.as_ref(), shared_key.as_ref()) {
            if let Some(result) = shared.lookup(pool, skey) {
                self.stats.shared_hits += 1;
                let cached = match &result {
                    SatResult::Sat(m) => Cached::Sat(Arc::clone(m)),
                    SatResult::Unsat(c) => Cached::Unsat(Arc::clone(c)),
                    SatResult::Unknown => Cached::Unknown,
                };
                self.cache.insert(key, cached);
                return result;
            }
            // Third tier: core subsumption. No exact entry, but if the query
            // contains a cached unsat core it is unsat — the cached
            // certificate proves it (its core is a subset of this query's
            // assertions, so it validates here unchanged). Not re-published
            // to the shared cache: the index entry already covers every
            // superset.
            if let Some(cert) = shared.lookup_subsumed(skey) {
                self.stats.core_subsumption_hits += 1;
                if let Err(e) = proof_audit(pool, &key, &cert) {
                    panic!("subsumption-derived certificate rejected: {e}");
                }
                self.cache.insert(key, Cached::Unsat(Arc::clone(&cert)));
                return SatResult::Unsat(cert);
            }
        }
        let started = Instant::now();
        // Canonical structural order for the search: pool-local `TermId`s
        // depend on interning order (which, under parallel exploration,
        // depends on the schedule a worker happened to run), and the search's
        // clause/variable tie-breaks follow assertion order. Sorting by
        // structural fingerprint makes the computed model a function of the
        // query alone, so structurally equal queries yield identical models
        // on every worker.
        let mut ordered = key.clone();
        ordered.sort_unstable_by_key(|&t| pool.term_fp(t));
        let (result, search_stats) = solve(pool, &ordered, &self.config);
        self.stats.solve_time += started.elapsed();
        self.stats.search.decisions += search_stats.decisions;
        self.stats.search.propagations += search_stats.propagations;
        self.stats.search.deferred_checks += search_stats.deferred_checks;
        self.stats.search.verification_failures += search_stats.verification_failures;
        self.stats.search.certificate_steps += search_stats.certificate_steps;
        let cached = match &result {
            SatResult::Sat(m) => {
                self.stats.sat += 1;
                Cached::Sat(Arc::clone(m))
            }
            SatResult::Unsat(c) => {
                self.stats.unsat += 1;
                self.stats.certified_unsat += 1;
                if let Err(e) = proof_audit(pool, &ordered, c) {
                    panic!("freshly computed certificate rejected: {e}");
                }
                Cached::Unsat(Arc::clone(c))
            }
            SatResult::Unknown => {
                self.stats.unknown += 1;
                Cached::Unknown
            }
        };
        if let (Some(shared), Some(skey)) = (self.shared.as_ref(), shared_key) {
            shared.insert(pool, skey, &result);
        }
        self.cache.insert(key, cached);
        result
    }

    /// Whether the conjunction is satisfiable (`Unknown` counts as `false`).
    pub fn is_sat(&mut self, pool: &mut TermPool, assertions: &[TermId]) -> bool {
        self.check(pool, assertions).is_sat()
    }

    /// Whether the conjunction is provably unsatisfiable.
    pub fn is_unsat(&mut self, pool: &mut TermPool, assertions: &[TermId]) -> bool {
        self.check(pool, assertions).is_unsat()
    }

    /// A model of the conjunction, if satisfiable (shared, never cloned).
    pub fn model(&mut self, pool: &mut TermPool, assertions: &[TermId]) -> Option<Arc<Model>> {
        match self.check(pool, assertions) {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .field("cache_len", &self.cache.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::width::Width;

    #[test]
    fn cache_hit_on_repeat_query() {
        let mut pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh("x", Width::W8);
        let c = pool.constant(3, Width::W8);
        let eq = pool.eq(x, c);
        assert!(s.is_sat(&mut pool, &[eq]));
        assert!(s.is_sat(&mut pool, &[eq]));
        assert_eq!(s.stats().queries, 2);
        assert_eq!(s.stats().cache_hits, 1);
        assert_eq!(s.stats().sat, 1);
    }

    #[test]
    fn cache_key_is_order_insensitive() {
        let mut pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh("x", Width::W8);
        let c1 = pool.constant(1, Width::W8);
        let c9 = pool.constant(9, Width::W8);
        let a = pool.ult(c1, x);
        let b = pool.ult(x, c9);
        assert!(s.is_sat(&mut pool, &[a, b]));
        assert!(s.is_sat(&mut pool, &[b, a]));
        assert_eq!(s.stats().cache_hits, 1);
    }

    #[test]
    fn unsat_cached_too() {
        let mut pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh("x", Width::W8);
        let c = pool.constant(0, Width::W8);
        let lt = pool.ult(x, c); // x < 0: unsat (folds to false already)
        assert!(s.is_unsat(&mut pool, &[lt]));
        assert!(s.is_unsat(&mut pool, &[lt]));
        assert_eq!(s.stats().unsat, 1);
    }

    #[test]
    fn model_round_trips_through_eval() {
        let mut pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh("x", Width::W16);
        let y = pool.fresh("y", Width::W16);
        let sum = pool.add(x, y);
        let c = pool.constant(100, Width::W16);
        let eq = pool.eq(sum, c);
        let m = s.model(&mut pool, &[eq]).expect("x + y == 100 is sat");
        assert_eq!(m.eval(&pool, eq), Some(1));
    }
}
