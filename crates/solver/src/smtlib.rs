//! SMT-LIB 2 export.
//!
//! Renders solver queries as standard SMT-LIB 2 scripts over the `QF_UFBV`
//! logic, so any query this engine answers can be cross-checked against an
//! external solver (Z3, STP, cvc5, Bitwuzla). Opaque functions are declared
//! as uninterpreted functions — the external solver then reasons about them
//! *more* liberally than our generate-and-test evaluation, so agreement is
//! expected on `Unsat` from the external side and on `Sat` from ours.
//!
//! ```
//! use achilles_solver::{smtlib, TermPool, Width};
//!
//! let mut pool = TermPool::new();
//! let x = pool.fresh("x", Width::W8);
//! let c = pool.constant(5, Width::W8);
//! let lt = pool.ult(x, c);
//! let script = smtlib::to_smtlib(&pool, &[lt]);
//! assert!(script.contains("(declare-const x (_ BitVec 8))"));
//! assert!(script.contains("(check-sat)"));
//! ```

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::term::{FunId, Op, TermId, TermPool, VarId};
use crate::width::Width;

/// Renders the conjunction of `assertions` as a complete SMT-LIB 2 script.
pub fn to_smtlib(pool: &TermPool, assertions: &[TermId]) -> String {
    let mut out = String::new();
    out.push_str("(set-logic QF_UFBV)\n");

    // Declarations: variables and opaque functions, in first-use order.
    let mut vars: Vec<VarId> = Vec::new();
    for &a in assertions {
        pool.collect_vars(a, &mut vars);
    }
    for v in &vars {
        let info = pool.var_info(*v);
        let _ = writeln!(
            out,
            "(declare-const {} (_ BitVec {}))",
            sanitize(&info.name),
            info.width.bits()
        );
    }
    let mut funs: HashSet<FunId> = HashSet::new();
    for &a in assertions {
        collect_funs(pool, a, &mut funs);
    }
    let mut fun_list: Vec<FunId> = funs.into_iter().collect();
    fun_list.sort_unstable();
    for f in fun_list {
        // Arity is per-application in our term language; declare from the
        // first application found.
        if let Some(arity_widths) = first_application_widths(pool, assertions, f) {
            let info = pool.fun_info(f);
            let args: Vec<String> = arity_widths
                .iter()
                .map(|w| format!("(_ BitVec {})", w.bits()))
                .collect();
            let _ = writeln!(
                out,
                "(declare-fun {} ({}) (_ BitVec {}))",
                sanitize(&info.name),
                args.join(" "),
                info.width.bits()
            );
        }
    }

    for &a in assertions {
        let _ = writeln!(out, "(assert {})", bool_term(pool, a));
    }
    out.push_str("(check-sat)\n(get-model)\n");
    out
}

/// SMT-LIB identifiers cannot contain `.`, `[`, `]`, `'` — map them to `_`
/// and wrap in `|...|` quoting when anything was replaced.
fn sanitize(name: &str) -> String {
    if name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        name.to_string()
    } else {
        format!("|{}|", name.replace('|', "_"))
    }
}

fn collect_funs(pool: &TermPool, t: TermId, out: &mut HashSet<FunId>) {
    let node = pool.node(t).clone();
    if let Op::Fun(f) = node.op {
        out.insert(f);
    }
    for a in node.args {
        collect_funs(pool, a, out);
    }
}

fn first_application_widths(
    pool: &TermPool,
    assertions: &[TermId],
    f: FunId,
) -> Option<Vec<Width>> {
    fn walk(pool: &TermPool, t: TermId, f: FunId) -> Option<Vec<Width>> {
        let node = pool.node(t).clone();
        if node.op == Op::Fun(f) {
            return Some(node.args.iter().map(|&a| pool.width(a)).collect());
        }
        for a in node.args {
            if let Some(w) = walk(pool, a, f) {
                return Some(w);
            }
        }
        None
    }
    assertions.iter().find_map(|&a| walk(pool, a, f))
}

/// Renders a width-1 term as an SMT-LIB `Bool` expression.
fn bool_term(pool: &TermPool, t: TermId) -> String {
    debug_assert_eq!(pool.width(t), Width::BOOL);
    let node = pool.node(t).clone();
    match node.op {
        Op::Const(v) => if v != 0 { "true" } else { "false" }.to_string(),
        Op::Not => format!("(not {})", bool_term(pool, node.args[0])),
        Op::And => format!(
            "(and {} {})",
            bool_term(pool, node.args[0]),
            bool_term(pool, node.args[1])
        ),
        Op::Or => format!(
            "(or {} {})",
            bool_term(pool, node.args[0]),
            bool_term(pool, node.args[1])
        ),
        Op::Eq => format!(
            "(= {} {})",
            bv_term(pool, node.args[0]),
            bv_term(pool, node.args[1])
        ),
        Op::Ult => format!(
            "(bvult {} {})",
            bv_term(pool, node.args[0]),
            bv_term(pool, node.args[1])
        ),
        Op::Ule => format!(
            "(bvule {} {})",
            bv_term(pool, node.args[0]),
            bv_term(pool, node.args[1])
        ),
        Op::Ite => format!(
            "(ite {} {} {})",
            bool_term(pool, node.args[0]),
            bool_term(pool, node.args[1]),
            bool_term(pool, node.args[2])
        ),
        // Width-1 bitvector leaves used as booleans.
        _ => format!("(= {} #b1)", bv_term(pool, t)),
    }
}

/// Renders a term as an SMT-LIB bitvector expression.
fn bv_term(pool: &TermPool, t: TermId) -> String {
    let node = pool.node(t).clone();
    let w = node.width;
    match node.op {
        Op::Const(v) => format!("(_ bv{v} {})", w.bits()),
        Op::Var(v) => sanitize(&pool.var_info(v).name),
        Op::Add => bin(pool, "bvadd", &node.args),
        Op::Sub => bin(pool, "bvsub", &node.args),
        Op::Mul => bin(pool, "bvmul", &node.args),
        Op::Neg => format!("(bvneg {})", bv_term(pool, node.args[0])),
        Op::BitAnd => bin(pool, "bvand", &node.args),
        Op::BitOr => bin(pool, "bvor", &node.args),
        Op::BitXor => bin(pool, "bvxor", &node.args),
        Op::BitNot => format!("(bvnot {})", bv_term(pool, node.args[0])),
        Op::Shl => bin(pool, "bvshl", &node.args),
        Op::Lshr => bin(pool, "bvlshr", &node.args),
        Op::ZExt => {
            let inner = node.args[0];
            let extend = w.bits() - pool.width(inner).bits();
            format!("((_ zero_extend {extend}) {})", bv_term(pool, inner))
        }
        Op::SExt => {
            let inner = node.args[0];
            let extend = w.bits() - pool.width(inner).bits();
            format!("((_ sign_extend {extend}) {})", bv_term(pool, inner))
        }
        Op::Extract { lo } => {
            let hi = u32::from(lo) + w.bits() - 1;
            format!("((_ extract {hi} {lo}) {})", bv_term(pool, node.args[0]))
        }
        Op::Concat => bin(pool, "concat", &node.args),
        // Boolean structure embedded in a bitvector position: wrap in ite.
        Op::Eq | Op::Ult | Op::Ule | Op::Not | Op::And | Op::Or => {
            format!("(ite {} #b1 #b0)", bool_term(pool, t))
        }
        Op::Ite => format!(
            "(ite {} {} {})",
            bool_term(pool, node.args[0]),
            bv_term(pool, node.args[1]),
            bv_term(pool, node.args[2])
        ),
        Op::Fun(f) => {
            let name = sanitize(&pool.fun_info(f).name);
            let args: Vec<String> = node.args.iter().map(|&a| bv_term(pool, a)).collect();
            format!("({} {})", name, args.join(" "))
        }
    }
}

fn bin(pool: &TermPool, op: &str, args: &[TermId]) -> String {
    format!(
        "({op} {} {})",
        bv_term(pool, args[0]),
        bv_term(pool, args[1])
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_variables_and_asserts() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W16);
        let c = p.constant(100, Width::W16);
        let lt = p.ult(x, c);
        let s = to_smtlib(&p, &[lt]);
        assert!(s.contains("(set-logic QF_UFBV)"), "{s}");
        assert!(s.contains("(declare-const x (_ BitVec 16))"), "{s}");
        assert!(s.contains("(assert (bvult x (_ bv100 16)))"), "{s}");
        assert!(s.ends_with("(check-sat)\n(get-model)\n"), "{s}");
    }

    #[test]
    fn quotes_dotted_names() {
        let mut p = TermPool::new();
        let x = p.fresh("msg.cmd", Width::W8);
        let c = p.constant(1, Width::W8);
        let eq = p.eq(x, c);
        let s = to_smtlib(&p, &[eq]);
        assert!(s.contains("|msg.cmd|"), "{s}");
    }

    #[test]
    fn declares_uninterpreted_functions() {
        let mut p = TermPool::new();
        let f = p.register_fun("crc16", Width::W16, |_| 0);
        let x = p.fresh("x", Width::W8);
        let y = p.fresh("y", Width::W8);
        let app = p.apply(f, vec![x, y]);
        let out = p.fresh("out", Width::W16);
        let eq = p.eq(out, app);
        let s = to_smtlib(&p, &[eq]);
        assert!(
            s.contains("(declare-fun crc16 ((_ BitVec 8) (_ BitVec 8)) (_ BitVec 16))"),
            "{s}"
        );
        assert!(s.contains("(crc16 x y)"), "{s}");
    }

    #[test]
    fn signed_lowering_exports_as_biased_unsigned() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let z = p.constant(0, Width::W8);
        let slt = p.slt(x, z);
        let s = to_smtlib(&p, &[slt]);
        // The lowered form (x + 0x80 <u 0x80) appears.
        assert!(s.contains("bvult"), "{s}");
        assert!(s.contains("bvadd"), "{s}");
    }

    #[test]
    fn boolean_structure_round_trips() {
        let mut p = TermPool::new();
        let a = p.fresh("a", Width::BOOL);
        let b = p.fresh("b", Width::BOOL);
        let or = p.or(a, b);
        let not = p.not(or);
        let s = to_smtlib(&p, &[not]);
        assert!(s.contains("(not (or (= a #b1) (= b #b1)))"), "{s}");
    }

    #[test]
    fn exports_real_negate_style_queries() {
        // The shape Achilles sends: path constraints plus a negation
        // disjunction with fresh primed variables.
        let mut p = TermPool::new();
        let msg = p.fresh("msg.address", Width::W32);
        let lam = p.fresh("symb_Address'", Width::W32);
        let hundred = p.constant(100, Width::W32);
        let pc = p.slt(msg, hundred);
        let eq = p.eq(msg, lam);
        let oob = p.sge(lam, hundred);
        let neg = p.and(eq, oob);
        let s = to_smtlib(&p, &[pc, neg]);
        assert!(s.contains("|msg.address|"), "{s}");
        assert!(s.contains("|symb_Address'|"), "{s}");
        assert!(s.matches("(assert").count() == 2, "{s}");
    }
}
