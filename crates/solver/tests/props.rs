//! Property-based tests for the solver.
//!
//! The central property: for small widths the engine must agree with a
//! brute-force enumeration of all assignments — `Sat` models must satisfy
//! the query, and `Unsat` answers must have no satisfying assignment at all.

use achilles_solver::{
    solve, IntervalSet, SatResult, SolverConfig, TermId, TermPool, VarId, Width,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

const W4: Width = Width::W8; // variables are 8-bit but constants small

/// A tiny constraint AST we can both lower to terms and brute-force.
#[derive(Clone, Debug)]
enum C {
    EqConst(usize, u8),
    NeConst(usize, u8),
    LtConst(usize, u8),
    GtConst(usize, u8),
    SltConst(usize, i8),
    EqVar(usize, usize),
    AddEq(usize, u8, u8), // x + a == b
    Or(Box<C>, Box<C>),
    And(Box<C>, Box<C>),
}

fn lower(pool: &mut TermPool, vars: &[TermId], c: &C) -> TermId {
    match *c {
        C::EqConst(v, k) => {
            let kc = pool.constant(u64::from(k), W4);
            pool.eq(vars[v], kc)
        }
        C::NeConst(v, k) => {
            let kc = pool.constant(u64::from(k), W4);
            pool.ne(vars[v], kc)
        }
        C::LtConst(v, k) => {
            let kc = pool.constant(u64::from(k), W4);
            pool.ult(vars[v], kc)
        }
        C::GtConst(v, k) => {
            let kc = pool.constant(u64::from(k), W4);
            pool.ult(kc, vars[v])
        }
        C::SltConst(v, k) => {
            let kc = pool.constant_signed(i64::from(k), W4);
            pool.slt(vars[v], kc)
        }
        C::EqVar(a, b) => pool.eq(vars[a], vars[b]),
        C::AddEq(v, a, b) => {
            let ac = pool.constant(u64::from(a), W4);
            let bc = pool.constant(u64::from(b), W4);
            let sum = pool.add(vars[v], ac);
            pool.eq(sum, bc)
        }
        C::Or(ref l, ref r) => {
            let lt = lower(pool, vars, l);
            let rt = lower(pool, vars, r);
            pool.or(lt, rt)
        }
        C::And(ref l, ref r) => {
            let lt = lower(pool, vars, l);
            let rt = lower(pool, vars, r);
            pool.and(lt, rt)
        }
    }
}

fn holds(assign: &[u8], c: &C) -> bool {
    match *c {
        C::EqConst(v, k) => assign[v] == k,
        C::NeConst(v, k) => assign[v] != k,
        C::LtConst(v, k) => assign[v] < k,
        C::GtConst(v, k) => assign[v] > k,
        C::SltConst(v, k) => (assign[v] as i8) < k,
        C::EqVar(a, b) => assign[a] == assign[b],
        C::AddEq(v, a, b) => assign[v].wrapping_add(a) == b,
        C::Or(ref l, ref r) => holds(assign, l) || holds(assign, r),
        C::And(ref l, ref r) => holds(assign, l) && holds(assign, r),
    }
}

fn leaf(num_vars: usize) -> impl Strategy<Value = C> {
    let v = 0..num_vars;
    prop_oneof![
        (v.clone(), any::<u8>()).prop_map(|(v, k)| C::EqConst(v, k)),
        (v.clone(), any::<u8>()).prop_map(|(v, k)| C::NeConst(v, k)),
        (v.clone(), any::<u8>()).prop_map(|(v, k)| C::LtConst(v, k)),
        (v.clone(), any::<u8>()).prop_map(|(v, k)| C::GtConst(v, k)),
        (v.clone(), any::<i8>()).prop_map(|(v, k)| C::SltConst(v, k)),
        (v.clone(), v.clone()).prop_map(|(a, b)| C::EqVar(a, b)),
        (v, any::<u8>(), any::<u8>()).prop_map(|(v, a, b)| C::AddEq(v, a, b)),
    ]
}

fn constraint(num_vars: usize) -> impl Strategy<Value = C> {
    leaf(num_vars).prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| C::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| C::And(Box::new(a), Box::new(b))),
        ]
    })
}

/// Brute-force over two 8-bit variables (65k assignments).
fn brute_force_2(cs: &[C]) -> bool {
    for a in 0u16..=255 {
        for b in 0u16..=255 {
            let assign = [a as u8, b as u8];
            if cs.iter().all(|c| holds(&assign, c)) {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_agrees_with_brute_force(cs in prop::collection::vec(constraint(2), 1..5)) {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", W4);
        let y = pool.fresh("y", W4);
        let vars = [x, y];
        let assertions: Vec<TermId> =
            cs.iter().map(|c| lower(&mut pool, &vars, c)).collect();
        let (result, _) = solve(&mut pool, &assertions, &SolverConfig::default());
        let expected = brute_force_2(&cs);
        match result {
            SatResult::Sat(model) => {
                prop_assert!(expected, "solver said Sat but brute force disagrees");
                for &a in &assertions {
                    // Unassigned variables (eliminated by simplification)
                    // default to zero, matching how the model was verified.
                    prop_assert!(model.eval_bool_total(&pool, a), "model violates assertion");
                }
            }
            SatResult::Unsat(_) => prop_assert!(!expected, "solver said Unsat but a model exists"),
            SatResult::Unknown => {
                // Unknown is allowed (sampling fallback) but should not occur
                // in this fully-enumerable fragment.
                prop_assert!(false, "unexpected Unknown on small-width query");
            }
        }
    }

    #[test]
    fn interval_set_ops_match_naive_sets(
        ranges in prop::collection::vec((any::<u8>(), any::<u8>()), 1..6),
        removals in prop::collection::vec(any::<u8>(), 0..8),
        shift in any::<u8>(),
    ) {
        let w = Width::W8;
        let mut set = IntervalSet::empty(w);
        let mut naive: BTreeSet<u8> = BTreeSet::new();
        for &(a, b) in &ranges {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            set.union(&IntervalSet::range(w, u64::from(lo), u64::from(hi)));
            naive.extend(lo..=hi);
        }
        for &r in &removals {
            set.remove_value(u64::from(r));
            naive.remove(&r);
        }
        prop_assert_eq!(set.len(), naive.len() as u64);
        for v in 0u16..=255 {
            prop_assert_eq!(set.contains(u64::from(v)), naive.contains(&(v as u8)));
        }
        // Wrapping shift matches naive wrapping shift.
        let shifted = set.add_const(u64::from(shift));
        let naive_shifted: BTreeSet<u8> = naive.iter().map(|&v| v.wrapping_add(shift)).collect();
        for v in 0u16..=255 {
            prop_assert_eq!(
                shifted.contains(u64::from(v)),
                naive_shifted.contains(&(v as u8)),
                "mismatch at {} after shift {}", v, shift
            );
        }
        // Complement is an involution and partitions the space.
        let comp = set.complement();
        prop_assert_eq!(comp.len() + set.len(), 256);
        prop_assert_eq!(comp.complement(), set);
    }

    #[test]
    fn models_respect_variable_widths(k in any::<u16>()) {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W16);
        let kc = pool.constant(u64::from(k), Width::W16);
        let eq = pool.eq(x, kc);
        let (result, _) = solve(&mut pool, &[eq], &SolverConfig::default());
        let model = result.model().expect("x == k is sat");
        let xv: VarId = pool.as_var(x).unwrap();
        prop_assert_eq!(model.value(xv), Some(u64::from(k)));
    }
}
