//! # achilles-targets — the built-in target registry
//!
//! The single place where every protocol the repository ships is
//! registered. Drivers (bench bins, the conformance suite, examples) call
//! [`builtin_registry`] and select targets by name — they contain no
//! per-protocol match arms, so onboarding a protocol means writing one
//! crate that implements [`TargetSpec`](achilles::TargetSpec) and adding
//! **one `register` call below**.
//!
//! ```
//! use achilles::AchillesSession;
//! use achilles_targets::builtin_registry;
//!
//! let registry = builtin_registry();
//! assert_eq!(
//!     registry.names(),
//!     vec!["fsp", "pbft", "paxos", "twopc", "gossip", "shardexec"]
//! );
//! let spec = registry.get("twopc").expect("registered below");
//! let report = AchillesSession::new(&**spec).run();
//! assert_eq!(Some(report.trojans.len()), spec.expected_trojans());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::Arc;

use achilles::{TargetRegistry, TargetSpec};

/// Builds the registry of every shipped protocol, each under its default
/// (paper) configuration, in onboarding order.
pub fn builtin_registry() -> TargetRegistry {
    let mut registry = TargetRegistry::new();
    registry.register(Arc::new(achilles_fsp::FspSpec::accuracy()));
    registry.register(Arc::new(achilles_pbft::PbftSpec::paper()));
    registry.register(Arc::new(achilles_paxos::PaxosSpec::default()));
    registry.register(Arc::new(achilles_twopc::TwopcSpec::default()));
    registry.register(Arc::new(achilles_gossip::GossipSpec::default()));
    registry.register(Arc::new(achilles_shardexec::ShardexecSpec::default()));
    registry
}

/// The registry's session-bearing specs, in registration order — the
/// targets sweep campaigns and the fleetd service operate on (specs that
/// declare no sessions have no schedule space to sweep).
pub fn session_bearing(registry: &TargetRegistry) -> Vec<&Arc<dyn TargetSpec>> {
    registry
        .iter()
        .filter(|spec| !spec.sessions().is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_holds_all_shipped_protocols() {
        let registry = builtin_registry();
        assert_eq!(
            registry.names(),
            vec!["fsp", "pbft", "paxos", "twopc", "gossip", "shardexec"]
        );
        for spec in registry.iter() {
            assert!(!spec.description().is_empty(), "{}", spec.name());
            assert!(!spec.local_state_modes().is_empty(), "{}", spec.name());
            assert_eq!(spec.replay_target().name(), spec.name());
        }
    }
}
