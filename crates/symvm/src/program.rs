//! The node-program interface.
//!
//! A *node program* is the unit Achilles analyzes: the message-handling code
//! of one distributed-system node (a client utility, a server event-loop
//! body, a replica). Programs are written as ordinary Rust against
//! [`SymEnv`](crate::env::SymEnv) and are re-executed once per explored path,
//! so they must be deterministic given the environment's responses: all
//! inputs (stdin, command-line arguments, network messages, clocks) must be
//! obtained through the environment, and any local state must be rebuilt
//! inside [`NodeProgram::run`].

use crate::env::SymEnv;

/// Why a path ended early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Halt {
    /// The path condition became unsatisfiable.
    Infeasible,
    /// The program (or an annotation) explicitly dropped the path.
    Dropped,
    /// A [`PathObserver`](crate::observer::PathObserver) pruned the path.
    Pruned,
    /// The per-path depth budget was exhausted.
    DepthExhausted,
}

/// Result type threaded through node programs: environment calls that can
/// terminate the current path return `Err(Halt)`, which the program
/// propagates with `?`.
pub type PathResult<T> = Result<T, Halt>;

/// Message-handling code of one distributed-system node.
///
/// # Examples
///
/// ```
/// use achilles_symvm::{NodeProgram, PathResult, SymEnv};
/// use achilles_solver::Width;
///
/// /// A node that reads one byte of input and replies only to even values.
/// struct EvenServer;
///
/// impl NodeProgram for EvenServer {
///     fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
///         let input = env.sym("input", Width::W8);
///         let one = env.pool_mut().constant(1, Width::W8);
///         let bit = env.pool_mut().bit_and(input, one);
///         let zero = env.pool_mut().constant(0, Width::W8);
///         let even = env.pool_mut().eq(bit, zero);
///         if env.branch(even)? {
///             env.mark_accept();
///         } else {
///             env.mark_reject();
///         }
///         Ok(())
///     }
/// }
/// ```
pub trait NodeProgram {
    /// Executes the node once along the current path.
    ///
    /// Returning `Ok(())` ends the path normally; `Err(Halt)` ends it early
    /// (typically by propagating an environment call with `?`).
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()>;
}

impl<F> NodeProgram for F
where
    F: Fn(&mut SymEnv<'_>) -> PathResult<()>,
{
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        self(env)
    }
}
