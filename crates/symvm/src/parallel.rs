//! Parallel path exploration on a work-stealing pool.
//!
//! The re-execution-with-decision-prefix design makes every worklist item
//! independent: a prefix fully determines its path, so items can run on any
//! thread in any order. This module exploits that with a hand-rolled
//! work-stealing pool (std threads only — the build environment is offline):
//!
//! * **Isolation** — every worker owns a [`TermPool::fork`] of the base pool
//!   and its own [`Solver`]. Base-pool ids stay valid in every fork, and
//!   interning is deterministic per prefix, so a worker re-executing a given
//!   prefix builds bit-identical constraint *structure* no matter which
//!   worker runs it.
//! * **Sharing** — workers attach one [`SharedCache`], keyed on structural
//!   fingerprints, so a path-prefix query solved by one worker is a cache
//!   hit for every other worker that replays the same prefix.
//! * **Stealing** — each worker treats its own deque as a LIFO (depth-first,
//!   cache-friendly) and steals the *oldest* item from a victim's deque
//!   (shallow prefixes = large subtrees, classic Cilk-style stealing).
//! * **Determinism** — completed paths are merged, re-interned into the base
//!   pool ([`TermPool::import_term`]), sorted into canonical depth-first
//!   order (`true` before `false` at every branch), and renumbered. The
//!   output is therefore independent of scheduling; only wall-clock-derived
//!   statistics vary between runs.
//!
//! Budgets (`max_runs`, `max_paths`) are enforced pool-globally *and
//! deterministically*: raising the worker count never multiplies the budget,
//! and a capped run reports bit-identical results for every worker count.
//! Instead of a raced stop signal (which let up to `workers - 1`
//! scheduling-dependent extra paths survive), each budget keeps a
//! [`CanonicalBound`]: a bounded max-heap of the `cap` DFS-least decision
//! prefixes seen so far. Once the heap is full, items that sort after its
//! maximum are pruned (everything under them sorts after the eventual cut
//! anyway), in-flight items finish normally, and the merge truncates the
//! completed set to the first `max_runs` scheduled items / first
//! `max_paths` paths in canonical depth-first order — exactly the set a
//! sequential capped run completes.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use achilles_solver::{SharedCache, Solver, SolverStats, TermId, TermPool};

use crate::env::{Registry, SymEnv};
use crate::executor::ExploreConfig;
use crate::message::SymMessage;
use crate::observer::{ObserverCx, PathObserver};
use crate::program::{Halt, NodeProgram};
use crate::record::{ExploreResult, ExploreStats, PathRecord, Verdict};

/// What one worker brings home from a parallel exploration.
#[derive(Debug)]
pub struct WorkerReport<O> {
    /// Worker index (0-based).
    pub worker: usize,
    /// The worker's observer, with whatever it accumulated.
    pub observer: O,
    /// The worker's term pool — needed to interpret any `TermId` the
    /// observer recorded (e.g. Trojan path constraints) before importing it
    /// into the base pool.
    pub pool: TermPool,
    /// The worker's solver counters (per-worker solve time lives here).
    pub solver_stats: SolverStats,
    /// Worklist items this worker stole from others.
    pub steals: u64,
    /// Time this worker spent executing items (excludes idle waiting).
    pub busy: Duration,
}

/// Outcome of [`Executor::explore_parallel`](crate::Executor::explore_parallel).
#[derive(Debug)]
pub struct ParallelOutcome<O> {
    /// Merged exploration result: paths in canonical depth-first order with
    /// all terms imported into the base pool.
    pub result: ExploreResult,
    /// Provisional path id → final canonical id. Observers saw provisional
    /// ids in [`PathObserver::on_path_end`]; anything they recorded keyed on
    /// path ids must be remapped through this.
    pub id_map: HashMap<usize, usize>,
    /// Per-worker reports, indexed by worker.
    pub workers: Vec<WorkerReport<O>>,
    /// The shared query cache (exposed for its hit-rate statistics).
    pub shared_cache: Arc<SharedCache>,
}

/// A decision prefix ordered by [`dfs_cmp`] (for the budget max-heaps).
#[derive(PartialEq, Eq)]
struct DfsKey(Vec<bool>);

impl Ord for DfsKey {
    fn cmp(&self, other: &DfsKey) -> std::cmp::Ordering {
        dfs_cmp(&self.0, &other.0)
    }
}

impl PartialOrd for DfsKey {
    fn partial_cmp(&self, other: &DfsKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The canonical budget bound: a work limiter for binding budgets.
///
/// The *exact* canonical cut is recomputed lock-free at merge time (from
/// the prefixes each worker collected); this structure only exists to
/// keep a binding budget from exploring the whole space first. It is
/// deliberately lazy: while the recorded count is below `cap` — the
/// common, non-binding case — `record` is a single relaxed atomic
/// increment and `prunes` a single relaxed load, with no lock traffic and
/// no retained prefixes. Only once the count crosses `cap` does the
/// shared max-heap start collecting prefixes, and pruning engages once it
/// holds `cap` of them.
///
/// Soundness of pruning against a late-started heap: the heap holds the
/// `cap` DFS-least of a *subset* of the recorded prefixes, so its maximum
/// is ≥ the `cap`-th DFS-least of the full set — which itself is ≥ the
/// final merge cut (cuts only tighten as more prefixes arrive). Any item
/// pruned as `> heap max` therefore sorts after the final cut, and so
/// does its entire subtree; the merge truncation would have discarded all
/// of it anyway.
struct CanonicalBound {
    cap: usize,
    count: AtomicUsize,
    heap: Mutex<BinaryHeap<DfsKey>>,
}

impl CanonicalBound {
    fn new(cap: usize) -> CanonicalBound {
        CanonicalBound {
            cap,
            count: AtomicUsize::new(0),
            heap: Mutex::new(BinaryHeap::new()),
        }
    }

    /// Whether `prefix` (and with it the whole subtree below it) provably
    /// sorts after the final cut.
    fn prunes(&self, prefix: &[bool]) -> bool {
        if self.cap == 0 {
            return true;
        }
        if self.count.load(Ordering::Relaxed) < self.cap {
            return false;
        }
        let heap = self.heap.lock().expect("budget bound poisoned");
        heap.len() >= self.cap
            && heap
                .peek()
                .is_some_and(|max| dfs_cmp(prefix, &max.0) == std::cmp::Ordering::Greater)
    }

    /// Records a prefix: counts it, and once the budget is binding also
    /// feeds the pruning heap (keeping only the `cap` DFS-least recorded).
    fn record(&self, prefix: &[bool]) {
        if self.cap == 0 {
            return;
        }
        let seen = self.count.fetch_add(1, Ordering::Relaxed);
        if seen < self.cap {
            return; // budget not binding yet: no lock, no clone
        }
        let mut heap = self.heap.lock().expect("budget bound poisoned");
        if heap.len() < self.cap {
            heap.push(DfsKey(prefix.to_vec()));
        } else if heap
            .peek()
            .is_some_and(|max| dfs_cmp(prefix, &max.0) == std::cmp::Ordering::Less)
        {
            heap.pop();
            heap.push(DfsKey(prefix.to_vec()));
        }
    }
}

/// Pool-global coordination state.
struct Coordinator {
    deques: Vec<Mutex<VecDeque<Vec<bool>>>>,
    /// Items queued or running; the exploration is over when this is zero.
    pending: AtomicUsize,
    /// Canonical bound over executed item prefixes (`max_runs`).
    run_bound: CanonicalBound,
    /// Canonical bound over completed path decisions (`max_paths`).
    path_bound: CanonicalBound,
    /// Per-thief steal counters.
    steals: Vec<AtomicU64>,
    idle: Mutex<()>,
    wake: Condvar,
}

impl Coordinator {
    fn new(workers: usize, config: &ExploreConfig) -> Coordinator {
        Coordinator {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            run_bound: CanonicalBound::new(config.max_runs),
            path_bound: CanonicalBound::new(config.max_paths),
            steals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    fn push(&self, worker: usize, task: Vec<bool>) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.deques[worker]
            .lock()
            .expect("deque poisoned")
            .push_back(task);
        self.wake.notify_all();
    }

    /// One task is done (its fork pushes, if any, happened before this).
    fn finish(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.wake.notify_all();
        }
    }

    /// Pops own work (newest first) or steals (oldest first) from a victim.
    fn take(&self, worker: usize) -> Option<Vec<bool>> {
        if let Some(task) = self.deques[worker]
            .lock()
            .expect("deque poisoned")
            .pop_back()
        {
            return Some(task);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(task) = self.deques[victim]
                .lock()
                .expect("deque poisoned")
                .pop_front()
            {
                self.steals[worker].fetch_add(1, Ordering::Relaxed);
                achilles_obs::instant("steal", "symvm");
                return Some(task);
            }
        }
        None
    }

    fn done(&self) -> bool {
        self.pending.load(Ordering::SeqCst) == 0
    }
}

/// Canonical depth-first order on decision vectors: `true` sorts before
/// `false` at the first differing branch. This is exactly the completion
/// order of the sequential DFS executor, so merged parallel results line up
/// with single-threaded runs.
pub(crate) fn dfs_cmp(a: &[bool], b: &[bool]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match (x, y) {
            (true, false) => return std::cmp::Ordering::Less,
            (false, true) => return std::cmp::Ordering::Greater,
            _ => {}
        }
    }
    // Completed paths are never prefixes of one another (both sides of a
    // branch consume a decision); compare lengths only for totality.
    a.len().cmp(&b.len())
}

/// Runs `program` to completion over all feasible paths using `workers`
/// threads. See the module docs for the isolation/determinism argument.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_parallel<O, F>(
    base_pool: &mut TermPool,
    base_solver: &Solver,
    config: &ExploreConfig,
    program: &(dyn NodeProgram + Sync),
    make_observer: F,
) -> ParallelOutcome<O>
where
    O: PathObserver + Send,
    F: Fn(usize) -> O + Sync,
{
    debug_assert!(
        config.order == crate::executor::ExploreOrder::Dfs,
        "the work-stealing pool schedules depth-first per worker and cannot \
         reproduce BFS completion order; BFS explorations must stay on the \
         sequential path (see Executor::explore_multi)"
    );
    let workers = config.workers.max(1);
    let started = Instant::now();
    // Shared-cache persistence across pipeline phases: when the base
    // solver carries a cache (the `Achilles` engine attaches one for its
    // whole lifetime), every exploration of that engine shares it —
    // queries the client phase solved are hits for the server phase's
    // workers. Each exploration is its own epoch, so hits on earlier
    // phases' entries are measurable (`ExploreStats::cross_phase_cache_hits`).
    let shared = base_solver
        .shared_cache()
        .cloned()
        .unwrap_or_else(|| Arc::new(SharedCache::new()));
    shared.advance_epoch();
    let cross_before = shared.stats().cross_epoch_hits;
    let coord = Coordinator::new(workers, config);
    coord.push(0, Vec::new());

    let worker_outcomes: Vec<WorkerOutcome<O>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let worker_pool = base_pool.fork(w as u64 + 1);
            let worker_solver = Solver::with_config(base_solver.config().clone())
                .with_shared_cache(Arc::clone(&shared));
            let coord = &coord;
            let make_observer = &make_observer;
            handles.push(scope.spawn(move || {
                run_worker(
                    w,
                    worker_pool,
                    worker_solver,
                    config,
                    program,
                    coord,
                    make_observer(w),
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    merge(
        base_pool,
        worker_outcomes,
        coord,
        shared,
        cross_before,
        started,
        workers,
        config,
    )
}

/// Everything a worker thread accumulates.
struct WorkerOutcome<O> {
    worker: usize,
    pool: TermPool,
    observer: O,
    solver_stats: SolverStats,
    /// Completed paths with provisional ids, plus local stats.
    paths: Vec<PathRecord>,
    /// The worklist-item prefix each completed path was scheduled from,
    /// parallel to `paths` (needed for the canonical `max_runs` cut).
    item_prefixes: Vec<Vec<bool>>,
    /// Every item prefix this worker executed (completed or not) — the raw
    /// material for the exact `max_runs` cut at merge time. Collected
    /// worker-locally so the hot path takes no shared lock.
    executed_prefixes: Vec<Vec<bool>>,
    stats: ExploreStats,
    busy: Duration,
}

fn run_worker<O: PathObserver>(
    worker: usize,
    mut pool: TermPool,
    mut solver: Solver,
    config: &ExploreConfig,
    program: &(dyn NodeProgram + Sync),
    coord: &Coordinator,
    mut observer: O,
) -> WorkerOutcome<O> {
    let worker_span = achilles_obs::span_owned(format!("worker-{worker}"), "symvm");
    let mut registry = Registry::new(config.recv_script.clone());
    let mut paths: Vec<PathRecord> = Vec::new();
    let mut item_prefixes: Vec<Vec<bool>> = Vec::new();
    let mut executed_prefixes: Vec<Vec<bool>> = Vec::new();
    let mut stats = ExploreStats::default();
    let mut busy = Duration::ZERO;

    loop {
        let Some(prefix) = coord.take(worker) else {
            if coord.done() {
                break;
            }
            // Nothing to do right now: sleep until someone pushes or the
            // last task finishes. The timeout guards against missed wakeups.
            let guard = coord.idle.lock().expect("idle lock poisoned");
            let _ = coord
                .wake
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("idle lock poisoned");
            continue;
        };

        // Canonical budgets: an item whose prefix sorts after a full bound
        // can only produce runs/paths the final truncation would discard, so
        // it is dropped (descendants included) without executing. In-flight
        // items always finish; there is no raced stop signal.
        if coord.run_bound.prunes(&prefix) || coord.path_bound.prunes(&prefix) {
            coord.finish();
            continue;
        }
        coord.run_bound.record(&prefix);
        executed_prefixes.push(prefix.clone());

        let _item_span = achilles_obs::span("item", "symvm");
        let item_started = Instant::now();
        stats.runs += 1;
        observer.on_path_start();
        let item_prefix = prefix.clone();
        let mut env = SymEnv::new(
            &mut pool,
            &mut solver,
            &mut observer,
            &mut registry,
            prefix,
            &config.initial_constraints,
            config.max_depth,
            config.recv_prefix.clone(),
            config.sym_salt,
        );
        let run_result = program.run(&mut env);
        let out = env.into_output();

        stats.branch_checks += out.branch_checks;
        stats.unknown_branches += out.unknown_branches;
        stats.model_reuse_hits += out.model_reuse_hits;
        for fork in out.forks {
            coord.push(worker, fork);
        }

        match run_result {
            Ok(()) => {
                let verdict = out.verdict.unwrap_or(if out.sent.is_empty() {
                    Verdict::Reject
                } else {
                    Verdict::Accept
                });
                let record = PathRecord {
                    // Provisional id: interleaved so it is unique across
                    // workers without a stride that could overflow `usize`;
                    // canonical renumbering happens in `merge`.
                    id: paths.len() * coord.deques.len() + worker,
                    constraints: out.constraints,
                    sent: out.sent,
                    received: out.received,
                    verdict,
                    decisions: out.decisions,
                    branch_points: out.branch_points,
                    notes: out.notes,
                };
                let mut cx = ObserverCx {
                    pool: &mut pool,
                    solver: &mut solver,
                    pc: &record.constraints,
                    received: &record.received,
                };
                observer.on_path_end(&mut cx, &record);
                coord.path_bound.record(&record.decisions);
                paths.push(record);
                item_prefixes.push(item_prefix);
                stats.completed += 1;
            }
            Err(Halt::Infeasible) => stats.infeasible += 1,
            Err(Halt::Dropped) => stats.dropped += 1,
            Err(Halt::Pruned) => stats.pruned += 1,
            Err(Halt::DepthExhausted) => stats.depth_exhausted += 1,
        }
        busy += item_started.elapsed();
        coord.finish();
    }

    // Merge point: close this worker's span and hand its trace buffer to
    // the process sink before the scoped thread unwinds.
    drop(worker_span);
    achilles_obs::drain_thread();

    let solver_stats = *solver.stats();
    WorkerOutcome {
        worker,
        pool,
        observer,
        solver_stats,
        paths,
        item_prefixes,
        executed_prefixes,
        stats,
        busy,
    }
}

#[allow(clippy::too_many_arguments)]
fn merge<O>(
    base_pool: &mut TermPool,
    outcomes: Vec<WorkerOutcome<O>>,
    coord: Coordinator,
    shared: Arc<SharedCache>,
    cross_before: u64,
    started: Instant,
    workers: usize,
    config: &ExploreConfig,
) -> ParallelOutcome<O> {
    let _span = achilles_obs::span("merge", "symvm");
    let mut stats = ExploreStats {
        workers,
        workers_effective: workers,
        ..ExploreStats::default()
    };
    let steals_of: Vec<u64> = coord
        .steals
        .iter()
        .map(|s| s.load(Ordering::Relaxed))
        .collect();
    stats.steals = steals_of.iter().sum();

    // Import every completed path's terms into the base pool, then sort into
    // canonical DFS order and renumber.
    let mut merged: Vec<(Vec<bool>, PathRecord)> = Vec::new();
    let mut executed: Vec<Vec<bool>> = Vec::new();
    let mut reports = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        let WorkerOutcome {
            worker,
            pool,
            observer,
            solver_stats,
            paths,
            item_prefixes,
            executed_prefixes,
            stats: ws,
            busy,
        } = outcome;
        stats.absorb_counters(&ws);
        // Each worker ran a fresh solver, so its stats are already deltas.
        solver_stats.record_metrics_delta(&SolverStats::default());
        stats.shared_cache_hits += solver_stats.shared_hits;
        stats.certified_unsat += solver_stats.certified_unsat;
        stats.core_subsumption_hits += solver_stats.core_subsumption_hits;
        executed.extend(executed_prefixes);

        let mut memo: HashMap<TermId, TermId> = HashMap::new();
        for (item_prefix, mut record) in item_prefixes.into_iter().zip(paths) {
            record.constraints = record
                .constraints
                .iter()
                .map(|&t| base_pool.import_term(&pool, t, &mut memo))
                .collect();
            record.sent = import_messages(base_pool, &pool, record.sent, &mut memo);
            record.received = import_messages(base_pool, &pool, record.received, &mut memo);
            merged.push((item_prefix, record));
        }
        let steals = steals_of[worker];
        reports.push(WorkerReport {
            worker,
            observer,
            pool,
            solver_stats,
            steals,
            busy,
        });
    }

    // The exact canonical `max_runs` cut: the DFS-greatest of the first
    // `max_runs` executed item prefixes, computed from the workers' local
    // collections (the shared pruning heap is only a work limiter and may
    // hold a late subset). `None` when the budget never bound.
    let run_cut: Option<Vec<bool>> = if executed.len() > config.max_runs && config.max_runs > 0 {
        let (_, cut, _) =
            executed.select_nth_unstable_by(config.max_runs - 1, |a, b| dfs_cmp(a, b));
        Some(cut.clone())
    } else if config.max_runs == 0 {
        Some(Vec::new())
    } else {
        None
    };

    // Canonical truncation. A sequential capped run completes exactly the
    // first `max_runs` scheduled items (and within them the first
    // `max_paths` paths) in depth-first order; the parallel run completed a
    // superset, so cutting by the run bound and then truncating the sorted
    // path list reproduces the sequential set bit-for-bit. Paths dropped
    // here stay out of `id_map`, so observer data keyed on their
    // provisional ids must be discarded by callers.
    if let Some(cut) = &run_cut {
        merged.retain(|(prefix, _)| dfs_cmp(prefix, cut) != std::cmp::Ordering::Greater);
    }
    merged.sort_by(|a, b| dfs_cmp(&a.1.decisions, &b.1.decisions));
    merged.truncate(config.max_paths);
    let mut merged: Vec<PathRecord> = merged.into_iter().map(|(_, record)| record).collect();
    let mut id_map = HashMap::with_capacity(merged.len());
    for (final_id, record) in merged.iter_mut().enumerate() {
        id_map.insert(record.id, final_id);
        record.id = final_id;
    }
    stats.runs = stats.runs.min(config.max_runs);
    stats.completed = merged.len();
    stats.cross_phase_cache_hits = shared.stats().cross_epoch_hits.saturating_sub(cross_before);
    stats.wall_time = started.elapsed();
    stats.record_metrics();

    ParallelOutcome {
        result: ExploreResult {
            paths: merged,
            stats,
        },
        id_map,
        workers: reports,
        shared_cache: shared,
    }
}

/// Maps `f` over `items` on up to `workers` threads, returning results in
/// item order.
///
/// This is the pool's second entry point, for workloads whose units are
/// *data* rather than decision prefixes — e.g. replaying discovered Trojan
/// witnesses against a concrete deployment, or negating independent client
/// path predicates. Items are claimed from a shared atomic cursor, so the
/// assignment of items to threads is scheduling-dependent, but the returned
/// vector is always ordered by item index: callers whose `f` is a pure
/// function of the item get deterministic output for every worker count.
///
/// `workers <= 1` (or fewer than two items) runs inline on the calling
/// thread with no pool overhead.
pub fn parallel_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(workers, items, |_| (), |(), i, t| f(i, t))
}

/// [`parallel_map`] with per-worker mutable context: `init(worker)` runs
/// once on each worker thread (e.g. to fork a
/// [`TermPool`](achilles_solver::TermPool) and build a private
/// [`Solver`](achilles_solver::Solver)), and `f` receives that context for
/// every item the worker claims.
///
/// Items are claimed from a shared cursor, so *which* worker computes an
/// item is scheduling-dependent — results are order-preserving regardless,
/// but `f` must produce the same value for an item under every context
/// `init` can build (contexts forked from common state satisfy this when
/// the per-item computation is structure-deterministic). Sequential
/// (`workers <= 1` or fewer than two items) runs use a single context on
/// the calling thread.
pub fn parallel_map_with<T, C, R, I, F>(workers: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn(usize) -> C + Sync,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 || items.len() < 2 {
        let mut cx = init(0);
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut cx, i, t))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let init = &init;
                let f = &f;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut cx = init(w);
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&mut cx, i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

fn import_messages(
    dst: &mut TermPool,
    src: &TermPool,
    messages: Vec<SymMessage>,
    memo: &mut HashMap<TermId, TermId>,
) -> Vec<SymMessage> {
    messages
        .into_iter()
        .map(|m| {
            let values = m
                .values()
                .iter()
                .map(|&t| dst.import_term(src, t, memo))
                .collect::<Vec<_>>();
            SymMessage::new(Arc::clone(m.layout()), values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::program::PathResult;
    use achilles_solver::Width;

    fn branching_program(env: &mut SymEnv<'_>) -> PathResult<()> {
        // 4 levels of threshold branches over one symbolic word: 16 leaves.
        let x = env.sym("x", Width::W16);
        let mut note = String::new();
        for i in 0..4u64 {
            let c = env.constant(1000 * (i + 1), Width::W16);
            note.push(if env.if_ult(x, c)? { 'L' } else { 'G' });
        }
        env.note(note);
        env.mark_accept();
        Ok(())
    }

    fn explore_with(workers: usize) -> (TermPool, ExploreResult) {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let config = ExploreConfig {
            workers,
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, config);
        let result = exec.explore_multi(&branching_program);
        (pool, result)
    }

    #[test]
    fn parallel_map_is_order_preserving_for_every_worker_count() {
        let items: Vec<u64> = (0..57).collect();
        let seq = parallel_map(1, &items, |i, &x| x * 2 + i as u64);
        for w in [2usize, 4, 9, 64] {
            assert_eq!(parallel_map(w, &items, |i, &x| x * 2 + i as u64), seq);
        }
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(4, &empty, |_, &x: &u64| x).is_empty());
        assert_eq!(parallel_map(8, &[41u64], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn dfs_cmp_orders_true_first() {
        use std::cmp::Ordering::*;
        assert_eq!(dfs_cmp(&[true, true], &[true, false]), Less);
        assert_eq!(dfs_cmp(&[false], &[true, false]), Greater);
        assert_eq!(dfs_cmp(&[true, false], &[true, false]), Equal);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let (seq_pool, seq) = explore_with(1);
        let (par_pool, par) = explore_with(4);
        assert_eq!(seq.paths.len(), par.paths.len());
        assert_eq!(seq.stats.runs, par.stats.runs);
        for (a, b) in seq.paths.iter().zip(&par.paths) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.decisions, b.decisions, "canonical DFS order");
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.notes, b.notes);
            // Constraint *structure* matches even though the parallel run
            // solved in worker pools: compare via fingerprints.
            let fa: Vec<u128> = a.constraints.iter().map(|&t| seq_pool.term_fp(t)).collect();
            let fb: Vec<u128> = b.constraints.iter().map(|&t| par_pool.term_fp(t)).collect();
            assert_eq!(fa, fb);
        }
        assert_eq!(par.stats.workers, 4);
    }

    #[test]
    fn parallel_observers_see_every_path() {
        struct Counter(u64);
        impl PathObserver for Counter {
            fn on_path_end(&mut self, _cx: &mut ObserverCx<'_>, _record: &PathRecord) {
                self.0 += 1;
            }
        }
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let config = ExploreConfig {
            workers: 3,
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, config);
        let outcome = exec.explore_parallel(&branching_program, |_| Counter(0));
        let seen: u64 = outcome.workers.iter().map(|w| w.observer.0).sum();
        assert_eq!(seen, outcome.result.paths.len() as u64);
        assert_eq!(outcome.workers.len(), 3);
        // Every provisional id is mapped.
        assert_eq!(outcome.id_map.len(), outcome.result.paths.len());
    }

    #[test]
    fn capped_budgets_truncate_canonically_for_every_worker_count() {
        // A binding `max_paths` (and separately `max_runs`) must leave the
        // exact same path set as the sequential capped run: the canonical
        // truncation replaces the old raced stop signal.
        let run = |workers: usize, max_paths: usize, max_runs: usize| {
            let mut pool = TermPool::new();
            let mut solver = Solver::new();
            let config = ExploreConfig {
                workers,
                max_paths,
                max_runs,
                ..ExploreConfig::default()
            };
            let mut exec = Executor::new(&mut pool, &mut solver, config);
            let result = exec.explore_multi(&branching_program);
            result
                .paths
                .iter()
                .map(|p| (p.id, p.decisions.clone(), p.notes.clone()))
                .collect::<Vec<_>>()
        };
        for (max_paths, max_runs) in [(5, usize::MAX >> 1), (16, 9), (3, 7)] {
            let seq = run(1, max_paths, max_runs);
            assert!(!seq.is_empty());
            for workers in [2usize, 4] {
                assert_eq!(
                    seq,
                    run(workers, max_paths, max_runs),
                    "workers={workers} max_paths={max_paths} max_runs={max_runs}"
                );
            }
        }
    }

    #[test]
    fn persistent_cache_yields_cross_phase_hits_on_reexploration() {
        // The Achilles engine attaches one SharedCache for its lifetime:
        // a later exploration (phase) re-uses queries an earlier one
        // solved, and the reuse is surfaced as cross_phase_cache_hits.
        let shared = Arc::new(SharedCache::new());
        let mut pool = TermPool::new();
        let solver = Solver::new().with_shared_cache(Arc::clone(&shared));
        let mut solver = solver;
        let config = ExploreConfig {
            workers: 3,
            ..ExploreConfig::default()
        };
        let first = {
            let mut exec = Executor::new(&mut pool, &mut solver, config.clone());
            exec.explore_multi(&branching_program)
        };
        assert_eq!(
            first.stats.cross_phase_cache_hits, 0,
            "nothing precedes the first phase"
        );
        let second = {
            let mut exec = Executor::new(&mut pool, &mut solver, config);
            exec.explore_multi(&branching_program)
        };
        assert!(
            second.stats.cross_phase_cache_hits > 0,
            "the second phase re-uses the first phase's published queries \
             (shared hits: {}, cross-phase: {})",
            second.stats.shared_cache_hits,
            second.stats.cross_phase_cache_hits,
        );
        // Reuse never perturbs results: published models are a function of
        // the query structure alone.
        assert_eq!(first.paths.len(), second.paths.len());
        for (a, b) in first.paths.iter().zip(&second.paths) {
            assert_eq!(a.decisions, b.decisions);
            assert_eq!(a.notes, b.notes);
        }
    }

    #[test]
    fn run_budget_is_per_pool_not_per_worker() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        // The 16-leaf program needs 16 runs; cap at 5 across 4 workers.
        let config = ExploreConfig {
            workers: 4,
            max_runs: 5,
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, config);
        let result = exec.explore_multi(&branching_program);
        assert!(
            result.stats.runs <= 5,
            "global budget must cap total runs, got {}",
            result.stats.runs
        );
    }

    #[test]
    fn imported_constraints_are_satisfiable_in_base_pool() {
        let (mut pool, result) = explore_with(4);
        let mut solver = Solver::new();
        for path in &result.paths {
            assert!(
                solver.is_sat(&mut pool, &path.constraints),
                "imported path constraints must be valid in the base pool"
            );
        }
    }
}
