//! # achilles-symvm — symbolic execution for distributed-system nodes
//!
//! This crate replaces the S2E platform in the Achilles reproduction
//! (ASPLOS'14): it systematically enumerates the feasible execution paths of
//! *node programs* — the message-handling code of distributed-system nodes —
//! collecting per-path constraints, sent messages, and accept/reject
//! classifications. Achilles builds the client predicate `P_C` and server
//! predicate `P_S` from these records.
//!
//! ## Model
//!
//! * A [`NodeProgram`] is deterministic Rust code that obtains every input
//!   through its [`SymEnv`] (the paper's intercepted syscalls) and branches
//!   on symbolic conditions via [`SymEnv::branch`].
//! * The [`Executor`] schedules paths as decision prefixes and re-executes
//!   the program once per path, forking at both-feasible branch points.
//! * Protocol messages are field-structured ([`MessageLayout`],
//!   [`SymMessage`]); a server analysis receives a fully symbolic message, a
//!   client analysis captures the (partially symbolic) messages the client
//!   sends.
//! * A [`PathObserver`] can veto paths mid-flight — the hook Achilles uses to
//!   prune server paths that can no longer accept Trojan messages (Figure 7).
//!
//! ## Quickstart
//!
//! ```
//! use achilles_solver::{Solver, TermPool, Width};
//! use achilles_symvm::{ExploreConfig, Executor, PathResult, SymEnv, Verdict};
//!
//! let mut pool = TermPool::new();
//! let mut solver = Solver::new();
//! let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
//!
//! // The paper's Figure 4 snippet: one symbolic branch, two paths.
//! let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
//!     let lambda = env.sym("lambda", Width::W32);
//!     let zero = env.constant(0, Width::W32);
//!     if env.if_slt(zero, lambda)? {
//!         env.note("x = 14");
//!     } else {
//!         env.note("x = lambda + 1");
//!     }
//!     env.mark_accept();
//!     Ok(())
//! });
//! assert_eq!(result.paths.len(), 2);
//! assert!(result.paths.iter().all(|p| p.verdict == Verdict::Accept));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod env;
pub mod executor;
pub mod message;
pub mod observer;
pub mod parallel;
pub mod program;
pub mod record;

pub use env::SymEnv;
pub use executor::{Executor, ExploreConfig, ExploreOrder};
pub use message::{FieldDef, MessageLayout, MessageLayoutBuilder, SymMessage};
pub use observer::{NullObserver, ObserverCx, PathObserver};
pub use parallel::{parallel_map, parallel_map_with, ParallelOutcome, WorkerReport};
pub use program::{Halt, NodeProgram, PathResult};
pub use record::{ExploreResult, ExploreStats, PathRecord, Verdict};
