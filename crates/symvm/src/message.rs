//! Protocol message layouts and symbolic messages.
//!
//! A [`MessageLayout`] names the fields of a protocol message and their
//! widths, mirroring the field-oriented view the paper uses for predicates
//! (Figures 5, 6, 8): `msg.cmd`, `msg.address`, `msg.buf[3]`, … A
//! [`SymMessage`] is one message instance — a term per field — which may be
//! fully concrete (a wire message), fully symbolic (the unconstrained message
//! a server receives), or mixed (a message a client builds from symbolic
//! inputs).

use std::fmt;
use std::sync::Arc;

use achilles_solver::{Model, TermId, TermPool, Width};

/// One named field of a message layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name, e.g. `cmd` or `buf[0]`.
    pub name: String,
    /// Field width.
    pub width: Width,
}

/// The field structure of a protocol message.
///
/// Variable-length payloads are modeled as `max_len` one-byte fields
/// (`buf[0]`, `buf[1]`, …) plus whatever explicit length field the protocol
/// carries — exactly how the paper's evaluation bounds message sizes so that
/// symbolic execution completes (§6.2).
///
/// # Examples
///
/// ```
/// use achilles_symvm::MessageLayout;
/// use achilles_solver::Width;
///
/// let layout = MessageLayout::builder("fsp")
///     .field("cmd", Width::W8)
///     .field("bb_len", Width::W16)
///     .byte_array("buf", 4)
///     .build();
/// assert_eq!(layout.num_fields(), 6);
/// assert_eq!(layout.field_index("buf[2]"), Some(4));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageLayout {
    name: String,
    fields: Vec<FieldDef>,
}

impl MessageLayout {
    /// Starts building a layout.
    pub fn builder(name: &str) -> MessageLayoutBuilder {
        MessageLayoutBuilder {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Layout name (used to prefix variable names, e.g. `fsp.cmd`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Index of the field called `name`.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Indices of the byte-array fields `base[0]..base[n)`.
    pub fn byte_array_indices(&self, base: &str) -> Vec<usize> {
        (0..)
            .map(|i| self.field_index(&format!("{base}[{i}]")))
            .take_while(Option::is_some)
            .flatten()
            .collect()
    }

    /// Total width in bits of all fields.
    pub fn total_bits(&self) -> u32 {
        self.fields.iter().map(|f| f.width.bits()).sum()
    }
}

/// Builder for [`MessageLayout`].
#[derive(Debug)]
pub struct MessageLayoutBuilder {
    name: String,
    fields: Vec<FieldDef>,
}

impl MessageLayoutBuilder {
    /// Appends one field.
    pub fn field(mut self, name: &str, width: Width) -> Self {
        self.fields.push(FieldDef {
            name: name.to_string(),
            width,
        });
        self
    }

    /// Appends `len` one-byte fields `base[0]..base[len)`.
    pub fn byte_array(mut self, base: &str, len: usize) -> Self {
        for i in 0..len {
            self.fields.push(FieldDef {
                name: format!("{base}[{i}]"),
                width: Width::W8,
            });
        }
        self
    }

    /// Finishes the layout.
    ///
    /// # Panics
    ///
    /// Panics if two fields share a name.
    pub fn build(self) -> Arc<MessageLayout> {
        for (i, f) in self.fields.iter().enumerate() {
            for g in &self.fields[i + 1..] {
                assert_ne!(f.name, g.name, "duplicate field name {:?}", f.name);
            }
        }
        Arc::new(MessageLayout {
            name: self.name,
            fields: self.fields,
        })
    }
}

/// One message instance: a term per layout field.
#[derive(Clone)]
pub struct SymMessage {
    layout: Arc<MessageLayout>,
    values: Vec<TermId>,
}

impl SymMessage {
    /// Creates a message from per-field terms.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the layout's field count.
    pub fn new(layout: Arc<MessageLayout>, values: Vec<TermId>) -> SymMessage {
        assert_eq!(
            layout.num_fields(),
            values.len(),
            "message for layout {:?} needs {} values",
            layout.name(),
            layout.num_fields()
        );
        SymMessage { layout, values }
    }

    /// A fully symbolic message: a fresh unconstrained variable per field,
    /// named `prefix.field`.
    pub fn fresh(pool: &mut TermPool, layout: &Arc<MessageLayout>, prefix: &str) -> SymMessage {
        let values = layout
            .fields()
            .iter()
            .map(|f| pool.fresh(&format!("{prefix}.{}", f.name), f.width))
            .collect();
        SymMessage {
            layout: Arc::clone(layout),
            values,
        }
    }

    /// A fully concrete message from per-field values.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the layout's field count.
    pub fn concrete(
        pool: &mut TermPool,
        layout: &Arc<MessageLayout>,
        values: &[u64],
    ) -> SymMessage {
        assert_eq!(layout.num_fields(), values.len());
        let values = layout
            .fields()
            .iter()
            .zip(values)
            .map(|(f, &v)| pool.constant(v, f.width))
            .collect();
        SymMessage {
            layout: Arc::clone(layout),
            values,
        }
    }

    /// The layout of this message.
    pub fn layout(&self) -> &Arc<MessageLayout> {
        &self.layout
    }

    /// All field terms in layout order.
    pub fn values(&self) -> &[TermId] {
        &self.values
    }

    /// The term of the field at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn value(&self, index: usize) -> TermId {
        self.values[index]
    }

    /// The term of the field called `name`.
    ///
    /// # Panics
    ///
    /// Panics if no such field exists.
    pub fn field(&self, name: &str) -> TermId {
        let idx = self
            .layout
            .field_index(name)
            .unwrap_or_else(|| panic!("layout {:?} has no field {name:?}", self.layout.name()));
        self.values[idx]
    }

    /// Replaces the field at `index`, returning the updated message.
    pub fn with_value(mut self, index: usize, value: TermId) -> SymMessage {
        self.values[index] = value;
        self
    }

    /// Whether every field is a constant.
    pub fn is_concrete(&self, pool: &TermPool) -> bool {
        self.values.iter().all(|&v| pool.as_const(v).is_some())
    }

    /// Concretizes every field under `model` (unassigned variables default
    /// to zero), returning per-field concrete values.
    pub fn concretize(&self, pool: &TermPool, model: &Model) -> Vec<u64> {
        self.values
            .iter()
            .map(|&t| {
                pool.eval_with(t, &|v| Some(model.value(v).unwrap_or(0)))
                    .expect("total lookup cannot fail")
            })
            .collect()
    }

    /// Renders the message as `field=value` pairs (symbolic fields render as
    /// expressions).
    pub fn render(&self, pool: &TermPool) -> String {
        let mut out = String::new();
        for (f, &v) in self.layout.fields().iter().zip(&self.values) {
            if !out.is_empty() {
                out.push_str(", ");
            }
            out.push_str(&f.name);
            out.push('=');
            out.push_str(&achilles_solver::render(pool, v));
        }
        out
    }
}

impl fmt::Debug for SymMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymMessage")
            .field("layout", &self.layout.name())
            .field("fields", &self.values.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_layout() -> Arc<MessageLayout> {
        MessageLayout::builder("toy")
            .field("cmd", Width::W8)
            .field("addr", Width::W32)
            .byte_array("buf", 3)
            .build()
    }

    #[test]
    fn builder_names_and_indices() {
        let l = toy_layout();
        assert_eq!(l.num_fields(), 5);
        assert_eq!(l.field_index("cmd"), Some(0));
        assert_eq!(l.field_index("buf[2]"), Some(4));
        assert_eq!(l.field_index("nope"), None);
        assert_eq!(l.byte_array_indices("buf"), vec![2, 3, 4]);
        assert_eq!(l.total_bits(), 8 + 32 + 24);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_fields_panic() {
        let _ = MessageLayout::builder("bad")
            .field("x", Width::W8)
            .field("x", Width::W8)
            .build();
    }

    #[test]
    fn fresh_message_has_named_vars() {
        let mut pool = TermPool::new();
        let l = toy_layout();
        let m = SymMessage::fresh(&mut pool, &l, "msg");
        let addr = m.field("addr");
        let v = pool.as_var(addr).expect("fresh fields are variables");
        assert_eq!(pool.var_info(v).name, "msg.addr");
        assert_eq!(pool.width(addr), Width::W32);
        assert!(!m.is_concrete(&pool));
    }

    #[test]
    fn concrete_message_round_trip() {
        let mut pool = TermPool::new();
        let l = toy_layout();
        let m = SymMessage::concrete(&mut pool, &l, &[7, 1000, 65, 66, 67]);
        assert!(m.is_concrete(&pool));
        let model = Model::new();
        assert_eq!(m.concretize(&pool, &model), vec![7, 1000, 65, 66, 67]);
    }

    #[test]
    fn concretize_mixed_message() {
        let mut pool = TermPool::new();
        let l = toy_layout();
        let m = SymMessage::fresh(&mut pool, &l, "msg");
        let mut model = Model::new();
        for (i, f) in l.fields().iter().enumerate() {
            let var = pool.as_var(m.value(i)).unwrap();
            let _ = f;
            model.assign(var, (i as u64) * 10);
        }
        assert_eq!(m.concretize(&pool, &model), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn with_value_replaces_field() {
        let mut pool = TermPool::new();
        let l = toy_layout();
        let m = SymMessage::fresh(&mut pool, &l, "msg");
        let c = pool.constant(9, Width::W8);
        let m2 = m.with_value(0, c);
        assert_eq!(pool.as_const(m2.value(0)), Some(9));
    }
}
