//! The path-enumerating executor.
//!
//! This is the S2E replacement: it systematically explores the feasible
//! execution paths of a [`NodeProgram`] by *re-execution with decision
//! prefixes* (execution-generated testing). Every scheduled path is a vector
//! of branch decisions; the program runs from the start, replays the prefix
//! at each both-feasible branch point, and when it runs past the prefix the
//! executor forks: the current run takes one side and the untaken side is
//! pushed onto the worklist.
//!
//! Re-execution trades CPU for simplicity and, combined with the
//! deterministic variable interning in [`SymEnv`](crate::env::SymEnv), keeps
//! path constraints structurally identical along shared prefixes — which the
//! solver's query cache exploits heavily.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use achilles_solver::{Solver, TermId, TermPool};

use crate::env::{Registry, SymEnv};
use crate::message::{MessageLayout, SymMessage};
use crate::observer::{NullObserver, ObserverCx, PathObserver};
use crate::parallel::ParallelOutcome;
use crate::program::{Halt, NodeProgram};
use crate::record::{ExploreResult, ExploreStats, PathRecord, Verdict};

/// Worklist ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExploreOrder {
    /// Depth-first (default): dives into specialized paths early, matching
    /// the incremental Trojan discovery behaviour of Figure 10.
    #[default]
    Dfs,
    /// Breadth-first: explores all short paths before long ones.
    Bfs,
}

/// Exploration limits and inputs.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Stop after this many completed paths.
    pub max_paths: usize,
    /// Stop after this many program runs (safety valve).
    ///
    /// The budget is enforced *per exploration*, not per worker: raising
    /// [`ExploreConfig::workers`] never multiplies the number of runs.
    pub max_runs: usize,
    /// Maximum symbolic branch points per path.
    pub max_depth: usize,
    /// Worklist ordering.
    pub order: ExploreOrder,
    /// Number of worker threads for [`Executor::explore_parallel`].
    ///
    /// `1` (the default) keeps exploration on the calling thread with
    /// exactly the sequential behaviour. With `n > 1`, every worklist item
    /// (decision prefix) becomes a unit of work on a work-stealing pool:
    /// each worker owns a fork of the term pool and its own solver, and
    /// workers share solved queries through a
    /// [`SharedCache`](achilles_solver::SharedCache). Re-execution from
    /// deterministic decision prefixes makes every worker reproduce
    /// bit-identical constraints for the same path, so the merged result is
    /// independent of scheduling (paths are reported in canonical
    /// depth-first order).
    ///
    /// Scheduling-independence holds for capped runs too: the budgets are
    /// pool-global, in-flight items always finish, and the merge truncates
    /// the completed set to the first `max_runs` scheduled items / first
    /// `max_paths` paths in canonical depth-first order — the exact set a
    /// sequential capped run completes, for every worker count. (Execution
    /// *counters* other than `runs`/`completed` may still exceed a
    /// sequential capped run's, since workers keep exploring until the
    /// canonical bound proves the remainder lies past the cut.) One
    /// caveat remains: parallel scheduling is always depth-first per
    /// worker — [`ExploreOrder::Bfs`] explorations run sequentially, with
    /// the downgrade surfaced through
    /// [`ExploreStats::workers_effective`](crate::ExploreStats::workers_effective)
    /// (see [`Executor::explore_multi`]).
    pub workers: usize,
    /// Salt mixed into the identity tags of [`SymEnv::sym`](crate::SymEnv::sym)
    /// inputs and auto-created `recv` messages.
    ///
    /// Distinct explorations that share one pool lineage (the pipeline's
    /// client phase and server phase, say) must use distinct salts:
    /// otherwise two programs whose i-th `sym()` calls agree on name and
    /// width would produce two different variables with the *same*
    /// structural fingerprint, conflating unrelated queries in the
    /// cross-worker cache. `0` (the default) is the client/standalone
    /// family; the Trojan-search driver uses its own server-phase salt.
    pub sym_salt: u64,
    /// Name prefix for auto-created received messages (`msg` → `msg.cmd`).
    pub recv_prefix: String,
    /// Constraints seeded into every path (Constructed Symbolic Local State:
    /// constraints carried over from a previous node's analysis, §3.4).
    pub initial_constraints: Vec<TermId>,
    /// Messages delivered by `recv`, in order; past the end, fresh symbolic
    /// messages are created on demand.
    pub recv_script: Vec<SymMessage>,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            max_paths: 100_000,
            max_runs: 1_000_000,
            max_depth: 512,
            order: ExploreOrder::Dfs,
            workers: 1,
            sym_salt: 0,
            recv_prefix: "msg".to_string(),
            initial_constraints: Vec::new(),
            recv_script: Vec::new(),
        }
    }
}

impl ExploreConfig {
    /// A config whose first received message is a fresh symbolic message of
    /// `layout` named with `prefix` — the standard server-analysis setup.
    pub fn with_symbolic_message(
        pool: &mut TermPool,
        layout: &Arc<MessageLayout>,
        prefix: &str,
    ) -> (ExploreConfig, SymMessage) {
        let msg = SymMessage::fresh(pool, layout, prefix);
        let config = ExploreConfig {
            recv_script: vec![msg.clone()],
            recv_prefix: prefix.to_string(),
            ..ExploreConfig::default()
        };
        (config, msg)
    }
}

/// Explores the paths of node programs against a shared pool and solver.
///
/// # Examples
///
/// ```
/// use achilles_solver::{Solver, TermPool, Width};
/// use achilles_symvm::{ExploreConfig, Executor, SymEnv, PathResult};
///
/// let mut pool = TermPool::new();
/// let mut solver = Solver::new();
/// let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
///
/// // A program with one symbolic branch explores two paths.
/// let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
///     let x = env.sym("x", Width::W8);
///     let ten = env.constant(10, Width::W8);
///     if env.if_ult(x, ten)? {
///         env.mark_accept();
///     } else {
///         env.mark_reject();
///     }
///     Ok(())
/// });
/// assert_eq!(result.paths.len(), 2);
/// ```
#[derive(Debug)]
pub struct Executor<'a> {
    pool: &'a mut TermPool,
    solver: &'a mut Solver,
    config: ExploreConfig,
}

impl<'a> Executor<'a> {
    /// Creates an executor borrowing the shared pool and solver.
    pub fn new(
        pool: &'a mut TermPool,
        solver: &'a mut Solver,
        config: ExploreConfig,
    ) -> Executor<'a> {
        Executor {
            pool,
            solver,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// Explores all feasible paths of `program`.
    pub fn explore(&mut self, program: &dyn NodeProgram) -> ExploreResult {
        let mut observer = NullObserver;
        self.explore_observed(program, &mut observer)
    }

    /// Explores all feasible paths of a `Sync` program, using the pool of
    /// [`ExploreConfig::workers`] threads when it is greater than one.
    ///
    /// [`ExploreOrder::Bfs`] explorations always run sequentially: the
    /// work-stealing pool schedules depth-first per worker, so it cannot
    /// reproduce BFS completion order (which matters when a budget caps the
    /// search and the caller wants the shallowest paths). The downgrade is
    /// *explicit* in the result — [`ExploreStats::workers`] keeps the
    /// requested count while [`ExploreStats::workers_effective`] drops to
    /// `1` — so callers and benches never report phantom parallelism.
    pub fn explore_multi(&mut self, program: &(dyn NodeProgram + Sync)) -> ExploreResult {
        if self.config.workers <= 1 || self.config.order == ExploreOrder::Bfs {
            return self.explore(program);
        }
        self.explore_parallel(program, |_| NullObserver).result
    }

    /// Explores in parallel on [`ExploreConfig::workers`] work-stealing
    /// threads, giving each worker its own observer from `make_observer`.
    ///
    /// Workers run over forks of the shared pool with private solvers and a
    /// cross-worker query cache; the merged result has every term imported
    /// back into the shared pool and paths renumbered into canonical
    /// depth-first order (see [`crate::parallel`] for why this is
    /// deterministic). Callers that accumulated path-id-keyed data in their
    /// observers must remap it through [`ParallelOutcome::id_map`].
    pub fn explore_parallel<O, F>(
        &mut self,
        program: &(dyn NodeProgram + Sync),
        make_observer: F,
    ) -> ParallelOutcome<O>
    where
        O: PathObserver + Send,
        F: Fn(usize) -> O + Sync,
    {
        crate::parallel::explore_parallel(
            self.pool,
            self.solver,
            &self.config,
            program,
            make_observer,
        )
    }

    /// Explores with an observer that may prune paths (Achilles' server
    /// analysis).
    pub fn explore_observed(
        &mut self,
        program: &dyn NodeProgram,
        observer: &mut dyn PathObserver,
    ) -> ExploreResult {
        let _span = achilles_obs::span("explore", "symvm");
        let started = Instant::now();
        let solver_before = *self.solver.stats();
        let mut registry = Registry::new(self.config.recv_script.clone());
        let mut worklist: VecDeque<Vec<bool>> = VecDeque::new();
        worklist.push_back(Vec::new());
        let mut result = ExploreResult::default();
        let mut stats = ExploreStats {
            // `workers` echoes the request; `workers_effective` records that
            // this exploration actually ran on one thread (callers reach
            // this path either with `workers <= 1` or through the explicit
            // BFS downgrade in `explore_multi`).
            workers: self.config.workers.max(1),
            workers_effective: 1,
            ..ExploreStats::default()
        };

        while let Some(prefix) = match self.config.order {
            ExploreOrder::Dfs => worklist.pop_back(),
            ExploreOrder::Bfs => worklist.pop_front(),
        } {
            if stats.runs >= self.config.max_runs {
                break;
            }
            stats.runs += 1;
            observer.on_path_start();
            let mut env = SymEnv::new(
                self.pool,
                self.solver,
                observer,
                &mut registry,
                prefix,
                &self.config.initial_constraints,
                self.config.max_depth,
                self.config.recv_prefix.clone(),
                self.config.sym_salt,
            );
            let run_result = program.run(&mut env);
            let out = env.into_output();

            stats.branch_checks += out.branch_checks;
            stats.unknown_branches += out.unknown_branches;
            stats.model_reuse_hits += out.model_reuse_hits;
            // Forks found before any halt are feasible alternates: keep them.
            for fork in out.forks {
                worklist.push_back(fork);
            }

            match run_result {
                Ok(()) => {
                    let verdict = out.verdict.unwrap_or(if out.sent.is_empty() {
                        Verdict::Reject
                    } else {
                        Verdict::Accept
                    });
                    let record = PathRecord {
                        id: result.paths.len(),
                        constraints: out.constraints,
                        sent: out.sent,
                        received: out.received,
                        verdict,
                        decisions: out.decisions,
                        branch_points: out.branch_points,
                        notes: out.notes,
                    };
                    let mut cx = ObserverCx {
                        pool: self.pool,
                        solver: self.solver,
                        pc: &record.constraints,
                        received: &record.received,
                    };
                    observer.on_path_end(&mut cx, &record);
                    result.paths.push(record);
                    stats.completed += 1;
                    if stats.completed >= self.config.max_paths {
                        break;
                    }
                }
                Err(Halt::Infeasible) => stats.infeasible += 1,
                Err(Halt::Dropped) => stats.dropped += 1,
                Err(Halt::Pruned) => stats.pruned += 1,
                Err(Halt::DepthExhausted) => stats.depth_exhausted += 1,
            }
        }
        let solver_after = self.solver.stats();
        stats.certified_unsat = solver_after.certified_unsat - solver_before.certified_unsat;
        stats.core_subsumption_hits =
            solver_after.core_subsumption_hits - solver_before.core_subsumption_hits;
        stats.wall_time = started.elapsed();
        result.stats = stats;
        self.solver.stats().record_metrics_delta(&solver_before);
        result.stats.record_metrics();
        result
    }

    /// Runs `program` once along a fully concrete path (no forking expected).
    ///
    /// This is the *Concrete Local State* entry point (§3.4): with concrete
    /// inputs in the receive script the program never branches symbolically,
    /// so exactly one path is produced (it is an error if the program still
    /// hits a symbolic branch — the config's `max_paths` is forced to 1).
    pub fn run_concrete(&mut self, program: &dyn NodeProgram) -> ExploreResult {
        let saved = self.config.max_paths;
        self.config.max_paths = 1;
        let result = {
            let mut observer = NullObserver;
            self.explore_observed(program, &mut observer)
        };
        self.config.max_paths = saved;
        result
    }

    /// Seeds additional path constraints for subsequent explorations.
    pub fn add_initial_constraints(&mut self, constraints: impl IntoIterator<Item = TermId>) {
        self.config.initial_constraints.extend(constraints);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::PathResult;
    use achilles_solver::Width;

    fn harness() -> (TermPool, Solver) {
        (TermPool::new(), Solver::new())
    }

    #[test]
    fn two_way_branch_gives_two_paths() {
        let (mut pool, mut solver) = harness();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            let x = env.sym("x", Width::W8);
            let five = env.constant(5, Width::W8);
            if env.if_ult(x, five)? {
                env.mark_accept();
            } else {
                env.mark_reject();
            }
            Ok(())
        });
        assert_eq!(result.paths.len(), 2);
        assert_eq!(result.accepting().count(), 1);
        assert_eq!(result.rejecting().count(), 1);
        assert_eq!(result.stats.runs, 2);
    }

    #[test]
    fn nested_branches_enumerate_all_combinations() {
        let (mut pool, mut solver) = harness();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            let mut count = 0u64;
            for i in 0..3 {
                let b = env.sym(&format!("b{i}"), Width::BOOL);
                if env.branch(b)? {
                    count += 1;
                }
            }
            env.note(format!("ones={count}"));
            env.mark_accept();
            Ok(())
        });
        assert_eq!(result.paths.len(), 8);
        // All 0..=3 counts appear.
        for ones in 0..=3 {
            let tag = format!("ones={ones}");
            assert!(
                result.paths.iter().any(|p| p.notes.contains(&tag)),
                "{tag} missing"
            );
        }
    }

    #[test]
    fn infeasible_side_not_explored() {
        let (mut pool, mut solver) = harness();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            let x = env.sym("x", Width::W8);
            let three = env.constant(3, Width::W8);
            env.assume_eq(x, three)?;
            let five = env.constant(5, Width::W8);
            // x == 3, so x < 5 is forced: only one path.
            if env.if_ult(x, five)? {
                env.mark_accept();
            } else {
                env.mark_reject();
            }
            Ok(())
        });
        assert_eq!(result.paths.len(), 1);
        assert_eq!(
            result.paths[0].branch_points, 0,
            "forced branch consumes no decision"
        );
        assert_eq!(result.accepting().count(), 1);
    }

    #[test]
    fn contradictory_assume_kills_path() {
        let (mut pool, mut solver) = harness();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            let x = env.sym("x", Width::W8);
            let three = env.constant(3, Width::W8);
            let four = env.constant(4, Width::W8);
            env.assume_eq(x, three)?;
            env.assume_eq(x, four)?;
            env.mark_accept();
            Ok(())
        });
        assert_eq!(result.paths.len(), 0);
        assert_eq!(result.stats.infeasible, 1);
    }

    #[test]
    fn depth_budget_stops_symbolic_loops() {
        let (mut pool, mut solver) = harness();
        let config = ExploreConfig {
            max_depth: 8,
            max_runs: 64,
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, config);
        let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            // Unbounded symbolic loop: branch forever on fresh symbols.
            let mut i = 0usize;
            loop {
                let b = env.sym(&format!("b{i}"), Width::BOOL);
                if !env.branch(b)? {
                    break;
                }
                i += 1;
            }
            env.mark_accept();
            Ok(())
        });
        assert!(result.stats.depth_exhausted > 0);
        // Paths that exited before the budget are still completed.
        assert!(result.paths.len() >= 8);
    }

    #[test]
    fn recv_script_shared_across_paths() {
        let (mut pool, mut solver) = harness();
        let layout = MessageLayout::builder("m").field("a", Width::W8).build();
        let (config, msg) = ExploreConfig::with_symbolic_message(&mut pool, &layout, "in");
        let mut exec = Executor::new(&mut pool, &mut solver, config);
        let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            let layout = MessageLayout::builder("m").field("a", Width::W8).build();
            let m = env.recv(&layout)?;
            let ten = env.constant(10, Width::W8);
            if env.if_ult(m.field("a"), ten)? {
                env.mark_accept();
            } else {
                env.mark_reject();
            }
            Ok(())
        });
        assert_eq!(result.paths.len(), 2);
        // Both paths constrain the same field variable.
        let var = msg.field("a");
        for p in &result.paths {
            assert_eq!(p.received.len(), 1);
            assert_eq!(p.received[0].field("a"), var);
        }
    }

    #[test]
    fn default_verdict_from_sending() {
        let (mut pool, mut solver) = harness();
        let layout = MessageLayout::builder("reply")
            .field("code", Width::W8)
            .build();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            let x = env.sym("x", Width::W8);
            let zero = env.constant(0, Width::W8);
            if env.if_eq(x, zero)? {
                // Reply → accepting by default.
                let layout = MessageLayout::builder("reply")
                    .field("code", Width::W8)
                    .build();
                let ok = env.constant(200, Width::W8);
                env.send(SymMessage::new(layout, vec![ok]));
            }
            Ok(())
        });
        let _ = layout;
        assert_eq!(result.accepting().count(), 1);
        assert_eq!(result.rejecting().count(), 1);
    }

    #[test]
    fn observer_prunes_paths() {
        struct PruneDeep;
        impl PathObserver for PruneDeep {
            fn on_constraint(&mut self, cx: &mut ObserverCx<'_>) -> bool {
                cx.pc.len() < 2
            }
        }
        let (mut pool, mut solver) = harness();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let mut obs = PruneDeep;
        let result = exec.explore_observed(
            &|env: &mut SymEnv<'_>| -> PathResult<()> {
                for i in 0..4 {
                    let b = env.sym(&format!("b{i}"), Width::BOOL);
                    let _ = env.branch(b)?;
                }
                env.mark_accept();
                Ok(())
            },
            &mut obs,
        );
        assert_eq!(result.paths.len(), 0);
        assert!(result.stats.pruned > 0);
    }

    #[test]
    fn initial_constraints_restrict_all_paths() {
        let (mut pool, mut solver) = harness();
        // Pre-constrain x < 5 before exploration (constructed local state).
        let x = pool.fresh("x", Width::W8);
        let five = pool.constant(5, Width::W8);
        let lt = pool.ult(x, five);
        let config = ExploreConfig {
            initial_constraints: vec![lt],
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, config);
        let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            // Re-intern the same variable name: the registry is fresh per
            // exploration, so get the var from the pool instead.
            let xv = env.sym("x2", Width::W8); // fresh var, unrelated
            let _ = xv;
            env.mark_accept();
            Ok(())
        });
        assert_eq!(result.paths.len(), 1);
        assert_eq!(result.paths[0].constraints, vec![lt]);
    }

    #[test]
    fn bfs_explores_shallow_paths_first() {
        let (mut pool, mut solver) = harness();
        let config = ExploreConfig {
            order: ExploreOrder::Bfs,
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, config);
        // A program where the false side of the first branch exits
        // immediately (depth 1) and the true side goes deeper (depth 3).
        let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            let b0 = env.sym("b0", Width::BOOL);
            if !env.branch(b0)? {
                env.note("shallow");
                env.mark_accept();
                return Ok(());
            }
            for i in 1..3 {
                let b = env.sym(&format!("b{i}"), Width::BOOL);
                let _ = env.branch(b)?;
            }
            env.note("deep");
            env.mark_accept();
            Ok(())
        });
        assert_eq!(result.paths.len(), 5, "1 shallow + 4 deep leaves");
        // Under BFS the shallow path completes before the deepest ones.
        let shallow_pos = result
            .paths
            .iter()
            .position(|p| p.notes.contains(&"shallow".to_string()))
            .expect("shallow path exists");
        assert!(
            shallow_pos <= 1,
            "BFS finishes the depth-1 path early (pos {shallow_pos})"
        );
    }

    #[test]
    fn max_paths_caps_completed_paths() {
        let (mut pool, mut solver) = harness();
        let config = ExploreConfig {
            max_paths: 3,
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, config);
        let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            for i in 0..4 {
                let b = env.sym(&format!("b{i}"), Width::BOOL);
                let _ = env.branch(b)?;
            }
            env.mark_accept();
            Ok(())
        });
        assert_eq!(result.paths.len(), 3, "exploration stopped at the cap");
    }

    #[test]
    fn run_concrete_single_path() {
        let (mut pool, mut solver) = harness();
        let layout = MessageLayout::builder("m").field("a", Width::W8).build();
        let concrete = SymMessage::concrete(&mut pool, &layout, &[42]);
        let config = ExploreConfig {
            recv_script: vec![concrete],
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, config);
        let result = exec.run_concrete(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            let layout = MessageLayout::builder("m").field("a", Width::W8).build();
            let m = env.recv(&layout)?;
            let ten = env.constant(10, Width::W8);
            // 42 < 10 is concretely false: no fork, single path.
            if env.if_ult(m.field("a"), ten)? {
                env.mark_accept();
            } else {
                env.mark_reject();
            }
            Ok(())
        });
        assert_eq!(result.paths.len(), 1);
        assert_eq!(result.stats.runs, 1);
        assert_eq!(result.rejecting().count(), 1);
    }
}
