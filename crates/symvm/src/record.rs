//! Per-path records and exploration statistics.

use std::time::Duration;

use achilles_solver::TermId;

use crate::message::SymMessage;

/// How a completed execution path classified its triggering message.
///
/// The default classification follows the paper (§5.1): a path that sent a
/// reply is *accepting*, a path that returned to the event loop without
/// replying is *rejecting*. Programs can override this with the
/// `mark_accept` / `mark_reject` annotations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The message passed parsing and caused the node to act.
    Accept,
    /// The message was discarded.
    Reject,
}

/// One fully explored execution path.
#[derive(Clone, Debug)]
pub struct PathRecord {
    /// Sequential path id (in completion order).
    pub id: usize,
    /// Path constraints, in the order they were added.
    pub constraints: Vec<TermId>,
    /// Messages sent on this path (client predicate raw material).
    pub sent: Vec<SymMessage>,
    /// Messages received on this path (server predicate raw material).
    pub received: Vec<SymMessage>,
    /// Accept/reject classification.
    pub verdict: Verdict,
    /// The decision vector that reproduces this path.
    pub decisions: Vec<bool>,
    /// Number of symbolic branch points encountered.
    pub branch_points: usize,
    /// Free-form notes added by the program via `note()`.
    pub notes: Vec<String>,
}

/// Counters for one exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreStats {
    /// Program runs performed (one per scheduled path prefix).
    pub runs: usize,
    /// Paths that ran to completion.
    pub completed: usize,
    /// Paths whose condition became unsatisfiable.
    pub infeasible: usize,
    /// Paths cut by an observer (Achilles' Trojan-set pruning).
    pub pruned: usize,
    /// Paths dropped by a `drop_path` annotation.
    pub dropped: usize,
    /// Paths that hit the per-path depth budget.
    pub depth_exhausted: usize,
    /// Feasibility checks issued to the solver by branch points.
    pub branch_checks: u64,
    /// Branch feasibility checks the solver answered `Unknown`.
    pub unknown_branches: u64,
    /// Branch checks answered by reusing a previous frame's model
    /// (the incremental [`ScopedSolver`](achilles_solver::ScopedSolver)).
    pub model_reuse_hits: u64,
    /// Worker threads *requested* for the exploration (the
    /// [`ExploreConfig::workers`](crate::ExploreConfig::workers) knob).
    pub workers: usize,
    /// Worker threads that actually ran. Differs from
    /// [`ExploreStats::workers`] exactly when the exploration was silently
    /// downgraded to sequential — BFS-ordered explorations always run on
    /// one thread because the work-stealing pool schedules depth-first per
    /// worker. Callers and benches must report *this* number, not the
    /// request, or they claim phantom parallelism.
    pub workers_effective: usize,
    /// Worklist items taken from another worker's deque.
    pub steals: u64,
    /// Queries answered by the cross-worker shared cache.
    pub shared_cache_hits: u64,
    /// Shared-cache hits on entries published by an *earlier pipeline
    /// phase* (an earlier exploration or preprocessing pass on the same
    /// persistent cache — client predicate queries re-used by the server
    /// analysis, say). Always ≤ `shared_cache_hits` + the base solver's
    /// own shared hits; `0` when the exploration ran on a fresh cache.
    pub cross_phase_cache_hits: u64,
    /// Unsat verdicts computed by this exploration's solvers, each carrying
    /// a [`Certificate`](achilles_solver::Certificate) (and validated when
    /// the proof audit is installed).
    pub certified_unsat: u64,
    /// Queries answered `Unsat` by the shared cache's core-subsumption
    /// index: the query's assertion set contained a previously proven core.
    pub core_subsumption_hits: u64,
    /// Wall-clock time of the exploration.
    pub wall_time: Duration,
}

impl ExploreStats {
    /// Mirrors this exploration's counters into the process-wide metrics
    /// registry ([`achilles_obs::global`]) as `achilles_explore_*` series.
    /// Called exactly once per exploration, at the point the final stats are
    /// assembled (sequential loop end / parallel merge), so the registry is
    /// a pure view over the same accumulators callers already receive.
    ///
    /// Workload-fixed counters (runs, verdict splits, branch checks,
    /// certificates) are [`Deterministic`](achilles_obs::Class::Deterministic);
    /// counters shaped by scheduling or incremental solver state (steals,
    /// shared-cache hits, model reuse, wall time) are
    /// [`Wall`](achilles_obs::Class::Wall).
    pub fn record_metrics(&self) {
        use achilles_obs::Class::{Deterministic, Wall};
        let reg = achilles_obs::global();
        reg.add(Deterministic, "achilles_explore_explorations_total", &[], 1);
        for (name, value) in [
            ("achilles_explore_runs_total", self.runs as u64),
            ("achilles_explore_completed_total", self.completed as u64),
            ("achilles_explore_infeasible_total", self.infeasible as u64),
            ("achilles_explore_pruned_total", self.pruned as u64),
            ("achilles_explore_dropped_total", self.dropped as u64),
            (
                "achilles_explore_depth_exhausted_total",
                self.depth_exhausted as u64,
            ),
            ("achilles_explore_branch_checks_total", self.branch_checks),
            (
                "achilles_explore_unknown_branches_total",
                self.unknown_branches,
            ),
            (
                "achilles_explore_certified_unsat_total",
                self.certified_unsat,
            ),
            (
                "achilles_explore_core_subsumption_hits_total",
                self.core_subsumption_hits,
            ),
        ] {
            reg.add(Deterministic, name, &[], value);
        }
        for (name, value) in [
            (
                "achilles_explore_model_reuse_hits_total",
                self.model_reuse_hits,
            ),
            ("achilles_explore_steals_total", self.steals),
            (
                "achilles_explore_shared_cache_hits_total",
                self.shared_cache_hits,
            ),
            (
                "achilles_explore_cross_phase_cache_hits_total",
                self.cross_phase_cache_hits,
            ),
            (
                "achilles_explore_wall_ns_total",
                self.wall_time.as_nanos() as u64,
            ),
        ] {
            reg.add(Wall, name, &[], value);
        }
    }

    /// Adds another exploration's plain-sum counters (runs through
    /// model-reuse hits, plus the certificate and subsumption counters)
    /// into `self` — the one accumulator shared by the
    /// parallel worker merge and the session's per-client aggregation.
    /// `workers`, `steals`, `shared_cache_hits`, and `wall_time` aggregate
    /// with caller-specific semantics and are left untouched.
    pub fn absorb_counters(&mut self, other: &ExploreStats) {
        self.runs += other.runs;
        self.completed += other.completed;
        self.infeasible += other.infeasible;
        self.pruned += other.pruned;
        self.dropped += other.dropped;
        self.depth_exhausted += other.depth_exhausted;
        self.branch_checks += other.branch_checks;
        self.unknown_branches += other.unknown_branches;
        self.model_reuse_hits += other.model_reuse_hits;
        self.certified_unsat += other.certified_unsat;
        self.core_subsumption_hits += other.core_subsumption_hits;
    }
}

/// The outcome of exploring one node program.
#[derive(Clone, Debug, Default)]
pub struct ExploreResult {
    /// Completed paths, in completion order.
    pub paths: Vec<PathRecord>,
    /// Exploration counters.
    pub stats: ExploreStats,
}

impl ExploreResult {
    /// The accepting paths.
    pub fn accepting(&self) -> impl Iterator<Item = &PathRecord> {
        self.paths.iter().filter(|p| p.verdict == Verdict::Accept)
    }

    /// The rejecting paths.
    pub fn rejecting(&self) -> impl Iterator<Item = &PathRecord> {
        self.paths.iter().filter(|p| p.verdict == Verdict::Reject)
    }

    /// Paths that sent at least one message (client predicate paths).
    pub fn sending(&self) -> impl Iterator<Item = &PathRecord> {
        self.paths.iter().filter(|p| !p.sent.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, verdict: Verdict, sent: usize) -> PathRecord {
        PathRecord {
            id,
            constraints: vec![],
            sent: vec![],
            received: vec![],
            verdict,
            decisions: vec![],
            branch_points: sent, // arbitrary reuse for the test
            notes: vec![],
        }
    }

    #[test]
    fn filters_by_verdict() {
        let result = ExploreResult {
            paths: vec![
                record(0, Verdict::Accept, 0),
                record(1, Verdict::Reject, 0),
                record(2, Verdict::Accept, 0),
            ],
            stats: ExploreStats::default(),
        };
        assert_eq!(result.accepting().count(), 2);
        assert_eq!(result.rejecting().count(), 1);
    }
}
