//! Exploration observers.
//!
//! An observer watches one exploration and may veto paths while they are
//! being built. This is the mechanism behind the paper's central optimization
//! (Figure 7): during the *server* analysis, Achilles installs an observer
//! that tracks which client path predicates can still trigger the current
//! path and prunes the path as soon as no Trojan message can reach it.
//!
//! Because the executor re-runs the program from the start for every
//! scheduled path, the observer sees each path's constraint sequence from the
//! beginning: [`PathObserver::on_path_start`] resets per-path state, then
//! [`PathObserver::on_constraint`] fires for every conjunct (both replayed
//! and new), and [`PathObserver::on_path_end`] fires for completed paths.

use achilles_solver::{Solver, TermId, TermPool};

use crate::message::SymMessage;
use crate::record::PathRecord;

/// Context handed to observer callbacks.
#[derive(Debug)]
pub struct ObserverCx<'a> {
    /// The term pool (observers may build queries).
    pub pool: &'a mut TermPool,
    /// The shared solver (queries are cached across paths).
    pub solver: &'a mut Solver,
    /// Path constraints so far, in order; the newest conjunct is last.
    pub pc: &'a [TermId],
    /// Messages received so far on this path.
    pub received: &'a [SymMessage],
}

/// Watches an exploration; may prune paths.
pub trait PathObserver {
    /// A new path run starts (per-path state should reset).
    fn on_path_start(&mut self) {}

    /// A constraint was appended to the path condition.
    ///
    /// Return `false` to prune the path (it is abandoned immediately and
    /// counted in [`ExploreStats::pruned`](crate::record::ExploreStats)).
    fn on_constraint(&mut self, cx: &mut ObserverCx<'_>) -> bool {
        let _ = cx;
        true
    }

    /// A path ran to completion and was recorded.
    fn on_path_end(&mut self, cx: &mut ObserverCx<'_>, record: &PathRecord) {
        let _ = (cx, record);
    }
}

/// An observer that does nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl PathObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_never_prunes() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let mut obs = NullObserver;
        let mut cx = ObserverCx {
            pool: &mut pool,
            solver: &mut solver,
            pc: &[],
            received: &[],
        };
        obs.on_path_start();
        assert!(obs.on_constraint(&mut cx));
    }
}
