//! The symbolic environment node programs run against.
//!
//! [`SymEnv`] plays the role of S2E's guest environment plus the paper's
//! `LD_PRELOAD` syscall interception (§5.1): programs obtain *all* inputs
//! through it (symbolic local inputs via [`SymEnv::sym`], network messages
//! via [`SymEnv::recv`]) and send replies through it ([`SymEnv::send`]).
//! Branches on symbolic conditions go through [`SymEnv::branch`], which
//! consults the solver for feasibility and forks the exploration.
//!
//! The paper's annotation set (§5.2) maps onto methods:
//!
//! | paper annotation        | method                                   |
//! |-------------------------|------------------------------------------|
//! | `mark_accept`           | [`SymEnv::mark_accept`]                  |
//! | `mark_reject`           | [`SymEnv::mark_reject`]                  |
//! | `drop_path`             | [`SymEnv::drop_path`]                    |
//! | `make_symbolic`         | [`SymEnv::sym`]                          |
//! | `function_start/end` + `return_symbolic` | [`SymEnv::sym_in_range`] / `sym` + [`SymEnv::assume`] |
//!
//! Determinism across re-executions: the executor re-runs programs from the
//! start for every scheduled path, so symbolic inputs are interned by
//! *(call index, name, width)* and received messages by *receive index* —
//! the same program point sees the same variables on every run, which keeps
//! path constraints identical along shared prefixes (and the solver cache
//! hot).

use std::collections::HashMap;
use std::sync::Arc;

use achilles_solver::{SatResult, ScopedSolver, Solver, TermId, TermPool, VarId, Width};

use crate::message::{MessageLayout, SymMessage};
use crate::observer::{ObserverCx, PathObserver};
use crate::program::{Halt, PathResult};
use crate::record::Verdict;

/// Variable/message interning shared by all runs of one exploration.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    syms: HashMap<(usize, String, u8), VarId>,
    recv_script: Vec<SymMessage>,
}

impl Registry {
    pub(crate) fn new(recv_script: Vec<SymMessage>) -> Registry {
        Registry {
            syms: HashMap::new(),
            recv_script,
        }
    }
}

/// Stable identity tag of an interned symbolic input.
///
/// Derived purely from the exploration's salt and the interning key *(call
/// index, name, width)*, so the "same" variable created independently by
/// different parallel workers gets the same [`TermPool`] fingerprint — the
/// property that makes structurally equal path constraints shareable through
/// the cross-worker solver cache. The salt keeps *different* explorations in
/// one pool lineage (e.g. the pipeline's client and server phases) from
/// colliding when their i-th `sym()` calls happen to agree on name and width.
fn sym_tag(salt: u64, index: usize, name: &str, width: Width) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x100_0000_01B3);
    };
    eat(salt);
    eat(index as u64);
    eat(u64::from(width.bits()));
    for b in name.bytes() {
        eat(u64::from(b));
    }
    h
}

/// Identity tag of an auto-created received-message field — same role as
/// [`sym_tag`] (workers re-creating the "same" variable must agree on its
/// fingerprint), but in a disjoint tag family so a `recv`-created field can
/// never collide with a [`SymEnv::sym`] input of the same index and name.
fn recv_tag(salt: u64, recv_index: usize, field: &str, width: Width) -> u64 {
    sym_tag(salt, recv_index, field, width) ^ 0x5245_4356_5245_4356 // "RECVRECV"
}

/// What a finished run produced (consumed by the executor).
#[derive(Debug)]
pub(crate) struct RunOutput {
    pub constraints: Vec<TermId>,
    pub sent: Vec<SymMessage>,
    pub received: Vec<SymMessage>,
    pub decisions: Vec<bool>,
    pub branch_points: usize,
    pub verdict: Option<Verdict>,
    pub notes: Vec<String>,
    pub forks: Vec<Vec<bool>>,
    pub branch_checks: u64,
    pub unknown_branches: u64,
    pub model_reuse_hits: u64,
}

/// The execution environment for one run of a node program.
pub struct SymEnv<'a> {
    pool: &'a mut TermPool,
    solver: &'a mut Solver,
    observer: &'a mut dyn PathObserver,
    registry: &'a mut Registry,
    max_depth: usize,
    recv_prefix: String,
    // Replay/decision state.
    decisions: Vec<bool>,
    cursor: usize,
    forks: Vec<Vec<bool>>,
    // Path state.
    pc: Vec<TermId>,
    /// Incremental view of `pc`: frames mirror the path condition so branch
    /// feasibility checks reuse models / sticky-unsat across the
    /// one-conjunct-at-a-time growth instead of re-solving from scratch.
    scoped: ScopedSolver,
    sent: Vec<SymMessage>,
    received: Vec<SymMessage>,
    verdict: Option<Verdict>,
    notes: Vec<String>,
    sym_salt: u64,
    sym_counter: usize,
    recv_counter: usize,
    branch_points: usize,
    branch_checks: u64,
    unknown_branches: u64,
}

impl<'a> SymEnv<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        pool: &'a mut TermPool,
        solver: &'a mut Solver,
        observer: &'a mut dyn PathObserver,
        registry: &'a mut Registry,
        prefix: Vec<bool>,
        initial_constraints: &[TermId],
        max_depth: usize,
        recv_prefix: String,
        sym_salt: u64,
    ) -> SymEnv<'a> {
        SymEnv {
            pool,
            solver,
            observer,
            registry,
            max_depth,
            recv_prefix,
            decisions: prefix,
            cursor: 0,
            forks: Vec::new(),
            scoped: ScopedSolver::with_assertions(initial_constraints),
            pc: initial_constraints.to_vec(),
            sent: Vec::new(),
            received: Vec::new(),
            verdict: None,
            notes: Vec::new(),
            sym_salt,
            sym_counter: 0,
            recv_counter: 0,
            branch_points: 0,
            branch_checks: 0,
            unknown_branches: 0,
        }
    }

    pub(crate) fn into_output(self) -> RunOutput {
        RunOutput {
            constraints: self.pc,
            sent: self.sent,
            received: self.received,
            decisions: self.decisions,
            branch_points: self.branch_points,
            verdict: self.verdict,
            notes: self.notes,
            forks: self.forks,
            branch_checks: self.branch_checks,
            unknown_branches: self.unknown_branches,
            model_reuse_hits: self.scoped.stats().model_reuse_hits,
        }
    }

    // ------------------------------------------------------------------
    // Term construction
    // ------------------------------------------------------------------

    /// The shared term pool (for building expressions).
    pub fn pool_mut(&mut self) -> &mut TermPool {
        self.pool
    }

    /// Read-only access to the term pool.
    pub fn pool(&self) -> &TermPool {
        self.pool
    }

    /// Shorthand for a constant term.
    pub fn constant(&mut self, value: u64, width: Width) -> TermId {
        self.pool.constant(value, width)
    }

    /// A fresh symbolic input (the paper's `make_symbolic` / intercepted
    /// input syscall). Interned by call order so re-executions agree.
    pub fn sym(&mut self, name: &str, width: Width) -> TermId {
        let index = self.sym_counter;
        let key = (index, name.to_string(), width.bits() as u8);
        self.sym_counter += 1;
        let salt = self.sym_salt;
        let pool = &mut *self.pool;
        let var = *self.registry.syms.entry(key).or_insert_with(|| {
            pool.fresh_var_tagged(name, width, sym_tag(salt, index, name, width))
        });
        self.pool.var(var)
    }

    /// A fresh symbolic input constrained to `[lo, hi]` (unsigned) — the
    /// pattern of the paper's Figure 9 function over-approximation.
    pub fn sym_in_range(
        &mut self,
        name: &str,
        width: Width,
        lo: u64,
        hi: u64,
    ) -> PathResult<TermId> {
        let v = self.sym(name, width);
        let loc = self.pool.constant(lo, width);
        let hic = self.pool.constant(hi, width);
        let ge = self.pool.ule(loc, v);
        let le = self.pool.ule(v, hic);
        self.assume(ge)?;
        self.assume(le)?;
        Ok(v)
    }

    // ------------------------------------------------------------------
    // Control flow
    // ------------------------------------------------------------------

    /// Current path constraints.
    pub fn path_constraints(&self) -> &[TermId] {
        &self.pc
    }

    /// Number of symbolic branch points taken so far on this path.
    pub fn depth(&self) -> usize {
        self.branch_points
    }

    /// Adds `constraint` to the path condition and notifies the observer.
    fn push_constraint(&mut self, constraint: TermId) -> PathResult<()> {
        // Skip trivially true conjuncts so path predicates stay tight.
        if self.pool.as_const(constraint) == Some(1) {
            return Ok(());
        }
        self.pc.push(constraint);
        self.scoped.push(constraint);
        let mut cx = ObserverCx {
            pool: self.pool,
            solver: self.solver,
            pc: &self.pc,
            received: &self.received,
        };
        if self.observer.on_constraint(&mut cx) {
            Ok(())
        } else {
            Err(Halt::Pruned)
        }
    }

    /// Asserts `cond` without forking (kills the path if infeasible).
    pub fn assume(&mut self, cond: TermId) -> PathResult<()> {
        match self.pool.as_const(cond) {
            Some(1) => return Ok(()),
            Some(_) => return Err(Halt::Infeasible),
            None => {}
        }
        self.branch_checks += 1;
        match self.scoped.check_with(self.pool, self.solver, cond) {
            SatResult::Sat(_) => self.push_constraint(cond),
            SatResult::Unsat(_) => Err(Halt::Infeasible),
            SatResult::Unknown => {
                // Conservative: keep exploring; Trojan reports are re-verified
                // with concrete models, so this cannot create false claims.
                self.unknown_branches += 1;
                self.push_constraint(cond)
            }
        }
    }

    /// Branches on a symbolic condition.
    ///
    /// Concrete conditions return immediately. Symbolic conditions consult
    /// the solver; when both sides are feasible the exploration forks: this
    /// run follows the scheduled (or default `true`) side, and the other side
    /// is enqueued for a later run.
    ///
    /// # Errors
    ///
    /// [`Halt::Infeasible`] if neither side is feasible,
    /// [`Halt::DepthExhausted`] if the per-path branch budget is spent,
    /// [`Halt::Pruned`] if the observer vetoes the extended path.
    pub fn branch(&mut self, cond: TermId) -> PathResult<bool> {
        if let Some(v) = self.pool.as_const(cond) {
            return Ok(v != 0);
        }
        if self.branch_points >= self.max_depth {
            return Err(Halt::DepthExhausted);
        }
        let not_cond = self.pool.not(cond);
        self.branch_checks += 1;
        let true_side = self.scoped.check_with(self.pool, self.solver, cond);
        self.branch_checks += 1;
        let false_side = self.scoped.check_with(self.pool, self.solver, not_cond);

        let feasible = |r: &SatResult| !matches!(r, SatResult::Unsat(_));
        if matches!(true_side, SatResult::Unknown) || matches!(false_side, SatResult::Unknown) {
            self.unknown_branches += 1;
        }
        match (feasible(&true_side), feasible(&false_side)) {
            (false, false) => Err(Halt::Infeasible),
            (true, false) => {
                self.push_constraint(cond)?;
                Ok(true)
            }
            (false, true) => {
                self.push_constraint(not_cond)?;
                Ok(false)
            }
            (true, true) => {
                self.branch_points += 1;
                let take = if self.cursor < self.decisions.len() {
                    self.decisions[self.cursor]
                } else {
                    // New branch point: take `true`, schedule `false`.
                    let mut other = self.decisions.clone();
                    other.push(false);
                    self.forks.push(other);
                    self.decisions.push(true);
                    true
                };
                self.cursor += 1;
                self.push_constraint(if take { cond } else { not_cond })?;
                Ok(take)
            }
        }
    }

    /// Branch on `a == b`.
    pub fn if_eq(&mut self, a: TermId, b: TermId) -> PathResult<bool> {
        let c = self.pool.eq(a, b);
        self.branch(c)
    }

    /// Branch on `a != b`.
    pub fn if_ne(&mut self, a: TermId, b: TermId) -> PathResult<bool> {
        let c = self.pool.ne(a, b);
        self.branch(c)
    }

    /// Branch on `a <u b`.
    pub fn if_ult(&mut self, a: TermId, b: TermId) -> PathResult<bool> {
        let c = self.pool.ult(a, b);
        self.branch(c)
    }

    /// Branch on `a <=u b`.
    pub fn if_ule(&mut self, a: TermId, b: TermId) -> PathResult<bool> {
        let c = self.pool.ule(a, b);
        self.branch(c)
    }

    /// Branch on `a <s b`.
    pub fn if_slt(&mut self, a: TermId, b: TermId) -> PathResult<bool> {
        let c = self.pool.slt(a, b);
        self.branch(c)
    }

    /// Branch on `a <=s b`.
    pub fn if_sle(&mut self, a: TermId, b: TermId) -> PathResult<bool> {
        let c = self.pool.sle(a, b);
        self.branch(c)
    }

    /// Assume `a == b`.
    pub fn assume_eq(&mut self, a: TermId, b: TermId) -> PathResult<()> {
        let c = self.pool.eq(a, b);
        self.assume(c)
    }

    /// Ends the current path (the paper's `drop_path` annotation).
    pub fn drop_path(&self) -> PathResult<()> {
        Err(Halt::Dropped)
    }

    // ------------------------------------------------------------------
    // Network
    // ------------------------------------------------------------------

    /// Receives the next message.
    ///
    /// Messages come from the exploration's *receive script* (injected
    /// concrete messages or messages captured from another node — the
    /// Constructed Symbolic Local State mode §3.4). Past the end of the
    /// script, a fresh fully-symbolic message of `layout` is created and
    /// interned so that every run sees the same variables.
    pub fn recv(&mut self, layout: &Arc<MessageLayout>) -> PathResult<SymMessage> {
        let idx = self.recv_counter;
        self.recv_counter += 1;
        if idx >= self.registry.recv_script.len() {
            let prefix = if idx == 0 {
                self.recv_prefix.clone()
            } else {
                format!("{}{}", self.recv_prefix, idx)
            };
            // Tagged interning, not `SymMessage::fresh`: plain fresh vars
            // carry the pool's fork nonce in their fingerprint, so parallel
            // workers would each mint a distinct copy of the "same" field.
            let pool = &mut *self.pool;
            let values: Vec<TermId> = layout
                .fields()
                .iter()
                .map(|f| {
                    let name = format!("{prefix}.{}", f.name);
                    let var = pool.fresh_var_tagged(
                        &name,
                        f.width,
                        recv_tag(self.sym_salt, idx, &name, f.width),
                    );
                    pool.var(var)
                })
                .collect();
            let fresh = SymMessage::new(Arc::clone(layout), values);
            self.registry.recv_script.push(fresh);
        }
        let msg = self.registry.recv_script[idx].clone();
        assert_eq!(
            msg.layout().name(),
            layout.name(),
            "recv #{idx}: script message layout mismatch"
        );
        self.received.push(msg.clone());
        Ok(msg)
    }

    /// Sends a message (recorded; sending marks the path accepting unless a
    /// marker says otherwise).
    pub fn send(&mut self, msg: SymMessage) {
        self.sent.push(msg);
    }

    /// Messages sent so far on this path.
    pub fn sent(&self) -> &[SymMessage] {
        &self.sent
    }

    // ------------------------------------------------------------------
    // Annotations
    // ------------------------------------------------------------------

    /// Marks this path accepting (server-side annotation).
    pub fn mark_accept(&mut self) {
        self.verdict = Some(Verdict::Accept);
    }

    /// Marks this path rejecting (server-side annotation).
    pub fn mark_reject(&mut self) {
        self.verdict = Some(Verdict::Reject);
    }

    /// Classifies the path through a protocol status code (§5.1: "this can
    /// be trivially extended to handle other common error signaling
    /// mechanisms (e.g., 4xx status codes in HTTP)").
    ///
    /// Codes in `100..400` mark the path accepting, codes in `400..600`
    /// rejecting; other codes leave the default classification in place.
    pub fn reply_status(&mut self, code: u16) {
        self.note(format!("status={code}"));
        match code {
            100..=399 => self.mark_accept(),
            400..=599 => self.mark_reject(),
            _ => {}
        }
    }

    /// Records a free-form note on the path (useful to label which protocol
    /// action a path performs; shows up in reports).
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

impl std::fmt::Debug for SymEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymEnv")
            .field("depth", &self.branch_points)
            .field("constraints", &self.pc.len())
            .field("sent", &self.sent.len())
            .field("received", &self.received.len())
            .finish_non_exhaustive()
    }
}
