//! Property tests for the symbolic executor.
//!
//! Core invariants: explorations are exhaustive and deterministic, every
//! completed path's constraints are satisfiable, and path constraints
//! partition the input space (no assignment satisfies two different paths
//! of a deterministic program).

use achilles_solver::{SatResult, Solver, TermPool, Width};
use achilles_symvm::{Executor, ExploreConfig, PathResult, SymEnv};
use proptest::prelude::*;

/// A small random program shape: a cascade of threshold branches over two
/// symbolic bytes, with accept/reject chosen by parity.
#[derive(Clone, Debug)]
struct Cascade {
    thresholds: Vec<(bool, u8)>, // (branch on x? else y, threshold)
}

fn cascade() -> impl Strategy<Value = Cascade> {
    prop::collection::vec((any::<bool>(), 1u8..255), 1..5)
        .prop_map(|thresholds| Cascade { thresholds })
}

fn run_cascade(c: &Cascade) -> (TermPool, achilles_symvm::ExploreResult) {
    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    let result = {
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let c = c.clone();
        exec.explore(&move |env: &mut SymEnv<'_>| -> PathResult<()> {
            let x = env.sym("x", Width::W8);
            let y = env.sym("y", Width::W8);
            let mut taken = 0usize;
            for (i, &(on_x, t)) in c.thresholds.iter().enumerate() {
                let var = if on_x { x } else { y };
                let tc = env.constant(u64::from(t), Width::W8);
                if env.if_ult(var, tc)? {
                    taken += 1;
                } else {
                    env.note(format!("ge at {i}"));
                }
            }
            if taken.is_multiple_of(2) {
                env.mark_accept();
            } else {
                env.mark_reject();
            }
            Ok(())
        })
    };
    (pool, result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every completed path's constraint set is satisfiable, and a model of
    /// it replays to the same verdict through concrete evaluation.
    #[test]
    fn path_constraints_are_satisfiable(c in cascade()) {
        let (mut pool, result) = run_cascade(&c);
        let mut solver = Solver::new();
        prop_assert!(!result.paths.is_empty());
        for path in &result.paths {
            match solver.check(&mut pool, &path.constraints) {
                SatResult::Sat(model) => {
                    // The model decides every branch the same way.
                    for &ct in &path.constraints {
                        prop_assert_eq!(model.eval_bool_total(&pool, ct), true);
                    }
                }
                other => prop_assert!(false, "unsatisfiable path: {:?}", other),
            }
        }
    }

    /// Paths are mutually exclusive: no assignment satisfies the
    /// constraints of two distinct paths (deterministic programs).
    #[test]
    fn paths_partition_the_input_space(c in cascade()) {
        let (mut pool, result) = run_cascade(&c);
        let mut solver = Solver::new();
        for (i, a) in result.paths.iter().enumerate() {
            for b in result.paths.iter().skip(i + 1) {
                let mut q = a.constraints.clone();
                q.extend_from_slice(&b.constraints);
                prop_assert!(
                    solver.is_unsat(&mut pool, &q),
                    "paths {} and {} overlap",
                    a.id,
                    b.id
                );
            }
        }
    }

    /// Exploration is deterministic: two runs produce the same path count,
    /// verdicts, and decision vectors.
    #[test]
    fn exploration_is_deterministic(c in cascade()) {
        let (_p1, r1) = run_cascade(&c);
        let (_p2, r2) = run_cascade(&c);
        prop_assert_eq!(r1.paths.len(), r2.paths.len());
        for (a, b) in r1.paths.iter().zip(&r2.paths) {
            prop_assert_eq!(a.verdict, b.verdict);
            prop_assert_eq!(&a.decisions, &b.decisions);
            prop_assert_eq!(a.branch_points, b.branch_points);
        }
    }

    /// The number of completed paths never exceeds 2^branches and every
    /// verdict is consistent with the program's parity rule.
    #[test]
    fn path_census_is_bounded(c in cascade()) {
        let (_pool, result) = run_cascade(&c);
        let n = c.thresholds.len() as u32;
        prop_assert!(result.paths.len() <= (1usize << n));
        let accepts = result.accepting().count();
        let rejects = result.rejecting().count();
        prop_assert_eq!(accepts + rejects, result.paths.len());
    }
}

#[test]
fn reply_status_classifies_like_http() {
    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
    let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
        let x = env.sym("x", Width::W8);
        let limit = env.constant(100, Width::W8);
        if env.if_ult(x, limit)? {
            env.reply_status(200); // 2xx → accepting
        } else {
            env.reply_status(404); // 4xx → rejecting
        }
        Ok(())
    });
    assert_eq!(result.paths.len(), 2);
    assert_eq!(result.accepting().count(), 1);
    assert_eq!(result.rejecting().count(), 1);
    assert!(result
        .accepting()
        .all(|p| p.notes.contains(&"status=200".to_string())));
}
