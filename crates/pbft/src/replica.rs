//! The PBFT replica node program (request-validation slice).
//!
//! One primary-replica event-loop iteration: receive a client request,
//! validate it, and either initiate agreement (emit `Pre_prepare` — the
//! paper's accept marker: "We considered a message to be accepted when the
//! replica generates a Pre_prepare message") or execute it directly
//! (read-only requests).
//!
//! The checks mirror what the paper observed (§6.2): "Surprisingly, PBFT
//! replicas make few checks on the data received from clients. They verify
//! that request ids are recent and have not already been handled, verify
//! that the client id is in a set of known clients and also check if the
//! flags field marks the request as read-only." **The primary never
//! verifies the authenticators** — the MAC-attack vulnerability [10 in the
//! paper's references]. [`PbftReplicaConfig::verify_macs`] "patches" the
//! bug for control experiments.
//!
//! Local state (the last request id executed per client) is
//! *over-approximated with unconstrained symbolic values*, exactly as the
//! paper does for PBFT's request-history structure (§6.1).

use achilles_solver::Width;
use achilles_symvm::{MessageLayout, NodeProgram, PathResult, SymEnv, SymMessage};

use crate::mac::{N_CLIENTS, N_REPLICAS};
use crate::protocol::{
    layout, COMMAND_LEN, DIGEST_PLACEHOLDER, MAC_PLACEHOLDER, MESSAGE_SIZE, REQUEST_TAG,
};

/// The Pre_prepare message layout (enough structure for the accept marker).
pub fn preprepare_layout() -> std::sync::Arc<MessageLayout> {
    MessageLayout::builder("pre_prepare")
        .field("view", Width::W16)
        .field("seq", Width::W32)
        .field("od", Width::W64)
        .build()
}

/// Replica configuration.
#[derive(Clone, Debug, Default)]
pub struct PbftReplicaConfig {
    /// Patch for the MAC attack: verify the client's authenticator before
    /// accepting (real PBFT primaries do not — that is the vulnerability).
    pub verify_macs: bool,
}

/// The primary replica as a node program.
#[derive(Clone, Debug, Default)]
pub struct PbftReplica {
    config: PbftReplicaConfig,
}

impl PbftReplica {
    /// A replica with the given configuration.
    pub fn new(config: PbftReplicaConfig) -> PbftReplica {
        PbftReplica { config }
    }
}

impl NodeProgram for PbftReplica {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&layout())?;

        // Message-type and framing checks.
        let tag_ok = env.constant(REQUEST_TAG, Width::W16);
        if !env.if_eq(msg.field("tag"), tag_ok)? {
            return Ok(()); // not a request
        }
        let size_ok = env.constant(MESSAGE_SIZE, Width::W32);
        if !env.if_eq(msg.field("size"), size_ok)? {
            return Ok(());
        }
        let cs_ok = env.constant(COMMAND_LEN as u64, Width::W16);
        if !env.if_eq(msg.field("command_size"), cs_ok)? {
            return Ok(());
        }
        // Digest check (bypassed with the predefined constant, as the
        // paper's annotations do).
        let od_ok = env.constant(DIGEST_PLACEHOLDER, Width::W64);
        if !env.if_eq(msg.field("od"), od_ok)? {
            return Ok(());
        }

        // Flags: only the read-only bit is defined.
        let one16 = env.constant(1, Width::W16);
        if env.if_ult(one16, msg.field("extra"))? {
            return Ok(()); // undefined flag bits set
        }

        // The designated replier must exist.
        let nrep = env.constant(N_REPLICAS as u64, Width::W16);
        if !env.if_ult(msg.field("replier"), nrep)? {
            return Ok(());
        }

        // "the client id is in a set of known clients"
        let nclients = env.constant(N_CLIENTS, Width::W16);
        if !env.if_ult(msg.field("cid"), nclients)? {
            return Ok(());
        }

        // "request ids are recent and have not already been handled" — the
        // per-client history is over-approximated symbolic local state.
        let last_rid = env.sym("state.last_rid", Width::W16);
        if !env.if_ult(last_rid, msg.field("rid"))? {
            return Ok(()); // stale or duplicate request id
        }

        // VULNERABILITY: the primary forwards the request without checking
        // any authenticator. With the patch enabled, it verifies its own
        // MAC (bypass constant) first.
        if self.config.verify_macs {
            let mac_ok = env.constant(MAC_PLACEHOLDER, Width::W32);
            for r in 0..N_REPLICAS {
                if !env.if_eq(msg.field(&format!("mac[{r}]")), mac_ok)? {
                    return Ok(());
                }
            }
        }

        let read_only = env.if_eq(msg.field("extra"), one16)?;
        if read_only {
            // Read-only requests execute directly and reply.
            env.note("read-only execute");
            env.mark_accept();
            return Ok(());
        }

        // Initiate agreement: emit Pre_prepare — the accept marker.
        env.note("pre_prepare");
        let pp = {
            let view = env.constant(0, Width::W16);
            let seq = env.sym("state.next_seq", Width::W32);
            let od = msg.field("od");
            SymMessage::new(preprepare_layout(), vec![view, seq, od])
        };
        env.send(pp);
        env.mark_accept();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PbftRequest;
    use achilles_solver::{Solver, TermPool};
    use achilles_symvm::{Executor, ExploreConfig, Verdict};

    fn explore(config: PbftReplicaConfig) -> (TermPool, achilles_symvm::ExploreResult) {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let (cfg, _msg) = ExploreConfig::with_symbolic_message(&mut pool, &layout(), "msg");
        let result = {
            let mut exec = Executor::new(&mut pool, &mut solver, cfg);
            exec.explore(&PbftReplica::new(config))
        };
        (pool, result)
    }

    #[test]
    fn two_accepting_paths() {
        let (_pool, result) = explore(PbftReplicaConfig::default());
        // Read-only execution and Pre_prepare agreement.
        assert_eq!(result.accepting().count(), 2);
        let notes: Vec<&str> = result
            .accepting()
            .flat_map(|p| p.notes.iter().map(String::as_str))
            .collect();
        assert!(notes.contains(&"pre_prepare"));
        assert!(notes.contains(&"read-only execute"));
    }

    #[test]
    fn concrete_correct_request_accepted() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        // The analysis model uses placeholder digests/MACs; build a matching
        // concrete request.
        let mut req = PbftRequest::correct(1, 5, *b"noop");
        req.od = DIGEST_PLACEHOLDER;
        req.macs = [MAC_PLACEHOLDER as u32; N_REPLICAS];
        let sym = req.to_sym(&mut pool);
        let cfg = ExploreConfig {
            recv_script: vec![sym],
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, cfg);
        // `state.last_rid` is symbolic, so even a "concrete" run forks on the
        // recency check; explore() both and expect one accept + one reject.
        let result = exec.explore(&PbftReplica::default());
        assert_eq!(result.paths.len(), 2);
        assert_eq!(result.accepting().count(), 1);
    }

    #[test]
    fn wrong_tag_rejected() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let mut req = PbftRequest::correct(1, 5, *b"noop");
        req.tag = 99;
        req.od = DIGEST_PLACEHOLDER;
        req.macs = [MAC_PLACEHOLDER as u32; N_REPLICAS];
        let sym = req.to_sym(&mut pool);
        let cfg = ExploreConfig {
            recv_script: vec![sym],
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, cfg);
        let result = exec.run_concrete(&PbftReplica::default());
        assert_eq!(result.paths[0].verdict, Verdict::Reject);
    }

    #[test]
    fn patched_replica_rejects_bad_macs() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let mut req = PbftRequest::correct(1, 5, *b"noop");
        req.od = DIGEST_PLACEHOLDER;
        req.macs = [MAC_PLACEHOLDER as u32; N_REPLICAS];
        req.macs[1] = 0x1234; // corrupted authenticator
        let sym = req.to_sym(&mut pool);
        let cfg = ExploreConfig {
            recv_script: vec![sym],
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, cfg);
        let result = exec.run_concrete(&PbftReplica::new(PbftReplicaConfig { verify_macs: true }));
        assert_eq!(result.paths[0].verdict, Verdict::Reject);
    }
}
