//! The PBFT [`TargetSpec`] and concrete deployment target.
//!
//! [`PbftSpec`] exposes the MAC-attack analysis (§6.2) through the
//! protocol-agnostic trait; [`PbftTarget`] — previously hand-assembled in
//! the replay harness — boots the deterministic 4-replica cluster over
//! `SimClock` cost accounting per injection.

use std::sync::Arc;

use achilles::{
    AchillesConfig, Delivery, InjectionOutcome, ReplayTarget, SnapshotReplayTarget, TargetSnapshot,
    TargetSpec, TrojanReport,
};
use achilles_symvm::{ExploreConfig, MessageLayout, NodeProgram};

use crate::analysis::{classify, PbftAnalysisConfig, PbftTrojanFamily};
use crate::client::PbftClient;
use crate::cluster::{ClusterConfig, PbftCluster, SubmitOutcome};
use crate::mac::{N_CLIENTS, N_REPLICAS};
use crate::protocol::{layout, PbftRequest, COMMAND_LEN, MESSAGE_SIZE, REQUEST_TAG};
use crate::replica::PbftReplica;

/// The PBFT deployment target: the deterministic 4-replica cluster over
/// `SimClock` cost accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct PbftTarget {
    /// Cluster cost model and patch toggle.
    pub cluster: ClusterConfig,
}

impl PbftTarget {
    /// A target over the default cost model (vulnerable primary).
    pub fn new(cluster: ClusterConfig) -> PbftTarget {
        PbftTarget { cluster }
    }
}

impl ReplayTarget for PbftTarget {
    fn name(&self) -> &'static str {
        "pbft"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        PbftRequest::correct(0, 1, *b"op__").field_values()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        let req = PbftRequest::from_field_values(fields);
        u64::from(req.tag) == REQUEST_TAG
            && u64::from(req.size) == MESSAGE_SIZE
            && usize::from(req.command_size) == COMMAND_LEN
            && req.extra <= 1
            && usize::from(req.replier) < N_REPLICAS
            && u64::from(req.cid) < N_CLIENTS
            && (0..N_REPLICAS).all(|r| req.mac_valid_for(r))
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut session = PbftForkSession::boot(self.cluster);
        let mut outcome = InjectionOutcome::default();
        for delivery in deliveries {
            session.deliver(delivery, &mut outcome);
        }
        session.finish(&mut outcome);
        outcome
    }

    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        Some(Box::new(PbftForkSession::boot(self.cluster)))
    }
}

/// The incremental deployment behind [`PbftTarget`]: one live 4-replica
/// cluster. No end-of-plan step.
struct PbftForkSession {
    cluster: PbftCluster,
}

impl PbftForkSession {
    fn boot(config: ClusterConfig) -> PbftForkSession {
        PbftForkSession {
            cluster: PbftCluster::new(config),
        }
    }
}

impl SnapshotReplayTarget for PbftForkSession {
    fn deliver(&mut self, delivery: &Delivery, outcome: &mut InjectionOutcome) {
        let (wire, is_witness) = delivery;
        let Ok(req) = PbftRequest::from_wire(wire) else {
            outcome.accepted_each.push(false);
            outcome.effects.push("malformed".to_string());
            return;
        };
        let submit = self.cluster.submit(&req);
        let (accepted, note) = match submit {
            SubmitOutcome::Executed => (true, "outcome:fast-path"),
            SubmitOutcome::RecoveredThenExecuted => (true, "outcome:recovered"),
            SubmitOutcome::DroppedByPrimary => (false, "outcome:dropped-by-primary"),
        };
        outcome.accepted_each.push(accepted);
        outcome.effects.push(note.to_string());
        if *is_witness {
            let bad = (0..N_REPLICAS).filter(|&r| !req.mac_valid_for(r)).count();
            if bad > 0 {
                outcome.effects.push(format!("bad_macs:{bad}"));
            }
        }
    }

    fn snapshot(&self) -> TargetSnapshot {
        TargetSnapshot::of(self.cluster.clone())
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) {
        self.cluster = snapshot
            .get::<PbftCluster>()
            .expect("a pbft fork session restores pbft snapshots")
            .clone();
    }

    fn finish(&mut self, _outcome: &mut InjectionOutcome) {}
}

/// The PBFT protocol as a [`TargetSpec`].
#[derive(Clone, Debug, Default)]
pub struct PbftSpec {
    /// The analysis configuration (replica patch toggle, workers).
    pub analysis: PbftAnalysisConfig,
    /// Cost model of the concrete cluster booted by the replay factory.
    /// Its MAC-verification toggle is *ignored*: the factory always
    /// derives it from `analysis.replica.verify_macs`, so the replayed
    /// deployment can never silently disagree with the analyzed replica.
    pub cluster: ClusterConfig,
}

impl PbftSpec {
    /// The paper's setup: vulnerable replica, verification on — the
    /// registry default.
    pub fn paper() -> PbftSpec {
        PbftSpec {
            analysis: PbftAnalysisConfig::paper(),
            cluster: ClusterConfig::default(),
        }
    }
}

impl TargetSpec for PbftSpec {
    fn name(&self) -> &'static str {
        "pbft"
    }

    fn description(&self) -> &'static str {
        "PBFT request handling: the unauthenticated-MAC attack (§6.2)"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        layout()
    }

    fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        vec![Box::new(PbftClient)]
    }

    fn server(&self) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(PbftReplica::new(self.analysis.replica.clone()))
    }

    fn analysis_config(&self) -> AchillesConfig {
        AchillesConfig {
            optimizations: self.analysis.optimizations,
            verify_witnesses: self.analysis.verify_witnesses,
            server_explore: ExploreConfig {
                workers: self.analysis.workers.max(1),
                ..ExploreConfig::default()
            },
            ..AchillesConfig::default()
        }
    }

    fn expected_trojans(&self) -> Option<usize> {
        // One report per accepting replica path (read-only + pre_prepare),
        // both of the single MAC-attack type — unless the patch closes it.
        if self.analysis.replica.verify_macs {
            Some(0)
        } else {
            Some(2)
        }
    }

    fn classify(&self, report: &TrojanReport) -> String {
        match classify(report) {
            PbftTrojanFamily::MacAttack => "mac-attack".to_string(),
            PbftTrojanFamily::Other => "other".to_string(),
        }
    }

    fn replay_target(&self) -> Box<dyn ReplayTarget> {
        // Patch toggles must match the analyzed server: derive the
        // cluster's MAC check from the replica config under analysis.
        Box::new(PbftTarget::new(ClusterConfig {
            primary_verifies_macs: self.analysis.replica.verify_macs,
            ..self.cluster
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles::AchillesSession;

    #[test]
    fn spec_session_rediscovers_the_mac_attack() {
        let spec = PbftSpec::paper();
        let report = AchillesSession::new(&spec).run();
        assert_eq!(Some(report.trojans.len()), spec.expected_trojans());
        for t in &report.trojans {
            assert_eq!(spec.classify(t), "mac-attack");
        }
    }

    #[test]
    fn patched_spec_expects_zero() {
        let mut spec = PbftSpec::paper();
        spec.analysis.replica.verify_macs = true;
        let report = AchillesSession::new(&spec).run();
        assert_eq!(report.trojans.len(), 0);
        assert_eq!(spec.expected_trojans(), Some(0));
    }

    #[test]
    fn replay_factory_mirrors_the_analysis_patch() {
        // The cluster's MAC toggle is derived from the analyzed replica
        // even when the cost-model config disagrees: a correct request
        // must be accepted by both builds, while a corrupted-MAC request
        // is dropped exactly when the analysis is patched.
        for patched in [false, true] {
            let mut spec = PbftSpec::paper();
            spec.analysis.replica.verify_macs = patched;
            spec.cluster.primary_verifies_macs = !patched; // contradicts on purpose
            let target = spec.replay_target();
            let bad = PbftRequest::correct(0, 1, *b"op__").with_corrupted_mac(1);
            let outcome = target.inject(&[(bad.to_wire(), true)]);
            assert_eq!(
                outcome.accepted_each,
                vec![!patched],
                "patched analysis ⇒ patched deployment (and vice versa)"
            );
        }
    }
}
