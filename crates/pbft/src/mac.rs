//! Message authentication codes for the PBFT model.
//!
//! PBFT authenticates client requests with a *vector of MACs*, one per
//! replica, each computed with a pairwise session key. The paper's
//! evaluation replaces the real UMAC with annotated constants; our model
//! keeps an actual (toy) keyed hash so the *cluster simulation* can verify
//! authenticators like real backups do, while the *symbolic analysis* uses
//! the paper's constant-bypass approximation.

/// Number of replicas (f = 1 ⇒ 3f + 1 = 4).
pub const N_REPLICAS: usize = 4;

/// Number of registered client identities.
pub const N_CLIENTS: u64 = 8;

/// A toy keyed MAC: xor-rotate mixing of the key and the authenticated
/// words. Deterministic, endian-stable, and obviously not cryptographic —
/// the analysis treats it as opaque anyway.
pub fn mac(key: u64, cid: u64, rid: u64, payload_digest: u64) -> u32 {
    let mut state = key ^ 0x9E37_79B9_7F4A_7C15;
    for word in [cid, rid, payload_digest] {
        state = state.wrapping_add(word).rotate_left(23) ^ key.rotate_right(17);
        state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    }
    (state ^ (state >> 32)) as u32
}

/// The pairwise session key between client `cid` and replica `r`.
pub fn session_key(cid: u64, replica: usize) -> u64 {
    0xA5A5_0000_0000_0000 ^ (cid << 16) ^ replica as u64
}

/// A cheap digest of a command payload (stands in for the `od` field's
/// SHA-1 in real PBFT).
pub fn digest(payload: &[u8]) -> u64 {
    payload.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, &b| {
        (acc ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Computes the full authenticator vector for a request.
pub fn authenticator(cid: u64, rid: u64, payload: &[u8]) -> [u32; N_REPLICAS] {
    let d = digest(payload);
    std::array::from_fn(|r| mac(session_key(cid, r), cid, rid, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_is_deterministic_and_key_sensitive() {
        let a = mac(1, 2, 3, 4);
        assert_eq!(a, mac(1, 2, 3, 4));
        assert_ne!(a, mac(2, 2, 3, 4));
        assert_ne!(a, mac(1, 2, 4, 4));
    }

    #[test]
    fn authenticators_differ_per_replica() {
        let auth = authenticator(1, 1, b"op");
        for i in 0..N_REPLICAS {
            for j in (i + 1)..N_REPLICAS {
                assert_ne!(auth[i], auth[j], "replica keys must separate MACs");
            }
        }
    }

    #[test]
    fn digest_depends_on_content() {
        assert_ne!(digest(b"a"), digest(b"b"));
        assert_ne!(digest(b"ab"), digest(b"ba"));
        assert_eq!(digest(b""), digest(b""));
    }
}
