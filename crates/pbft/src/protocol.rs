//! The PBFT client-request wire format (bounded model).
//!
//! A client request carries (§6.1 of the paper):
//!
//! | field          | width | meaning                                |
//! |----------------|-------|----------------------------------------|
//! | `tag`          | 2 B   | message type                           |
//! | `extra`        | 2 B   | flags (bit 0 = read-only)              |
//! | `size`         | 4 B   | total message length                   |
//! | `od`           | 8 B   | request digest (paper: 16 B, bypassed) |
//! | `replier`      | 2 B   | replica designated to send the reply   |
//! | `command_size` | 2 B   | command length                         |
//! | `cid`          | 2 B   | client id                              |
//! | `rid`          | 2 B   | request id                             |
//! | `command`      | fix.  | command payload ([`COMMAND_LEN`] B)    |
//! | `mac[r]`       | 4 B   | authenticator for each replica         |
//!
//! The digest and MAC fields are bypassed with predefined constants during
//! the symbolic analysis (the paper's annotation approximation); the
//! concrete cluster simulation uses the real toy MAC from [`crate::mac`].

use std::sync::Arc;

use achilles_netsim::bytes::{decode_fields, encode_fields, WireError};
use achilles_solver::{TermPool, Width};
use achilles_symvm::{MessageLayout, SymMessage};

use crate::mac::{authenticator, N_REPLICAS};

/// Tag value of client request messages.
pub const REQUEST_TAG: u64 = 1;
/// Fixed command payload length (paper: "we set a fixed length for the
/// command").
pub const COMMAND_LEN: usize = 4;
/// Fixed total message size implied by the bounded layout, in bytes.
pub const MESSAGE_SIZE: u64 =
    (2 + 2 + 4 + 8 + 2 + 2 + 2 + 2) + COMMAND_LEN as u64 + 4 * N_REPLICAS as u64;
/// The predefined constant replacing the digest during analysis.
pub const DIGEST_PLACEHOLDER: u64 = 0;
/// The predefined constant replacing each authenticator during analysis.
pub const MAC_PLACEHOLDER: u64 = 0;

/// Field widths in declaration order (wire codec).
pub const FIELD_WIDTHS: [u32; 8 + COMMAND_LEN + N_REPLICAS] = {
    let mut w = [8u32; 8 + COMMAND_LEN + N_REPLICAS];
    w[0] = 16; // tag
    w[1] = 16; // extra
    w[2] = 32; // size
    w[3] = 64; // od
    w[4] = 16; // replier
    w[5] = 16; // command_size
    w[6] = 16; // cid
    w[7] = 16; // rid
               // command bytes stay 8
    let mut i = 8 + COMMAND_LEN;
    while i < 8 + COMMAND_LEN + N_REPLICAS {
        w[i] = 32; // mac[r]
        i += 1;
    }
    w
};

/// Index of the first command byte.
pub const COMMAND_BASE: usize = 8;
/// Index of the first MAC field.
pub const MAC_BASE: usize = 8 + COMMAND_LEN;

/// The bounded request layout.
pub fn layout() -> Arc<MessageLayout> {
    let mut b = MessageLayout::builder("pbft_req")
        .field("tag", Width::W16)
        .field("extra", Width::W16)
        .field("size", Width::W32)
        .field("od", Width::W64)
        .field("replier", Width::W16)
        .field("command_size", Width::W16)
        .field("cid", Width::W16)
        .field("rid", Width::W16)
        .byte_array("command", COMMAND_LEN);
    for r in 0..N_REPLICAS {
        b = b.field(&format!("mac[{r}]"), Width::W32);
    }
    b.build()
}

/// A concrete PBFT client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PbftRequest {
    /// Message type tag.
    pub tag: u16,
    /// Flags (bit 0 = read-only).
    pub extra: u16,
    /// Total message size.
    pub size: u32,
    /// Request digest.
    pub od: u64,
    /// Designated replier replica.
    pub replier: u16,
    /// Command length.
    pub command_size: u16,
    /// Client id.
    pub cid: u16,
    /// Request id.
    pub rid: u16,
    /// Command payload.
    pub command: [u8; COMMAND_LEN],
    /// Per-replica authenticators.
    pub macs: [u32; N_REPLICAS],
}

impl PbftRequest {
    /// A well-formed request as a correct client builds it (real MACs).
    pub fn correct(cid: u16, rid: u16, command: [u8; COMMAND_LEN]) -> PbftRequest {
        PbftRequest {
            tag: REQUEST_TAG as u16,
            extra: 0,
            size: MESSAGE_SIZE as u32,
            od: crate::mac::digest(&command),
            replier: 0,
            command_size: COMMAND_LEN as u16,
            cid,
            rid,
            command,
            macs: authenticator(u64::from(cid), u64::from(rid), &command),
        }
    }

    /// The same request with one authenticator corrupted — the MAC-attack
    /// Trojan message (§6.3).
    pub fn with_corrupted_mac(mut self, replica: usize) -> PbftRequest {
        self.macs[replica] ^= 0xDEAD_BEEF;
        self
    }

    /// Field values in layout order.
    pub fn field_values(&self) -> Vec<u64> {
        let mut v = vec![
            u64::from(self.tag),
            u64::from(self.extra),
            u64::from(self.size),
            self.od,
            u64::from(self.replier),
            u64::from(self.command_size),
            u64::from(self.cid),
            u64::from(self.rid),
        ];
        v.extend(self.command.iter().map(|&b| u64::from(b)));
        v.extend(self.macs.iter().map(|&m| u64::from(m)));
        v
    }

    /// Builds a request from layout-ordered field values.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong arity.
    pub fn from_field_values(values: &[u64]) -> PbftRequest {
        assert_eq!(values.len(), 8 + COMMAND_LEN + N_REPLICAS);
        let mut command = [0u8; COMMAND_LEN];
        for (i, b) in command.iter_mut().enumerate() {
            *b = values[COMMAND_BASE + i] as u8;
        }
        let mut macs = [0u32; N_REPLICAS];
        for (i, m) in macs.iter_mut().enumerate() {
            *m = values[MAC_BASE + i] as u32;
        }
        PbftRequest {
            tag: values[0] as u16,
            extra: values[1] as u16,
            size: values[2] as u32,
            od: values[3],
            replier: values[4] as u16,
            command_size: values[5] as u16,
            cid: values[6] as u16,
            rid: values[7] as u16,
            command,
            macs,
        }
    }

    /// Encodes to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        let fields: Vec<(u32, u64)> = FIELD_WIDTHS
            .iter()
            .copied()
            .zip(self.field_values())
            .collect();
        encode_fields(&fields).expect("static widths are byte-aligned")
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the buffer is too short.
    pub fn from_wire(wire: &[u8]) -> Result<PbftRequest, WireError> {
        let values = decode_fields(wire, &FIELD_WIDTHS)?;
        Ok(PbftRequest::from_field_values(&values))
    }

    /// The request as a concrete [`SymMessage`].
    pub fn to_sym(&self, pool: &mut TermPool) -> SymMessage {
        SymMessage::concrete(pool, &layout(), &self.field_values())
    }

    /// Whether replica `r`'s authenticator verifies.
    pub fn mac_valid_for(&self, replica: usize) -> bool {
        let expect = authenticator(u64::from(self.cid), u64::from(self.rid), &self.command);
        self.macs[replica] == expect[replica]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_arity_matches_struct() {
        let l = layout();
        assert_eq!(l.num_fields(), 8 + COMMAND_LEN + N_REPLICAS);
        assert_eq!(l.field_index("mac[0]"), Some(MAC_BASE));
        assert_eq!(l.field_index("command[0]"), Some(COMMAND_BASE));
    }

    #[test]
    fn wire_round_trip() {
        let req = PbftRequest::correct(3, 17, *b"incr");
        let back = PbftRequest::from_wire(&req.to_wire()).unwrap();
        assert_eq!(back, req);
        assert_eq!(req.to_wire().len() as u64, MESSAGE_SIZE);
    }

    #[test]
    fn correct_requests_verify_everywhere() {
        let req = PbftRequest::correct(2, 9, *b"op!!");
        for r in 0..N_REPLICAS {
            assert!(req.mac_valid_for(r));
        }
    }

    #[test]
    fn corrupted_mac_fails_only_that_replica() {
        let req = PbftRequest::correct(2, 9, *b"op!!").with_corrupted_mac(2);
        for r in 0..N_REPLICAS {
            assert_eq!(req.mac_valid_for(r), r != 2);
        }
    }

    #[test]
    fn sym_round_trip() {
        let mut pool = TermPool::new();
        let req = PbftRequest::correct(1, 1, *b"noop");
        let sym = req.to_sym(&mut pool);
        assert!(sym.is_concrete(&pool));
        let vals = sym.concretize(&pool, &achilles_solver::Model::new());
        assert_eq!(PbftRequest::from_field_values(&vals), req);
    }
}
