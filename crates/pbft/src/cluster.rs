//! Deterministic PBFT cluster simulation — the MAC-attack impact demo.
//!
//! Reproduces the §6.3 scenario: "Clients can send messages with incorrect
//! authenticators. The first replica to receive the client request does not
//! verify any of the authenticators. It forwards the message to other
//! replicas, which discover the incorrect authenticator, but cannot know
//! whether the original client or the first replica have corrupted the
//! message. In order to guarantee progress, they initiate an expensive
//! recovery protocol, which impacts performance."
//!
//! Costs are charged to a logical clock so the throughput collapse is
//! deterministic: a normal three-phase agreement costs
//! [`ClusterConfig::agreement_cost_us`]; a recovery (view-change plus
//! signed-retransmission round) costs [`ClusterConfig::recovery_cost_us`],
//! two orders of magnitude more — mirroring the "expensive recovery
//! protocol" of Clement et al. [10].

use achilles_netsim::{SimClock, SimTime};

use crate::mac::N_REPLICAS;
use crate::protocol::PbftRequest;

/// Cluster cost model.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Cost of one normal-case agreement (pre-prepare/prepare/commit), µs.
    pub agreement_cost_us: u64,
    /// Cost of the recovery protocol triggered by a bad authenticator, µs.
    pub recovery_cost_us: u64,
    /// Whether request authentication is verified before forwarding.
    /// Models the fix of Clement et al. [10]: clients sign requests, and a
    /// signature — unlike a MAC vector — is *transferable*, so the primary
    /// can validate the whole authenticator up front (modeled as checking
    /// every MAC). `false` reproduces the vulnerability.
    pub primary_verifies_macs: bool,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            agreement_cost_us: 100,
            recovery_cost_us: 20_000,
            primary_verifies_macs: false,
        }
    }
}

/// Outcome of submitting one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Ordered and executed through the normal three-phase path.
    Executed,
    /// Dropped by the primary (only with the MAC-verification patch).
    DroppedByPrimary,
    /// Backups rejected the authenticator: expensive recovery ran, then the
    /// request was executed via the signed slow path.
    RecoveredThenExecuted,
}

/// Aggregate cluster statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests executed on the fast path.
    pub fast_path: u64,
    /// Requests that triggered recovery.
    pub recoveries: u64,
    /// Requests dropped by the (patched) primary.
    pub dropped: u64,
}

/// A deterministic 4-replica PBFT cluster.
#[derive(Clone, Debug)]
pub struct PbftCluster {
    config: ClusterConfig,
    clock: SimClock,
    stats: ClusterStats,
    executed_log: Vec<(u16, u16)>, // (cid, rid) in execution order
}

impl PbftCluster {
    /// A fresh cluster.
    pub fn new(config: ClusterConfig) -> PbftCluster {
        PbftCluster {
            config,
            clock: SimClock::new(),
            stats: ClusterStats::default(),
            executed_log: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Statistics so far.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// The executed (cid, rid) log.
    pub fn executed(&self) -> &[(u16, u16)] {
        &self.executed_log
    }

    /// Submits one client request to the primary.
    pub fn submit(&mut self, req: &PbftRequest) -> SubmitOutcome {
        self.stats.submitted += 1;

        // Patched primary: validate the (transferable) client credential —
        // any corrupted authenticator is detected before forwarding.
        if self.config.primary_verifies_macs && !(0..N_REPLICAS).all(|r| req.mac_valid_for(r)) {
            self.stats.dropped += 1;
            return SubmitOutcome::DroppedByPrimary;
        }

        // Vulnerable primary: forward blindly. Backups (replicas 1..N)
        // verify their own authenticator.
        let backups_ok = (1..N_REPLICAS).all(|r| req.mac_valid_for(r));
        if backups_ok && req.mac_valid_for(0) {
            self.clock.advance_micros(self.config.agreement_cost_us);
            self.stats.fast_path += 1;
            self.executed_log.push((req.cid, req.rid));
            return SubmitOutcome::Executed;
        }

        // A backup saw a bad authenticator: it cannot tell whether the
        // client or the primary is faulty — run the expensive recovery
        // (view change + signed retransmission), then execute.
        self.clock.advance_micros(self.config.recovery_cost_us);
        self.stats.recoveries += 1;
        self.executed_log.push((req.cid, req.rid));
        SubmitOutcome::RecoveredThenExecuted
    }

    /// Throughput so far, requests per simulated second.
    pub fn throughput(&self) -> f64 {
        let secs = self.now().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.executed_log.len() as f64 / secs
    }
}

/// Runs a workload of `total` requests where every `attack_period`-th
/// request carries a corrupted authenticator; returns the cluster.
///
/// With `attack_period == 0` no request is corrupted (the healthy
/// baseline).
pub fn run_workload(config: ClusterConfig, total: u64, attack_period: u64) -> PbftCluster {
    let mut cluster = PbftCluster::new(config);
    for i in 0..total {
        let cid = (i % 4) as u16;
        let rid = (i / 4 + 1) as u16;
        let req = PbftRequest::correct(cid, rid, *b"op__");
        let req = if attack_period != 0 && i % attack_period == 0 {
            req.with_corrupted_mac(1)
        } else {
            req
        };
        cluster.submit(&req);
    }
    cluster
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_workload_is_fast() {
        let cluster = run_workload(ClusterConfig::default(), 1000, 0);
        assert_eq!(cluster.stats().fast_path, 1000);
        assert_eq!(cluster.stats().recoveries, 0);
        let tput = cluster.throughput();
        assert!(
            (tput - 10_000.0).abs() < 1.0,
            "100µs per op → 10k ops/s, got {tput}"
        );
    }

    #[test]
    fn mac_attack_collapses_throughput() {
        // 10% corrupted requests: each costs 200× a normal agreement.
        let healthy = run_workload(ClusterConfig::default(), 1000, 0);
        let attacked = run_workload(ClusterConfig::default(), 1000, 10);
        assert_eq!(attacked.stats().recoveries, 100);
        let ratio = healthy.throughput() / attacked.throughput();
        assert!(
            ratio > 10.0,
            "one corrupt client slows everyone: healthy {} vs attacked {} (ratio {ratio:.1})",
            healthy.throughput(),
            attacked.throughput()
        );
    }

    #[test]
    fn patched_primary_stops_the_attack() {
        let config = ClusterConfig {
            primary_verifies_macs: true,
            ..ClusterConfig::default()
        };
        let attacked = run_workload(config, 1000, 10);
        assert_eq!(
            attacked.stats().recoveries,
            0,
            "bad MACs die at the primary"
        );
        assert_eq!(attacked.stats().dropped, 100);
        // Correct clients' requests proceed at full speed.
        let healthy_portion = attacked.stats().fast_path;
        assert_eq!(healthy_portion, 900);
    }

    #[test]
    fn single_corruption_triggers_one_recovery() {
        let mut cluster = PbftCluster::new(ClusterConfig::default());
        let good = PbftRequest::correct(0, 1, *b"op__");
        assert_eq!(cluster.submit(&good), SubmitOutcome::Executed);
        let bad = PbftRequest::correct(0, 2, *b"op__").with_corrupted_mac(3);
        assert_eq!(cluster.submit(&bad), SubmitOutcome::RecoveredThenExecuted);
        assert_eq!(cluster.stats().recoveries, 1);
        assert_eq!(cluster.executed(), &[(0, 1), (0, 2)]);
    }
}
