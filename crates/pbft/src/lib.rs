//! # achilles-pbft — PBFT request handling under Achilles
//!
//! A bounded model of PBFT (Castro–Liskov) client-request validation with
//! the **MAC-attack vulnerability** the paper rediscovers (§6.3): the
//! primary replica forwards client requests *without verifying their
//! authenticators*, so a request with a corrupted MAC — which no correct
//! client can produce — is accepted and later forces the expensive recovery
//! protocol, letting one faulty client degrade everyone's service.
//!
//! The crate contains:
//!
//! * [`protocol`] — the request wire format (bounded per §6.1);
//! * [`client`] / [`replica`] — node programs for the symbolic analysis;
//! * [`analysis`] — the canned Achilles run that rediscovers the attack;
//! * [`mac`] — the toy keyed-MAC used by the concrete simulation;
//! * [`cluster`] — a deterministic 4-replica simulation quantifying the
//!   throughput collapse.
//!
//! ```
//! use achilles_pbft::{run_analysis, PbftAnalysisConfig};
//!
//! let result = run_analysis(&PbftAnalysisConfig::paper());
//! assert_eq!(result.distinct_families(), 1, "exactly the MAC attack");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod client;
pub mod cluster;
pub mod mac;
pub mod protocol;
pub mod replica;
pub mod target;

pub use analysis::{
    classify, run_analysis, PbftAnalysisConfig, PbftAnalysisResult, PbftTrojanFamily,
};
pub use client::{extract_client_predicate, PbftClient};
pub use cluster::{run_workload, ClusterConfig, ClusterStats, PbftCluster, SubmitOutcome};
pub use mac::{authenticator, digest, mac, session_key, N_CLIENTS, N_REPLICAS};
pub use protocol::{
    layout, PbftRequest, COMMAND_LEN, DIGEST_PLACEHOLDER, MAC_PLACEHOLDER, MESSAGE_SIZE,
    REQUEST_TAG,
};
pub use replica::{preprepare_layout, PbftReplica, PbftReplicaConfig};
pub use target::{PbftSpec, PbftTarget};
