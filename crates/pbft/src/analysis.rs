//! The canned PBFT Trojan analysis (§6.2): client predicate → negations →
//! replica exploration. The paper reports that "Achilles completed the PBFT
//! analysis in just a few seconds" and discovered "a single type of Trojan
//! message" — a request whose authenticator field cannot come from a
//! correct client, accepted because the primary never checks it.

use std::time::{Duration, Instant};

use achilles::{ClientPredicate, Optimizations, TrojanReport, TrojanSearchStats, WorkerSummary};
use achilles_symvm::{ExploreStats, SymMessage};

use crate::protocol::{PbftRequest, MAC_PLACEHOLDER};
use crate::replica::PbftReplicaConfig;

/// Classification of PBFT Trojan reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PbftTrojanFamily {
    /// A request whose authenticator vector no correct client produces —
    /// the MAC attack.
    MacAttack,
    /// Anything else (unexpected).
    Other,
}

/// Classifies a report by its witness.
pub fn classify(report: &TrojanReport) -> PbftTrojanFamily {
    let req = PbftRequest::from_field_values(&report.witness_fields);
    if req.macs.iter().any(|&m| u64::from(m) != MAC_PLACEHOLDER) {
        PbftTrojanFamily::MacAttack
    } else {
        PbftTrojanFamily::Other
    }
}

/// Configuration of a PBFT analysis run.
#[derive(Clone, Debug, Default)]
pub struct PbftAnalysisConfig {
    /// Replica configuration (patch toggle).
    pub replica: PbftReplicaConfig,
    /// Optimization toggles.
    pub optimizations: Optimizations,
    /// Verify witnesses against the client predicate.
    pub verify_witnesses: bool,
    /// Worker threads for the replica analysis (0/1 = sequential).
    pub workers: usize,
}

impl PbftAnalysisConfig {
    /// The paper's setup: vulnerable replica, full optimizations,
    /// verification on.
    pub fn paper() -> PbftAnalysisConfig {
        PbftAnalysisConfig {
            verify_witnesses: true,
            optimizations: Optimizations::default(),
            replica: PbftReplicaConfig::default(),
            workers: 1,
        }
    }

    /// The paper's setup fanned out over `n` workers.
    pub fn with_workers(mut self, n: usize) -> PbftAnalysisConfig {
        self.workers = n.max(1);
        self
    }
}

/// Result of a PBFT analysis run.
#[derive(Debug)]
pub struct PbftAnalysisResult {
    /// The client predicate.
    pub client: ClientPredicate,
    /// The symbolic request the replica received.
    pub server_msg: SymMessage,
    /// Trojan reports.
    pub trojans: Vec<TrojanReport>,
    /// Per-report families.
    pub families: Vec<PbftTrojanFamily>,
    /// Total analysis time (the paper: "a few seconds").
    pub total_time: Duration,
    /// Search counters.
    pub search_stats: TrojanSearchStats,
    /// Replica exploration counters.
    pub explore_stats: ExploreStats,
    /// Per-worker breakdown (one entry when sequential).
    pub worker_stats: Vec<WorkerSummary>,
}

impl PbftAnalysisResult {
    /// Number of MAC-attack reports.
    pub fn mac_attacks(&self) -> usize {
        self.families
            .iter()
            .filter(|f| **f == PbftTrojanFamily::MacAttack)
            .count()
    }

    /// Number of distinct Trojan *types* (families) discovered.
    pub fn distinct_families(&self) -> usize {
        let mut fams: Vec<PbftTrojanFamily> = self.families.clone();
        fams.sort_by_key(|f| *f == PbftTrojanFamily::Other);
        fams.dedup();
        fams.len()
    }
}

/// Runs the PBFT analysis on a fresh pool/solver.
///
/// Deprecated shim: delegates to
/// [`AchillesSession`](achilles::AchillesSession) over
/// [`PbftSpec`](crate::PbftSpec); prefer driving the session (or the
/// registry) directly in new code.
pub fn run_analysis(config: &PbftAnalysisConfig) -> PbftAnalysisResult {
    let started = Instant::now();
    let spec = crate::target::PbftSpec {
        analysis: config.clone(),
        cluster: crate::cluster::ClusterConfig::default(),
    };
    let report = achilles::AchillesSession::new(&spec).run();
    let families = report.trojans.iter().map(classify).collect();
    PbftAnalysisResult {
        client: report.client,
        server_msg: report.server_msg,
        trojans: report.trojans,
        families,
        total_time: started.elapsed(),
        search_stats: report.search_stats,
        explore_stats: report.server_explore,
        worker_stats: report.server_workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rediscovers_the_mac_attack() {
        let result = run_analysis(&PbftAnalysisConfig::paper());
        // One report per accepting path (read-only + pre_prepare), all of
        // the same single type — the paper: "Achilles discovered a single
        // type of Trojan message … on all execution paths in the server".
        assert_eq!(result.trojans.len(), 2);
        assert_eq!(result.mac_attacks(), 2);
        assert_eq!(result.distinct_families(), 1);
        assert!(result.trojans.iter().all(|t| t.verified));
    }

    #[test]
    fn witnesses_carry_corrupted_authenticators() {
        let result = run_analysis(&PbftAnalysisConfig::paper());
        for t in &result.trojans {
            let req = PbftRequest::from_field_values(&t.witness_fields);
            assert!(
                req.macs.iter().any(|&m| u64::from(m) != MAC_PLACEHOLDER),
                "the witness must differ from the placeholder authenticator"
            );
            // Everything else about the witness is well-formed.
            assert_eq!(u64::from(req.tag), crate::protocol::REQUEST_TAG);
            assert!(u64::from(req.cid) < crate::mac::N_CLIENTS);
        }
    }

    #[test]
    fn patched_replica_is_trojan_free() {
        let config = PbftAnalysisConfig {
            replica: PbftReplicaConfig { verify_macs: true },
            verify_witnesses: true,
            ..PbftAnalysisConfig::paper()
        };
        let result = run_analysis(&config);
        assert_eq!(
            result.trojans.len(),
            0,
            "MAC verification closes the vulnerability"
        );
    }

    #[test]
    fn analysis_is_fast() {
        // The paper: "Due to the simplicity of checks on the client request
        // fields, Achilles completed the PBFT analysis in just a few
        // seconds." Keep a generous bound for slow CI machines.
        let result = run_analysis(&PbftAnalysisConfig::paper());
        assert!(result.total_time < Duration::from_secs(30));
    }
}
