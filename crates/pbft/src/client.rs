//! The PBFT client node program.
//!
//! Mirrors the paper's setup (§6.1): "We started a PBFT client and
//! generated a request with symbolic extra, replier, rid, cid, and
//! command. We set a fixed length for the command, list of authenticators,
//! and for the overall message." The digest and authenticators carry the
//! predefined bypass constants.

use achilles::ClientPredicate;
use achilles_solver::{Solver, TermPool, Width};
use achilles_symvm::{Executor, ExploreConfig, NodeProgram, PathResult, SymEnv, SymMessage};

use crate::mac::{N_CLIENTS, N_REPLICAS};
use crate::protocol::{
    layout, COMMAND_LEN, DIGEST_PLACEHOLDER, MAC_PLACEHOLDER, MESSAGE_SIZE, REQUEST_TAG,
};

/// The PBFT client as a node program.
#[derive(Clone, Copy, Debug, Default)]
pub struct PbftClient;

impl NodeProgram for PbftClient {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        // Symbolic user-controlled inputs, validated like the real client
        // library validates them.
        let extra = env.sym_in_range("extra", Width::W16, 0, 1)?; // only the read-only bit
        let replier = env.sym_in_range("replier", Width::W16, 0, N_REPLICAS as u64 - 1)?;
        let cid = env.sym_in_range("cid", Width::W16, 0, N_CLIENTS - 1)?; // own id: always valid
        let rid = env.sym("rid", Width::W16); // monotonic counter: any value over time
        let command: Vec<_> = (0..COMMAND_LEN)
            .map(|i| env.sym(&format!("command[{i}]"), Width::W8))
            .collect();

        let tag = env.constant(REQUEST_TAG, Width::W16);
        let size = env.constant(MESSAGE_SIZE, Width::W32);
        let od = env.constant(DIGEST_PLACEHOLDER, Width::W64);
        let command_size = env.constant(COMMAND_LEN as u64, Width::W16);

        let mut values = vec![tag, extra, size, od, replier, command_size, cid, rid];
        values.extend(command);
        // The authenticator vector: the bypass constant per replica (the
        // paper's annotation replaces the UMAC computation).
        for _ in 0..N_REPLICAS {
            values.push(env.constant(MAC_PLACEHOLDER, Width::W32));
        }
        env.send(SymMessage::new(layout(), values));
        Ok(())
    }
}

/// Extracts the PBFT client predicate (phase 1).
pub fn extract_client_predicate(pool: &mut TermPool, solver: &mut Solver) -> ClientPredicate {
    let mut exec = Executor::new(pool, solver, ExploreConfig::default());
    let result = exec.explore(&PbftClient);
    ClientPredicate::from_exploration(&result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_path() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let pred = extract_client_predicate(&mut pool, &mut solver);
        assert_eq!(pred.len(), 1, "the client has one sending path");
        let p = &pred.paths[0];
        // MACs are the bypass constant; rid unconstrained; cid range-bound.
        assert_eq!(
            pool.as_const(p.message.field("mac[0]")),
            Some(MAC_PLACEHOLDER)
        );
        assert!(pool.as_const(p.message.field("rid")).is_none());
        assert_eq!(
            p.constraints.len(),
            6,
            "2 each for extra/replier/cid ranges"
        );
    }

    #[test]
    fn client_cannot_send_bad_macs() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let pred = extract_client_predicate(&mut pool, &mut solver);
        let p = &pred.paths[0];
        let bad = pool.constant(0x1234, Width::W32);
        let is_bad = pool.eq(p.message.field("mac[2]"), bad);
        let mut q = p.constraints.clone();
        q.push(is_bad);
        assert!(solver.is_unsat(&mut pool, &q));
    }

    #[test]
    fn client_can_send_any_rid_and_command() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let pred = extract_client_predicate(&mut pool, &mut solver);
        let p = &pred.paths[0];
        for value in [0u64, 1, 0xFFFF] {
            let v = pool.constant(value, Width::W16);
            let pin = pool.eq(p.message.field("rid"), v);
            let mut q = p.constraints.clone();
            q.push(pin);
            assert!(solver.is_sat(&mut pool, &q), "rid {value} generable");
        }
    }
}
