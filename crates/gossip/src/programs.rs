//! Symbolic node programs: the seeding peer, the sync/read requesters
//! (clients), and the node's ingest and session handlers (servers).
//!
//! The peer library validates everything it seeds — key in range, version
//! in range, and a status that is exactly `STATUS_DOWN` or `STATUS_UP`.
//! The node's ingest handler validates the kind, the key, and the version,
//! but **not the status domain**: the byte is stored verbatim and indexes
//! the two-entry status table only when a later `READ` resolves the
//! record. Every `SEED` with `status ∉ {0, 1}` is therefore a Trojan —
//! accepted by the node, producible by no correct peer — and the concrete
//! build crashes on it at resolution time
//! ([`GossipNode::on_read`](crate::GossipNode::on_read)).

use achilles_solver::Width;
use achilles_symvm::{NodeProgram, PathResult, SymEnv, SymMessage};

use crate::engine::{GossipConfig, STATUS_TABLE_LEN};
use crate::protocol::{
    read_layout, seed_layout, sync_layout, MAX_VERSION, N_KEYS, READ_KIND, SEED_KIND, STATUS_UP,
    SYNC_KIND,
};

/// A correct peer pushing one observed state record.
#[derive(Clone, Copy, Debug, Default)]
pub struct PeerSeedProgram;

impl NodeProgram for PeerSeedProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        // Symbolic inputs, validated like the peer library validates them
        // before anything reaches the wire.
        let key = env.sym_in_range("key", Width::W8, 0, N_KEYS - 1)?;
        let version = env.sym_in_range("version", Width::W16, 0, MAX_VERSION - 1)?;
        let status = env.sym_in_range("status", Width::W8, 0, STATUS_UP)?;
        let kind = env.constant(SEED_KIND, Width::W8);
        env.send(SymMessage::new(
            seed_layout(),
            vec![kind, key, version, status],
        ));
        Ok(())
    }
}

/// A correct peer requesting an anti-entropy round for one key.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncClientProgram;

impl NodeProgram for SyncClientProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let key = env.sym_in_range("key", Width::W8, 0, N_KEYS - 1)?;
        let kind = env.constant(SYNC_KIND, Width::W8);
        env.send(SymMessage::new(sync_layout(), vec![kind, key]));
        Ok(())
    }
}

/// A correct peer asking the node to resolve one key's status.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadClientProgram;

impl NodeProgram for ReadClientProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let key = env.sym_in_range("key", Width::W8, 0, N_KEYS - 1)?;
        let kind = env.constant(READ_KIND, Width::W8);
        env.send(SymMessage::new(read_layout(), vec![kind, key]));
        Ok(())
    }
}

/// The node's inbound `SEED` (ingest) handler as a node program.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestProgram {
    /// Patch toggle mirrored from the concrete build.
    pub config: GossipConfig,
}

impl NodeProgram for IngestProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&seed_layout())?;
        let seed_kind = env.constant(SEED_KIND, Width::W8);
        if !env.if_eq(msg.field("kind"), seed_kind)? {
            return Ok(()); // not a seed: ignored
        }
        let n_keys = env.constant(N_KEYS, Width::W8);
        if !env.if_ult(msg.field("key"), n_keys)? {
            return Ok(()); // unknown key: rejected
        }
        let max_version = env.constant(MAX_VERSION, Width::W16);
        if !env.if_ult(msg.field("version"), max_version)? {
            return Ok(()); // out-of-range version: rejected
        }
        if self.config.validate_status_domain {
            let table_len = env.constant(u64::from(STATUS_TABLE_LEN), Width::W8);
            if !env.if_ult(msg.field("status"), table_len)? {
                return Ok(()); // patched build: out-of-domain status rejected
            }
        }
        // Security vulnerability (unpatched build): the status byte flows
        // unvalidated into the store and the read-time table lookup.
        env.note("records[msg.key] = {msg.version, msg.status}; status_table[msg.status] at read");
        env.mark_accept();
        Ok(())
    }
}

/// The node's seed→sync→read session handler: one activation ingests a
/// record, propagates it on a peer's `SYNC`, and resolves it on a peer's
/// `READ` — the cross-message state single-message analysis cannot track,
/// and the 3-slot shape the `SessionSpec` machinery had not exercised
/// before this crate.
///
/// The status byte (slot 0) is not domain-checked by the vulnerable
/// build; it rides through the `SYNC` propagation untouched and indexes
/// the status table only when the `READ` resolves the record — so the
/// session is Trojan through slot 0 alone, and the poison detonates two
/// messages after it arrived (see
/// [`GossipNode::on_read`](crate::GossipNode::on_read)).
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionGossipProgram {
    /// Patch toggle mirrored from the concrete build.
    pub config: GossipConfig,
}

impl NodeProgram for SessionGossipProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        // Slot 0: the seed (same validation as the single-message ingest —
        // kind, key, version, and in the patched build only, the status
        // domain).
        let seed = env.recv(&seed_layout())?;
        let seed_kind = env.constant(SEED_KIND, Width::W8);
        if !env.if_eq(seed.field("kind"), seed_kind)? {
            return Ok(());
        }
        let n_keys = env.constant(N_KEYS, Width::W8);
        if !env.if_ult(seed.field("key"), n_keys)? {
            return Ok(());
        }
        let max_version = env.constant(MAX_VERSION, Width::W16);
        if !env.if_ult(seed.field("version"), max_version)? {
            return Ok(());
        }
        if self.config.validate_status_domain {
            let table_len = env.constant(u64::from(STATUS_TABLE_LEN), Width::W8);
            if !env.if_ult(seed.field("status"), table_len)? {
                return Ok(());
            }
        }

        // Slot 1: the anti-entropy round, tied to the seeded key — the
        // propagation step that spreads the record (corruption included)
        // cluster-wide.
        let sync = env.recv(&sync_layout())?;
        let sync_kind = env.constant(SYNC_KIND, Width::W8);
        if !env.if_eq(sync.field("kind"), sync_kind)? {
            return Ok(());
        }
        if !env.if_eq(sync.field("key"), seed.field("key"))? {
            return Ok(()); // a sync for some other key: not this session
        }

        // Slot 2: the status resolution for the same key.
        let read = env.recv(&read_layout())?;
        let read_kind = env.constant(READ_KIND, Width::W8);
        if !env.if_eq(read.field("kind"), read_kind)? {
            return Ok(());
        }
        if !env.if_eq(read.field("key"), seed.field("key"))? {
            return Ok(()); // a read of some other key: not this session
        }
        // Security vulnerability (unpatched build): the stored status byte
        // indexes the two-entry status table here, two messages after it
        // was accepted.
        env.note("status_table[records[read.key].status]");
        env.mark_accept();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::{Solver, TermPool};
    use achilles_symvm::{Executor, ExploreConfig, Verdict};

    #[test]
    fn peer_has_one_validated_send_path() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&PeerSeedProgram);
        let senders: Vec<_> = result.paths.iter().filter(|p| !p.sent.is_empty()).collect();
        assert_eq!(senders.len(), 1);
    }

    #[test]
    fn ingest_has_one_accepting_path_per_build() {
        for (patched, expect_depth) in [(false, 3), (true, 4)] {
            let mut pool = TermPool::new();
            let mut solver = Solver::new();
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            let program = IngestProgram {
                config: GossipConfig {
                    validate_status_domain: patched,
                },
            };
            let result = exec.explore(&program);
            let accepting: Vec<_> = result
                .paths
                .iter()
                .filter(|p| p.verdict == Verdict::Accept)
                .collect();
            assert_eq!(accepting.len(), 1);
            assert_eq!(accepting[0].decisions.len(), expect_depth);
        }
    }
}
