//! The gossip [`TargetSpec`] and concrete deployment targets.
//!
//! Everything — symbolic programs, the concrete node, replay targets,
//! spec — lives in this crate, and the protocol joins discovery,
//! validation, fault-schedule sweeps, conformance testing, and the bench
//! bins through one registry registration, with zero changes to
//! `achilles-core`, `achilles-replay`, `achilles-sweep`, or any driver.

use std::sync::Arc;

use achilles::{
    AchillesConfig, Delivery, InjectionOutcome, ReplayTarget, SessionSlot, SessionSpec,
    SnapshotReplayTarget, TargetSnapshot, TargetSpec, TrojanReport,
};
use achilles_symvm::{MessageLayout, NodeProgram};

use crate::engine::{GossipConfig, GossipNode, Resolution, STATUS_TABLE_LEN};
use crate::programs::{
    IngestProgram, PeerSeedProgram, ReadClientProgram, SessionGossipProgram, SyncClientProgram,
};
use crate::protocol::{
    read_layout, seed_layout, sync_layout, GossipRequest, GossipSeed, MAX_VERSION, N_KEYS,
    READ_KIND, SEED_KIND, SYNC_KIND,
};

fn seed_generable(fields: &[u64]) -> bool {
    let [kind, key, version, status] = fields else {
        return false;
    };
    *kind == SEED_KIND
        && *key < N_KEYS
        && *version < MAX_VERSION
        && *status < u64::from(STATUS_TABLE_LEN)
}

fn request_generable(kind_expected: u64, fields: &[u64]) -> bool {
    let [kind, key] = fields else {
        return false;
    };
    *kind == kind_expected && *key < N_KEYS
}

/// Folds one accepted seed's store-level observations into effect notes.
fn seed_effects(node: &GossipNode, key: u8, outcome: &mut InjectionOutcome) {
    outcome.effects.push("seed:stored".to_string());
    if node.record_poisoned(key) {
        // The structural family marker: the store now holds a status byte
        // the table cannot resolve.
        outcome.effects.push("family:status-domain".to_string());
    }
}

/// The single-message gossip deployment target: a fresh node ingesting
/// `SEED`s; after the delivery plan, the witness's key is resolved once —
/// the read any real cluster eventually performs — so a poisoned store
/// detonates concretely within the injection.
#[derive(Clone, Copy, Debug, Default)]
pub struct GossipTarget {
    /// Node build (patch toggle must match the analyzed server).
    pub config: GossipConfig,
}

impl GossipTarget {
    /// A target over the given node build.
    pub fn new(config: GossipConfig) -> GossipTarget {
        GossipTarget { config }
    }
}

impl ReplayTarget for GossipTarget {
    fn name(&self) -> &'static str {
        "gossip"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        seed_layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        GossipSeed::correct(0, 0, true).field_values()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        seed_generable(fields)
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut session = GossipForkSession::boot(self.config);
        let mut outcome = InjectionOutcome::default();
        for delivery in deliveries {
            session.deliver(delivery, &mut outcome);
        }
        session.finish(&mut outcome);
        outcome
    }

    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        Some(Box::new(GossipForkSession::boot(self.config)))
    }
}

/// The incremental deployment behind [`GossipTarget`]: one live node plus
/// the tracked witness key. `inject` is a boot → deliver-each → finish
/// loop over this struct, so fork-server replay is equivalent to
/// cold-boot by construction.
struct GossipForkSession {
    node: GossipNode,
    witness_key: Option<u8>,
}

impl GossipForkSession {
    fn boot(config: GossipConfig) -> GossipForkSession {
        GossipForkSession {
            node: GossipNode::new(config),
            witness_key: None,
        }
    }
}

impl SnapshotReplayTarget for GossipForkSession {
    fn deliver(&mut self, delivery: &Delivery, outcome: &mut InjectionOutcome) {
        let (wire, is_witness) = delivery;
        let Ok(seed) = GossipSeed::from_wire(wire) else {
            outcome.accepted_each.push(false);
            outcome.effects.push("malformed".to_string());
            return;
        };
        if u64::from(seed.kind) != SEED_KIND {
            outcome.accepted_each.push(false);
            outcome.effects.push("ignored:not-seed".to_string());
            return;
        }
        let crashed_before = self.node.crashed();
        let accepted = self.node.on_seed(seed.key, seed.version, seed.status);
        outcome.accepted_each.push(accepted);
        if !accepted {
            outcome.effects.push(if crashed_before {
                "rejected:node-wedged".to_string()
            } else {
                "rejected:ingest".to_string()
            });
            return;
        }
        if *is_witness {
            self.witness_key = Some(seed.key);
        }
        seed_effects(&self.node, seed.key, outcome);
    }

    fn snapshot(&self) -> TargetSnapshot {
        TargetSnapshot::of((self.node.clone(), self.witness_key))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) {
        let (node, witness_key) = snapshot
            .get::<(GossipNode, Option<u8>)>()
            .expect("a gossip fork session restores gossip snapshots");
        self.node = node.clone();
        self.witness_key = *witness_key;
    }

    fn finish(&mut self, outcome: &mut InjectionOutcome) {
        if let Some(key) = self.witness_key {
            // The read a real cluster eventually performs on every record.
            match self.node.resolve(key) {
                Resolution::Miss => outcome.effects.push("resolve:miss".to_string()),
                Resolution::Status(true) => outcome.effects.push("resolve:up".to_string()),
                Resolution::Status(false) => outcome.effects.push("resolve:down".to_string()),
                Resolution::TableOverrun => {
                    self.node.on_read(key);
                    outcome.effects.push("crash:status-table-oob".to_string());
                }
            }
        }
    }
}

/// The gossip session deployment: a *fresh* node processing a `SEED`, a
/// `SYNC`, and a `READ` in one session — the stateful scenario where an
/// out-of-domain status byte is stored without incident, spread
/// cluster-wide by the anti-entropy round, and detonates only when the
/// read walks the status table two messages later.
///
/// Deliveries are parsed by their kind byte (all three wire formats share
/// the kind-first framing).
#[derive(Clone, Copy, Debug, Default)]
pub struct GossipSessionTarget {
    /// Node build (patch toggle must match the analyzed server).
    pub config: GossipConfig,
}

impl GossipSessionTarget {
    /// A session target over the given node build.
    pub fn new(config: GossipConfig) -> GossipSessionTarget {
        GossipSessionTarget { config }
    }
}

impl ReplayTarget for GossipSessionTarget {
    fn name(&self) -> &'static str {
        "gossip"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        seed_layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        // Version 0, so a benign interleaved seed never outranks (and so
        // never masks) the witness record that follows it.
        GossipSeed::correct(0, 0, true).field_values()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        seed_generable(fields)
    }

    fn slot_layouts(&self) -> Vec<Arc<MessageLayout>> {
        vec![seed_layout(), sync_layout(), read_layout()]
    }

    fn slot_benign_fields(&self, slot: usize) -> Vec<u64> {
        match slot {
            0 => GossipSeed::correct(0, 0, true).field_values(),
            1 => GossipRequest::sync(0).field_values(),
            _ => GossipRequest::read(0).field_values(),
        }
    }

    fn slot_generable(&self, slot: usize, fields: &[u64]) -> bool {
        match slot {
            0 => seed_generable(fields),
            1 => request_generable(SYNC_KIND, fields),
            _ => request_generable(READ_KIND, fields),
        }
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut session = GossipSessionForkSession::boot(self.config);
        let mut outcome = InjectionOutcome::default();
        for delivery in deliveries {
            session.deliver(delivery, &mut outcome);
        }
        session.finish(&mut outcome);
        outcome
    }

    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        Some(Box::new(GossipSessionForkSession::boot(self.config)))
    }
}

/// The incremental deployment behind [`GossipSessionTarget`]: one live
/// node dispatching on the kind byte. No end-of-plan step — the session's
/// read slot is the detonation point.
struct GossipSessionForkSession {
    node: GossipNode,
}

impl GossipSessionForkSession {
    fn boot(config: GossipConfig) -> GossipSessionForkSession {
        GossipSessionForkSession {
            node: GossipNode::new(config),
        }
    }
}

impl SnapshotReplayTarget for GossipSessionForkSession {
    fn deliver(&mut self, delivery: &Delivery, outcome: &mut InjectionOutcome) {
        let (wire, _) = delivery;
        let node = &mut self.node;
        let crashed_before = node.crashed();
        match wire.first().map(|&k| u64::from(k)) {
            Some(SEED_KIND) => {
                let Ok(seed) = GossipSeed::from_wire(wire) else {
                    outcome.accepted_each.push(false);
                    outcome.effects.push("malformed".to_string());
                    return;
                };
                let accepted = node.on_seed(seed.key, seed.version, seed.status);
                outcome.accepted_each.push(accepted);
                if !accepted {
                    outcome.effects.push(if crashed_before {
                        "rejected:node-wedged".to_string()
                    } else {
                        "rejected:ingest".to_string()
                    });
                    return;
                }
                seed_effects(node, seed.key, outcome);
            }
            Some(SYNC_KIND) => {
                let Ok(sync) = GossipRequest::from_wire(wire) else {
                    outcome.accepted_each.push(false);
                    outcome.effects.push("malformed".to_string());
                    return;
                };
                let accepted = node.on_sync(sync.key);
                outcome.accepted_each.push(accepted);
                if !accepted {
                    outcome.effects.push(if crashed_before {
                        "rejected:node-wedged".to_string()
                    } else {
                        "rejected:sync".to_string()
                    });
                    return;
                }
                if node.propagated(sync.key) {
                    // The anti-entropy round forwards the record —
                    // corruption included — to every peer.
                    outcome.effects.push("gossip:propagated".to_string());
                    if node.record_poisoned(sync.key) {
                        outcome.effects.push("gossip:poison-spread".to_string());
                    }
                } else {
                    outcome.effects.push("sync:miss".to_string());
                }
            }
            Some(READ_KIND) => {
                let Ok(read) = GossipRequest::from_wire(wire) else {
                    outcome.accepted_each.push(false);
                    outcome.effects.push("malformed".to_string());
                    return;
                };
                let accepted = node.on_read(read.key);
                outcome.accepted_each.push(accepted);
                if !accepted {
                    outcome.effects.push(if crashed_before {
                        "rejected:node-wedged".to_string()
                    } else {
                        "rejected:read".to_string()
                    });
                    return;
                }
                if node.crashed() && !crashed_before {
                    // The implicit interaction: the crash was armed by
                    // a seed accepted two messages earlier.
                    outcome.effects.push("crash:status-table-oob".to_string());
                } else {
                    match node.resolve(read.key) {
                        Resolution::Miss => outcome.effects.push("read:miss".to_string()),
                        Resolution::Status(true) => {
                            outcome.effects.push("read:up".to_string());
                        }
                        Resolution::Status(false) => {
                            outcome.effects.push("read:down".to_string());
                        }
                        Resolution::TableOverrun => unreachable!("overrun crashes the node"),
                    }
                }
            }
            _ => {
                outcome.accepted_each.push(false);
                outcome.effects.push("ignored:unknown-kind".to_string());
            }
        }
    }

    fn snapshot(&self) -> TargetSnapshot {
        TargetSnapshot::of(self.node.clone())
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) {
        self.node = snapshot
            .get::<GossipNode>()
            .expect("a gossip session restores gossip snapshots")
            .clone();
    }

    fn finish(&mut self, _outcome: &mut InjectionOutcome) {}
}

/// The gossip/anti-entropy protocol as a [`TargetSpec`].
#[derive(Clone, Copy, Debug, Default)]
pub struct GossipSpec {
    /// The node build under analysis (and replay).
    pub config: GossipConfig,
}

impl GossipSpec {
    /// A spec over the given node build.
    pub fn new(config: GossipConfig) -> GossipSpec {
        GossipSpec { config }
    }

    /// The patched build (status domain validated at ingest): expects zero
    /// Trojans.
    pub fn patched() -> GossipSpec {
        GossipSpec::new(GossipConfig {
            validate_status_domain: true,
        })
    }
}

impl TargetSpec for GossipSpec {
    fn name(&self) -> &'static str {
        "gossip"
    }

    fn description(&self) -> &'static str {
        "gossip/anti-entropy store: unvalidated status byte spreads cluster-wide, crashes at read"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        seed_layout()
    }

    fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        vec![Box::new(PeerSeedProgram)]
    }

    fn server(&self) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(IngestProgram {
            config: self.config,
        })
    }

    fn analysis_config(&self) -> AchillesConfig {
        AchillesConfig::verified()
    }

    fn expected_trojans(&self) -> Option<usize> {
        // One accepting ingest path; the patched build closes it.
        if self.config.validate_status_domain {
            Some(0)
        } else {
            Some(1)
        }
    }

    fn classify(&self, report: &TrojanReport) -> String {
        let seed = GossipSeed::from_field_values(&report.witness_fields);
        if seed.status >= STATUS_TABLE_LEN {
            "status-domain".to_string()
        } else {
            "other".to_string()
        }
    }

    fn replay_target(&self) -> Box<dyn ReplayTarget> {
        Box::new(GossipTarget::new(self.config))
    }

    fn sessions(&self) -> Vec<SessionSpec> {
        vec![SessionSpec::new(
            "seed-sync-read",
            vec![
                SessionSlot::new("seed", seed_layout(), vec![0]),
                SessionSlot::new("sync", sync_layout(), vec![1]),
                SessionSlot::new("read", read_layout(), vec![2]),
            ],
        )
        // One accepting session path; only the seed slot hosts a window,
        // and the patched build closes it.
        .expecting(if self.config.validate_status_domain {
            0
        } else {
            1
        })]
    }

    fn session_clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        vec![
            Box::new(PeerSeedProgram),
            Box::new(SyncClientProgram),
            Box::new(ReadClientProgram),
        ]
    }

    fn session_server(&self, _name: &str) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(SessionGossipProgram {
            config: self.config,
        })
    }

    fn session_replay_target(&self, _name: &str) -> Box<dyn ReplayTarget> {
        Box::new(GossipSessionTarget::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles::AchillesSession;

    #[test]
    fn session_discovers_the_status_domain_trojan() {
        let spec = GossipSpec::default();
        let report = AchillesSession::new(&spec).run();
        assert_eq!(Some(report.trojans.len()), spec.expected_trojans());
        let t = &report.trojans[0];
        assert!(t.verified, "witness re-verified against the peer library");
        let seed = GossipSeed::from_field_values(&t.witness_fields);
        assert_eq!(u64::from(seed.kind), SEED_KIND);
        assert!(u64::from(seed.key) < N_KEYS);
        assert!(u64::from(seed.version) < MAX_VERSION);
        assert!(
            seed.status >= STATUS_TABLE_LEN,
            "the only un-generable accepted field is an out-of-domain status: {seed:?}"
        );
        assert_eq!(spec.classify(t), "status-domain");
    }

    #[test]
    fn patched_build_is_trojan_free() {
        let spec = GossipSpec::patched();
        let report = AchillesSession::new(&spec).run();
        assert_eq!(report.trojans.len(), 0, "the domain check closes the bug");
        let sessions = AchillesSession::new(&spec).run_sessions();
        assert_eq!(sessions[0].trojans.len(), 0);
    }

    #[test]
    fn declared_session_finds_the_three_slot_trojan_with_slot_attribution() {
        let spec = GossipSpec::default();
        let mut session = AchillesSession::new(&spec);
        let reports = session.run_sessions();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.session, "seed-sync-read");
        assert_eq!(r.slot_names, vec!["seed", "sync", "read"]);
        assert_eq!(Some(r.trojans.len()), r.expected_trojans);
        assert_eq!(
            r.trojan_slots[0],
            vec![0],
            "only the seed slot hosts the Trojan"
        );
        let parts = r.split_fields(&r.trojans[0].witness_fields);
        let seed = GossipSeed::from_field_values(&parts[0]);
        let sync = GossipRequest::from_field_values(&parts[1]);
        let read = GossipRequest::from_field_values(&parts[2]);
        assert!(seed.status >= STATUS_TABLE_LEN, "forged status byte");
        assert_eq!(sync.key, seed.key, "the sync spreads the poisoned key");
        assert_eq!(read.key, seed.key, "the read resolves the poisoned key");
    }

    #[test]
    fn session_poison_detonates_at_read_time() {
        // The implicit interaction, concretely: the poisoned seed is
        // accepted without incident, the sync spreads it cluster-wide, and
        // the node only crashes when the read walks the status table.
        let target = GossipSessionTarget::default();
        let seed = GossipSeed {
            kind: SEED_KIND as u8,
            key: 2,
            version: 3,
            status: 0x77,
        };
        let outcome = target.inject(&[
            (seed.to_wire(), true),
            (GossipRequest::sync(2).to_wire(), true),
            (GossipRequest::read(2).to_wire(), true),
        ]);
        assert_eq!(outcome.accepted_each, vec![true, true, true]);
        assert!(outcome
            .effects
            .contains(&"gossip:poison-spread".to_string()));
        assert!(outcome
            .effects
            .contains(&"crash:status-table-oob".to_string()));
        assert!(!target.slot_generable(0, &seed.field_values()));
        assert!(target.slot_generable(1, &GossipRequest::sync(2).field_values()));
        assert!(target.slot_generable(2, &GossipRequest::read(2).field_values()));

        // A fully benign session resolves cleanly.
        let benign = GossipSeed::correct(2, 3, true);
        let outcome = target.inject(&[
            (benign.to_wire(), true),
            (GossipRequest::sync(2).to_wire(), true),
            (GossipRequest::read(2).to_wire(), true),
        ]);
        assert_eq!(outcome.accepted_each, vec![true, true, true]);
        assert!(!outcome.effects.iter().any(|e| e.starts_with("crash:")));
        assert!(outcome.effects.contains(&"read:up".to_string()));
    }

    #[test]
    fn single_message_target_confirms_and_crashes_on_the_witness() {
        let target = GossipTarget::default();
        let trojan = GossipSeed {
            kind: SEED_KIND as u8,
            key: 1,
            version: 2,
            status: 0x40,
        };
        let outcome = target.inject(&[(trojan.to_wire(), true)]);
        assert_eq!(outcome.accepted_each, vec![true]);
        assert!(outcome
            .effects
            .contains(&"crash:status-table-oob".to_string()));
        assert!(outcome
            .effects
            .contains(&"family:status-domain".to_string()));
        assert!(!target.client_generable(&trojan.field_values()));

        // A benign seed resolves cleanly.
        let benign = GossipSeed::correct(1, 2, false);
        let outcome = target.inject(&[(benign.to_wire(), true)]);
        assert_eq!(outcome.accepted_each, vec![true]);
        assert!(outcome.effects.contains(&"resolve:down".to_string()));
        assert!(target.client_generable(&benign.field_values()));
    }

    #[test]
    fn discovery_is_worker_count_invariant() {
        let spec = GossipSpec::default();
        let seq = AchillesSession::new(&spec).run();
        let par = AchillesSession::new(&spec).workers(4).run();
        assert_eq!(
            seq.trojans
                .iter()
                .map(|t| t.witness_fields.clone())
                .collect::<Vec<_>>(),
            par.trojans
                .iter()
                .map(|t| t.witness_fields.clone())
                .collect::<Vec<_>>()
        );
        assert_eq!(seq.server_paths, par.server_paths);
    }
}
