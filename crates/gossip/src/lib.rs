//! # achilles-gossip — a gossip/anti-entropy store under Achilles
//!
//! A bounded gossip node with a **status-domain Trojan** in the exact
//! shape of the 2008 S3 outage the paper opens with: peers validate the
//! status byte of every state record they seed, but the node's ingest
//! validation checks only the kind, key, and version. A record with
//! `status ∉ {0, 1}` is therefore stored verbatim, **propagated
//! cluster-wide** by the anti-entropy `SYNC` round (which forwards records
//! corruption-included), and detonates only when a `READ` resolves it
//! through the two-entry status table — two messages after the poison
//! arrived (the implicit-interaction shape of arXiv:2006.06045).
//!
//! The crate exists for two reasons:
//!
//! * it is the proving ground for `achilles-sweep`'s fault-schedule
//!   campaigns — its session Trojan is inherently *schedule-sensitive*
//!   (dropping the seed disarms it, duplicating the seed keeps it armed,
//!   a bit flip can re-arm it differently), which is what a sensitivity
//!   matrix makes measurable;
//! * its declared `seed-sync-read` session is the first **3-slot**
//!   session in the repository, exercising the session machinery beyond
//!   the 2-slot protocols.
//!
//! Like `achilles-twopc`, the protocol joins every registry-driven driver
//! through a single `registry.register(Arc::new(GossipSpec::default()))`
//! call, with zero changes to `achilles-core`, `achilles-replay`,
//! `achilles-sweep`, or the bench bins.
//!
//! ```
//! use achilles::AchillesSession;
//! use achilles_gossip::{GossipSeed, GossipSpec, STATUS_TABLE_LEN};
//!
//! let spec = GossipSpec::default();
//! let report = AchillesSession::new(&spec).run();
//! assert_eq!(report.trojans.len(), 1);
//! let seed = GossipSeed::from_field_values(&report.trojans[0].witness_fields);
//! assert!(seed.status >= STATUS_TABLE_LEN, "an out-of-domain status byte");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod programs;
pub mod protocol;
pub mod target;

pub use engine::{GossipConfig, GossipNode, GossipRecord, Resolution, STATUS_TABLE_LEN};
pub use programs::{
    IngestProgram, PeerSeedProgram, ReadClientProgram, SessionGossipProgram, SyncClientProgram,
};
pub use protocol::{
    read_layout, seed_layout, sync_layout, GossipRequest, GossipSeed, MAX_VERSION, N_KEYS, N_PEERS,
    READ_KIND, SEED_KIND, STATUS_DOWN, STATUS_UP, SYNC_KIND,
};
pub use target::{GossipSessionTarget, GossipSpec, GossipTarget};
