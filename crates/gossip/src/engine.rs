//! The concrete gossip node: a versioned state table with the crashable
//! status-resolution logic the symbolic model abstracts.
//!
//! The node mirrors the failure shape of the 2008 S3 outage the paper
//! opens with: a state record whose status byte is outside the legal
//! domain is **accepted by ingest validation** (which checks the key and
//! version but not the status), **propagated cluster-wide** by the
//! anti-entropy machinery (which forwards records verbatim — corruption
//! included), and only **detonates at read time**, when the status byte
//! indexes the two-entry status table ([`GossipNode::on_read`]). That
//! timing is the implicit interaction: the poison arrives in one message,
//! spreads in another, and crashes on a third.

use crate::protocol::{MAX_VERSION, N_KEYS, STATUS_DOWN};

/// Size of the status table (one slot per legal status value).
pub const STATUS_TABLE_LEN: u8 = 2;

/// Node configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GossipConfig {
    /// Patch for the status-domain bug: reject seeds whose status is
    /// outside `{0, 1}` at ingest time, before they reach the store.
    pub validate_status_domain: bool,
}

/// One stored state record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GossipRecord {
    /// Record version (last-writer-wins).
    pub version: u16,
    /// The raw status byte, exactly as it arrived.
    pub status: u8,
}

/// What resolving a key's status produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// No record stored for the key.
    Miss,
    /// The status table resolved the record (`true` = up).
    Status(bool),
    /// The status byte indexed past the table: the node crashed.
    TableOverrun,
}

/// A deterministic gossip node tracking [`N_KEYS`] state records.
#[derive(Clone, Debug)]
pub struct GossipNode {
    config: GossipConfig,
    records: Vec<Option<GossipRecord>>,
    propagated: Vec<bool>,
    crashed: bool,
}

impl GossipNode {
    /// A fresh node with an empty state table.
    pub fn new(config: GossipConfig) -> GossipNode {
        GossipNode {
            config,
            records: vec![None; N_KEYS as usize],
            propagated: vec![false; N_KEYS as usize],
            crashed: false,
        }
    }

    /// Whether the status-resolution logic has crashed (table overrun).
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The stored record for `key`, if any.
    pub fn record(&self, key: u8) -> Option<GossipRecord> {
        self.records.get(key as usize).copied().flatten()
    }

    /// Whether `key`'s stored record would overrun the status table.
    pub fn record_poisoned(&self, key: u8) -> bool {
        self.record(key)
            .is_some_and(|r| r.status >= STATUS_TABLE_LEN)
    }

    /// Whether a `SYNC` round has propagated `key`'s record to the peers.
    pub fn propagated(&self, key: u8) -> bool {
        self.propagated.get(key as usize).copied().unwrap_or(false)
    }

    /// Handles one inbound `SEED`; returns whether the node accepted
    /// (validated and stored) it. Records are last-writer-wins: a seed
    /// whose version is below the stored one is rejected as stale.
    ///
    /// A crashed node accepts nothing — the wedge is sticky.
    pub fn on_seed(&mut self, key: u8, version: u16, status: u8) -> bool {
        if self.crashed {
            return false;
        }
        if u64::from(key) >= N_KEYS || u64::from(version) >= MAX_VERSION {
            return false;
        }
        if self.config.validate_status_domain && status >= STATUS_TABLE_LEN {
            return false;
        }
        // Security vulnerability (unpatched build): the status byte is
        // stored verbatim and only indexes `status_table[status]` at read
        // time — ingest never checks the domain.
        if let Some(existing) = self.records[key as usize] {
            if version < existing.version {
                return false; // stale: the stored record wins
            }
        }
        self.records[key as usize] = Some(GossipRecord { version, status });
        true
    }

    /// Handles one inbound `SYNC`: propagates `key`'s record (if any) to
    /// the cluster, verbatim — corruption included. Returns whether the
    /// node accepted the request.
    pub fn on_sync(&mut self, key: u8) -> bool {
        if self.crashed {
            return false;
        }
        if u64::from(key) >= N_KEYS {
            return false;
        }
        if self.records[key as usize].is_some() {
            self.propagated[key as usize] = true;
        }
        true
    }

    /// Handles one inbound `READ`: resolves `key`'s status through the
    /// two-entry status table. Returns whether the node accepted the
    /// request; resolving a poisoned record crashes the node *after*
    /// acceptance (the read was valid — the stored byte was not).
    pub fn on_read(&mut self, key: u8) -> bool {
        if self.crashed {
            return false;
        }
        if u64::from(key) >= N_KEYS {
            return false;
        }
        if self.resolve(key) == Resolution::TableOverrun {
            self.crashed = true;
        }
        true
    }

    /// Resolves `key`'s status through the table without mutating state.
    pub fn resolve(&self, key: u8) -> Resolution {
        match self.record(key) {
            None => Resolution::Miss,
            Some(r) if r.status >= STATUS_TABLE_LEN => Resolution::TableOverrun,
            Some(r) => Resolution::Status(u64::from(r.status) != STATUS_DOWN),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_sync_read_round_trip_with_legal_status() {
        let mut n = GossipNode::new(GossipConfig::default());
        assert!(n.on_seed(1, 3, 1));
        assert!(n.on_sync(1));
        assert!(n.propagated(1));
        assert!(n.on_read(1));
        assert!(!n.crashed());
        assert_eq!(n.resolve(1), Resolution::Status(true));
    }

    #[test]
    fn poisoned_status_is_accepted_propagated_and_detonates_at_read() {
        let mut n = GossipNode::new(GossipConfig::default());
        assert!(n.on_seed(2, 1, 0x77), "ingest misses the domain check");
        assert!(!n.crashed(), "the poison is stored silently");
        assert!(n.record_poisoned(2));
        assert!(n.on_sync(2), "anti-entropy forwards the record verbatim");
        assert!(n.propagated(2), "the corruption spread cluster-wide");
        assert!(n.on_read(2), "the read request itself is valid");
        assert!(n.crashed(), "status_table[0x77] indexed out of bounds");
        // The wedge is sticky: later legitimate traffic is lost.
        assert!(!n.on_seed(0, 1, 1));
        assert!(!n.on_read(0));
    }

    #[test]
    fn stale_versions_lose_to_the_stored_record() {
        let mut n = GossipNode::new(GossipConfig::default());
        assert!(n.on_seed(0, 5, 1));
        assert!(!n.on_seed(0, 4, 0), "stale");
        assert!(n.on_seed(0, 5, 0), "equal versions re-accept (idempotent)");
        assert_eq!(n.record(0).unwrap().status, 0);
    }

    #[test]
    fn patched_build_rejects_out_of_domain_status() {
        let mut n = GossipNode::new(GossipConfig {
            validate_status_domain: true,
        });
        assert!(!n.on_seed(2, 1, 0x77));
        assert!(n.on_seed(2, 1, 1), "legitimate seeds still flow");
        assert!(n.on_read(2));
        assert!(!n.crashed());
    }

    #[test]
    fn unknown_keys_and_versions_are_rejected() {
        let mut n = GossipNode::new(GossipConfig::default());
        assert!(!n.on_seed(N_KEYS as u8, 0, 1));
        assert!(!n.on_seed(0, MAX_VERSION as u16, 1));
        assert!(!n.on_sync(N_KEYS as u8));
        assert!(!n.on_read(N_KEYS as u8));
        assert_eq!(n.resolve(0), Resolution::Miss);
    }
}
