//! The bounded gossip/anti-entropy wire formats.
//!
//! The modeled cluster keeps a small replicated state table (key →
//! versioned status record) and reconciles it with three message kinds:
//!
//! * `SEED` — a peer pushes a state record it observed (`key`, `version`,
//!   `status`);
//! * `SYNC` — a peer asks the node to propagate its record for `key` to
//!   the rest of the cluster (the anti-entropy round);
//! * `READ` — a peer asks the node to resolve `key`'s status, which walks
//!   the two-entry status table.
//!
//! Correct peers validate the status byte to `{STATUS_DOWN, STATUS_UP}`
//! before seeding; the node's ingest validation does not (see
//! [`crate::engine`]), which is the Trojan window the whole crate exists
//! to model.

use std::sync::Arc;

use achilles::{fields_to_wire, wire_to_fields, WireError};
use achilles_solver::Width;
use achilles_symvm::MessageLayout;

/// `kind` value of `SEED` messages (a peer pushes a state record).
pub const SEED_KIND: u64 = 1;

/// `kind` value of `SYNC` messages (anti-entropy propagation request).
pub const SYNC_KIND: u64 = 2;

/// `kind` value of `READ` messages (status resolution request).
pub const READ_KIND: u64 = 3;

/// A record's "node is down" status.
pub const STATUS_DOWN: u64 = 0;

/// A record's "node is up" status.
pub const STATUS_UP: u64 = 1;

/// Keys the state table tracks (`key < N_KEYS`).
pub const N_KEYS: u64 = 4;

/// Record versions correct peers hand out (`version < MAX_VERSION`).
pub const MAX_VERSION: u64 = 8;

/// Peers a `SYNC` round propagates a record to (effect bookkeeping only).
pub const N_PEERS: u64 = 5;

/// The `SEED` message layout.
pub fn seed_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("gossip_seed")
        .field("kind", Width::W8)
        .field("key", Width::W8)
        .field("version", Width::W16)
        .field("status", Width::W8)
        .build()
}

/// The `SYNC` message layout (slot 1 of the seed→sync→read session).
pub fn sync_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("gossip_sync")
        .field("kind", Width::W8)
        .field("key", Width::W8)
        .build()
}

/// The `READ` message layout (slot 2 of the seed→sync→read session).
pub fn read_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("gossip_read")
        .field("kind", Width::W8)
        .field("key", Width::W8)
        .build()
}

/// One concrete `SEED` message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GossipSeed {
    /// Message kind ([`SEED_KIND`] for real seeds).
    pub kind: u8,
    /// State-table key.
    pub key: u8,
    /// Record version (last-writer-wins).
    pub version: u16,
    /// The status byte (correct peers send only 0 or 1).
    pub status: u8,
}

impl GossipSeed {
    /// A seed a correct peer would send.
    pub fn correct(key: u8, version: u16, up: bool) -> GossipSeed {
        GossipSeed {
            kind: SEED_KIND as u8,
            key,
            version,
            status: if up { STATUS_UP } else { STATUS_DOWN } as u8,
        }
    }

    /// Layout-ordered field values.
    pub fn field_values(&self) -> Vec<u64> {
        vec![
            u64::from(self.kind),
            u64::from(self.key),
            u64::from(self.version),
            u64::from(self.status),
        ]
    }

    /// Rebuilds a seed from layout-ordered field values (truncated to
    /// their wire widths, like the real parser would).
    pub fn from_field_values(fields: &[u64]) -> GossipSeed {
        GossipSeed {
            kind: fields.first().copied().unwrap_or(0) as u8,
            key: fields.get(1).copied().unwrap_or(0) as u8,
            version: fields.get(2).copied().unwrap_or(0) as u16,
            status: fields.get(3).copied().unwrap_or(0) as u8,
        }
    }

    /// Encodes to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        fields_to_wire(&seed_layout(), &self.field_values())
            .expect("the seed layout is byte-aligned")
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated buffers.
    pub fn from_wire(wire: &[u8]) -> Result<GossipSeed, WireError> {
        Ok(GossipSeed::from_field_values(&wire_to_fields(
            &seed_layout(),
            wire,
        )?))
    }
}

/// One concrete two-field request (`SYNC` or `READ` — the layouts share a
/// shape and differ only in the kind byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GossipRequest {
    /// Message kind ([`SYNC_KIND`] or [`READ_KIND`]).
    pub kind: u8,
    /// State-table key.
    pub key: u8,
}

impl GossipRequest {
    /// A propagation request a correct peer would send.
    pub fn sync(key: u8) -> GossipRequest {
        GossipRequest {
            kind: SYNC_KIND as u8,
            key,
        }
    }

    /// A status-resolution request a correct peer would send.
    pub fn read(key: u8) -> GossipRequest {
        GossipRequest {
            kind: READ_KIND as u8,
            key,
        }
    }

    /// Layout-ordered field values.
    pub fn field_values(&self) -> Vec<u64> {
        vec![u64::from(self.kind), u64::from(self.key)]
    }

    /// Rebuilds a request from layout-ordered field values.
    pub fn from_field_values(fields: &[u64]) -> GossipRequest {
        GossipRequest {
            kind: fields.first().copied().unwrap_or(0) as u8,
            key: fields.get(1).copied().unwrap_or(0) as u8,
        }
    }

    /// Encodes to wire bytes (the sync and read layouts pack identically).
    pub fn to_wire(&self) -> Vec<u8> {
        fields_to_wire(&sync_layout(), &self.field_values())
            .expect("the request layouts are byte-aligned")
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated buffers.
    pub fn from_wire(wire: &[u8]) -> Result<GossipRequest, WireError> {
        Ok(GossipRequest::from_field_values(&wire_to_fields(
            &sync_layout(),
            wire,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_wire_round_trip() {
        let s = GossipSeed::correct(3, 5, true);
        assert_eq!(GossipSeed::from_wire(&s.to_wire()).unwrap(), s);
        assert_eq!(s.to_wire(), vec![1, 3, 0, 5, 1]);
    }

    #[test]
    fn request_wire_round_trip() {
        let q = GossipRequest::sync(2);
        assert_eq!(GossipRequest::from_wire(&q.to_wire()).unwrap(), q);
        assert_eq!(q.to_wire(), vec![2, 2]);
        assert_eq!(GossipRequest::read(2).to_wire(), vec![3, 2]);
    }

    #[test]
    fn field_round_trip_truncates_to_wire_widths() {
        let s = GossipSeed {
            kind: 1,
            key: 2,
            version: 7,
            status: 0x77,
        };
        assert_eq!(GossipSeed::from_field_values(&s.field_values()), s);
    }
}
