//! # achilles-fuzz — the black-box fuzzing baseline (§6.2)
//!
//! A naive black-box fuzzer over the FSP message space, used for the
//! paper's theoretical and empirical comparison: the fuzzer draws random
//! values for the *relevant* bytes (`cmd`, `bb_len`, `buf` — the same
//! fields Achilles analyzes; everything else is held at valid constants,
//! matching "In order to be fair, we only fuzz the same message fields that
//! are analyzed"), classifies each message with the concrete oracles, and
//! reports throughput plus the analytic expectation of Trojan discoveries.
//!
//! ```
//! use achilles_fuzz::{run_campaign, FuzzConfig};
//!
//! let report = run_campaign(&FuzzConfig { budget_tests: 50_000, ..FuzzConfig::default() });
//! assert_eq!(report.tests_run, 50_000);
//! // Trojans are a ~1e-8 sliver of the space: a small campaign finds none.
//! assert_eq!(report.trojans_found, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::{Duration, Instant};

use achilles_fsp::{
    client_can_generate, fuzz_space_size, server_accepts, trojan_count_in_fuzz_space, FspMessage,
    FspServerConfig, MAX_PATH,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fuzzing campaign configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of random messages to try.
    pub budget_tests: u64,
    /// RNG seed (campaigns are reproducible).
    pub seed: u64,
    /// Server configuration the oracle mirrors.
    pub server: FspServerConfig,
    /// Whether client generability models glob expansion.
    pub glob_expansion: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            budget_tests: 1_000_000,
            seed: 0xF022_ED11,
            server: FspServerConfig::default(),
            glob_expansion: false,
        }
    }
}

/// Results of one fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Messages generated and classified.
    pub tests_run: u64,
    /// Messages the server accepted.
    pub accepted: u64,
    /// Accepted messages that are genuine Trojans.
    pub trojans_found: u64,
    /// Accepted messages a correct client could also send — for a tester
    /// hunting Trojans these are false positives to sift through.
    pub accepted_valid: u64,
    /// Wall-clock duration of the campaign.
    pub elapsed: Duration,
}

impl FuzzReport {
    /// Measured throughput in tests per minute (the paper measured 75,000
    /// on its 2013 testbed).
    pub fn tests_per_minute(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.tests_run as f64 / secs * 60.0
    }
}

/// Draws one random message over the relevant bytes, all other fields valid.
pub fn random_message(rng: &mut StdRng) -> FspMessage {
    let mut buf = [0u8; MAX_PATH];
    rng.fill(&mut buf[..]);
    FspMessage {
        cmd: rng.gen(),
        sum: 0,
        bb_key: 0,
        bb_seq: 0,
        bb_len: rng.gen(),
        bb_pos: 0,
        buf,
    }
}

/// Runs a fuzzing campaign.
pub fn run_campaign(config: &FuzzConfig) -> FuzzReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let started = Instant::now();
    let mut report = FuzzReport {
        tests_run: 0,
        accepted: 0,
        trojans_found: 0,
        accepted_valid: 0,
        elapsed: Duration::ZERO,
    };
    for _ in 0..config.budget_tests {
        let msg = random_message(&mut rng);
        report.tests_run += 1;
        if !server_accepts(&msg, &config.server) {
            continue;
        }
        report.accepted += 1;
        if client_can_generate(&msg, config.glob_expansion) {
            report.accepted_valid += 1;
        } else {
            report.trojans_found += 1;
        }
    }
    report.elapsed = started.elapsed();
    report
}

/// Runs an end-to-end fuzzing campaign against a *deployed* FSP server:
/// every test is encoded to wire bytes and processed by the stateful server
/// runtime (parse, validate, filesystem action, reply), which is what the
/// paper's 75,000 tests/minute measured. Classification still uses the
/// oracles so Trojan counting matches [`run_campaign`].
pub fn run_e2e_campaign(config: &FuzzConfig) -> FuzzReport {
    use achilles_fsp::FspServerRuntime;
    use achilles_netsim::{Addr, SimFs};

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut server = FspServerRuntime::new(Addr::new("fspd"), SimFs::new(), config.server.clone());
    let started = Instant::now();
    let mut report = FuzzReport {
        tests_run: 0,
        accepted: 0,
        trojans_found: 0,
        accepted_valid: 0,
        elapsed: Duration::ZERO,
    };
    for _ in 0..config.budget_tests {
        let msg = random_message(&mut rng);
        report.tests_run += 1;
        let wire = msg.to_wire();
        let accepted_by_runtime =
            server.handle(&wire).is_some() || server_accepts(&msg, &config.server);
        if !accepted_by_runtime {
            continue;
        }
        report.accepted += 1;
        if client_can_generate(&msg, config.glob_expansion) {
            report.accepted_valid += 1;
        } else {
            report.trojans_found += 1;
        }
    }
    report.elapsed = started.elapsed();
    report
}

/// The analytic §6.2 comparison: given a measured throughput, how many
/// Trojans does an hour of fuzzing find in expectation?
#[derive(Clone, Copy, Debug)]
pub struct FuzzExpectation {
    /// Trojan messages in the fuzzed space.
    pub trojan_count: u64,
    /// Size of the fuzzed space.
    pub space_size: f64,
    /// Probability a random test is Trojan.
    pub trojan_probability: f64,
    /// Expected Trojans found in one hour at the given throughput.
    pub expected_per_hour: f64,
    /// Expected *non-Trojan accepted* messages per hour (a tester's false
    /// positives; the paper computes 4.5 million).
    pub false_positives_per_hour: f64,
}

/// Computes the analytic expectation for our bounded message space.
pub fn expectation(tests_per_minute: f64, glob_expansion: bool) -> FuzzExpectation {
    let trojan_count = trojan_count_in_fuzz_space(glob_expansion);
    let space = fuzz_space_size();
    let p_trojan = trojan_count as f64 / space;
    let accepted = accepted_count_in_fuzz_space() as f64;
    let p_valid_accept = (accepted - trojan_count_in_fuzz_space(false) as f64) / space;
    let tests_per_hour = tests_per_minute * 60.0;
    FuzzExpectation {
        trojan_count,
        space_size: space,
        trojan_probability: p_trojan,
        expected_per_hour: tests_per_hour * p_trojan,
        false_positives_per_hour: tests_per_hour * p_valid_accept.max(0.0),
    }
}

/// Closed-form count of *accepted* messages in the fuzzed space (valid and
/// Trojan together).
pub fn accepted_count_in_fuzz_space() -> u64 {
    let printable = 94u64;
    let mut total = 0u64;
    for _cmd in achilles_fsp::Command::ANALYSIS_SET {
        for reported in 1..=MAX_PATH as u64 {
            // Exact-length: printable^reported, padding free.
            total +=
                printable.pow(reported as u32) * 256u64.pow((MAX_PATH as u64 - reported) as u32);
            // NUL at t: printable^t · 256^(MAX_PATH - t - 1).
            for t in 0..reported {
                total += printable.pow(t as u32) * 256u64.pow((MAX_PATH as u64 - t - 1) as u32);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_fsp::is_trojan;

    #[test]
    fn campaign_is_reproducible() {
        let config = FuzzConfig {
            budget_tests: 20_000,
            ..FuzzConfig::default()
        };
        let a = run_campaign(&config);
        let b = run_campaign(&config);
        assert_eq!(a.tests_run, b.tests_run);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.trojans_found, b.trojans_found);
    }

    #[test]
    fn acceptance_rate_matches_analytics() {
        // Fully random fuzzing accepts ~3e-7 of messages — far too rare to
        // Monte-Carlo. Bias the generator to valid (cmd, bb_len) and check
        // the *conditional* acceptance rate against the closed form:
        // P(accept | valid cmd, len) = Σ_L [Σ_{t<L} 94^t·256^{M-t-1}
        //                                   + 94^L·256^{M-L}] / (4·256^M).
        let mut rng = StdRng::seed_from_u64(42);
        let server = FspServerConfig::default();
        let n = 400_000u64;
        let mut accepted = 0u64;
        for _ in 0..n {
            let mut msg = random_message(&mut rng);
            msg.cmd = achilles_fsp::Command::ANALYSIS_SET[rng.gen_range(0..8usize)].code();
            msg.bb_len = rng.gen_range(1..=MAX_PATH as u16);
            if server_accepts(&msg, &server) {
                accepted += 1;
            }
        }
        let p_emp = accepted as f64 / n as f64;
        let conditional: f64 = (1..=MAX_PATH as u32)
            .map(|l| {
                let mismatched: u64 = (0..l)
                    .map(|t| 94u64.pow(t) * 256u64.pow(MAX_PATH as u32 - t - 1))
                    .sum();
                let exact = 94u64.pow(l) * 256u64.pow(MAX_PATH as u32 - l);
                (mismatched + exact) as f64 / 256f64.powi(MAX_PATH as i32)
            })
            .sum::<f64>()
            / MAX_PATH as f64;
        assert!(
            (p_emp - conditional).abs() < 0.01,
            "empirical {p_emp} vs analytic {conditional}"
        );
        // And the unconditional closed form is consistent with the
        // conditional one times the framing probability.
        let p_framing = (8.0 / 256.0) * (MAX_PATH as f64 / 65536.0);
        let p_total = accepted_count_in_fuzz_space() as f64 / fuzz_space_size();
        assert!((p_total - conditional * p_framing).abs() < 1e-12);
    }

    #[test]
    fn trojans_are_needles_in_haystacks() {
        let e = expectation(75_000.0, false);
        assert!(e.trojan_probability < 1e-6);
        assert!(
            e.expected_per_hour < 1.0,
            "under one Trojan per fuzzing hour"
        );
        assert!(e.false_positives_per_hour >= 0.0);
    }

    #[test]
    fn fuzzer_agrees_with_oracle_definitions() {
        let mut rng = StdRng::seed_from_u64(7);
        let server = FspServerConfig::default();
        for _ in 0..10_000 {
            let msg = random_message(&mut rng);
            let t = is_trojan(&msg, &server, false);
            let manual = server_accepts(&msg, &server) && !client_can_generate(&msg, false);
            assert_eq!(t, manual);
        }
    }
}
