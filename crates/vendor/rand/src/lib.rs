//! A tiny, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships the minimal API surface the Achilles crates actually
//! use: a seedable deterministic generator ([`rngs::StdRng`]) and the
//! [`Rng`]/[`SeedableRng`] traits with `gen`, `gen_range`, and `fill`.
//!
//! The generator is splitmix64 — statistically fine for fuzzing campaigns and
//! solver sampling, deterministic for a given seed, and obviously **not**
//! cryptographic (neither is the real `StdRng` contractually).

#![warn(missing_docs)]

/// Concrete generator types.
pub mod rngs {
    /// A deterministic 64-bit generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (public domain, Sebastiano Vigna).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be produced by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is irrelevant at the spans used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// The sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Draws one value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T;

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]);

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 11];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }
}
