//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment is offline, so this workspace vendors the subset of
//! proptest the Achilles test-suite uses: the [`Strategy`] trait with
//! `prop_map`/`prop_recursive`, [`any`], range and tuple strategies,
//! `prop::collection::vec`, `prop::array::uniform4`, `prop::bool::ANY`,
//! [`BoxedStrategy`], the `proptest!`/`prop_oneof!` macros, and the
//! `prop_assert*` assertion family.
//!
//! Differences from real proptest: cases are *generated only* — there is no
//! shrinking; a failing case panics with the generated arguments printed.
//! Generation is deterministic per test (the RNG is seeded from the test
//! name), so failures reproduce across runs.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic generator driving a test run (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// FNV-1a over a string — used to derive per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy built so far
    /// and returns a strategy one level deeper. `depth` bounds the nesting;
    /// `_size`/`_branch` are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            let deeper = f(cur.clone()).boxed();
            // Half leaves, half composites at every level so shallow values
            // keep appearing in the distribution.
            cur = union(vec![cur, deeper]);
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform choice among several strategies of the same value type.
pub fn union<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "union of zero strategies");
    BoxedStrategy {
        gen: Rc::new(move |rng| {
            let i = rng.below(options.len() as u64) as usize;
            options[i].generate(rng)
        }),
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

// ---------------------------------------------------------------------------
// prop:: modules
// ---------------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Acceptable length specifications for [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for vectors whose length is drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::*;

    /// Strategy for `[T; 4]`.
    #[derive(Clone, Debug)]
    pub struct Uniform4<S>(S);

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }

    /// Four values from the same strategy.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4(element)
    }
}

/// Boolean strategies.
pub mod bool {
    /// Any boolean.
    pub const ANY: super::Any<::core::primitive::bool> = super::Any(std::marker::PhantomData);
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*` inside a proptest body.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Supported form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u8..10, v in prop::collection::vec(any::<u8>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::seed_from_u64(
                        seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        let mut rendered = ::std::string::String::new();
                        $(
                            rendered.push_str(&::std::format!(
                                "  {} = {:?}\n", stringify!($arg), &$arg,
                            ));
                        )+
                        ::std::panic!(
                            "proptest case #{} of {} failed: {}\nwith arguments:\n{}",
                            case, stringify!($name), e, rendered,
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $fmt:literal $(, $args:expr)* $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($fmt $(, $args)*),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($a), ::std::stringify!($b), left, right,
            )));
        }
    }};
    ($a:expr, $b:expr, $fmt:literal $(, $args:expr)* $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                ::std::concat!($fmt, "\n  left: {:?}\n right: {:?}")
                $(, $args)*, left, right,
            )));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                ::std::stringify!($a),
                ::std::stringify!($b),
                left,
            )));
        }
    }};
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::array;
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..10, y in 5u16..=6, n in prop::collection::vec(any::<u8>(), 2..4)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y == 5 || y == 6);
            prop_assert!(n.len() == 2 || n.len() == 3);
        }

        #[test]
        fn tuples_and_arrays(t in (any::<bool>(), 0u8..4), a in prop::array::uniform4(any::<u8>())) {
            prop_assert!(t.1 < 4);
            prop_assert_eq!(a.len(), 4);
        }
    }

    #[test]
    fn oneof_and_recursive_generate() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)]
        enum T {
            Leaf(u8),
            Pair(Box<T>, Box<T>),
        }
        let leaf = (0u8..10).prop_map(T::Leaf);
        let tree = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::TestRng::seed_from_u64(1);
        let mut saw_pair = false;
        let mut saw_leaf = false;
        for _ in 0..64 {
            match tree.generate(&mut rng) {
                T::Leaf(_) => saw_leaf = true,
                T::Pair(..) => saw_pair = true,
            }
        }
        assert!(saw_leaf && saw_pair, "distribution covers both shapes");
    }

    #[test]
    fn determinism_per_seed() {
        let strat = prop::collection::vec(any::<u16>(), 1..8);
        let a: Vec<_> = {
            let mut rng = crate::TestRng::seed_from_u64(9);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::TestRng::seed_from_u64(9);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
