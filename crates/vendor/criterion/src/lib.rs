//! A tiny, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment is offline, so this workspace ships the minimal
//! benchmarking surface the Achilles benches use: `Criterion`,
//! `benchmark_group`/`bench_function`, `iter`/`iter_batched`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm up once, then time a fixed
//! batch of iterations and report mean wall-clock per iteration. It is good
//! enough to track relative regressions in CI logs; it does not do outlier
//! analysis or HTML reports like real criterion.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation (accepted, echoed in the log line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the closure of `bench_function`; runs the measured body.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    total: Duration,
}

impl Bencher {
    fn new(samples: u64) -> Bencher {
        Bencher {
            samples,
            total: Duration::ZERO,
        }
    }

    /// Times `body` over the configured number of iterations.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        black_box(body()); // warm-up
        let started = Instant::now();
        for _ in 0..self.samples {
            black_box(body());
        }
        self.total = started.elapsed();
    }

    /// Times `body` with a fresh `setup()` input per iteration; only the
    /// body is measured.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut body: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(body(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let started = Instant::now();
            black_box(body(input));
            total += started.elapsed();
        }
        self.total = total;
    }

    fn mean(&self) -> Duration {
        if self.samples == 0 {
            Duration::ZERO
        } else {
            self.total / self.samples as u32
        }
    }
}

const DEFAULT_SAMPLES: u64 = 20;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, None, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// A named group sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Annotates the group's throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.samples,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(name: &str, samples: u64, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    let mean = b.mean();
    let extra = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<50} {:>12.3?} /iter  [{samples} samples]{extra}",
        mean
    );
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| 5u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
