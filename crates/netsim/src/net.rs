//! An in-memory datagram network.
//!
//! Deterministic FIFO delivery between named endpoints, used by the concrete
//! deployment demos (FSP client/server exchanges, the PBFT cluster under the
//! MAC attack). This is the stand-in for the paper's UDP sockets and for the
//! shared-memory message rerouting Achilles uses inside S2E (§5.1).

use std::collections::{BTreeMap, VecDeque};

/// A network endpoint address.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub String);

impl Addr {
    /// Creates an address from a name.
    pub fn new(name: &str) -> Addr {
        Addr(name.to_string())
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One in-flight datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Datagram {
    /// Sender address.
    pub from: Addr,
    /// Destination address.
    pub to: Addr,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Counters for network activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams sent.
    pub sent: u64,
    /// Datagrams delivered to an inbox.
    pub delivered: u64,
    /// Datagrams dropped (no such endpoint).
    pub dropped: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Datagrams corrupted by fault injection.
    pub corrupted: u64,
}

/// Flips bit `bit` (0 = LSB of byte 0) of a payload, returning the
/// corrupted copy.
///
/// This is the paper's motivating fault: "a handful of messages … that had
/// a single bit corrupted" took down Amazon S3, and "a single bit flip can
/// convert the ASCII 'j' character into '*'" arms the FSP wildcard Trojan.
///
/// # Panics
///
/// Panics if `bit` is out of range for the payload.
///
/// # Examples
///
/// ```
/// use achilles_netsim::flip_bit;
///
/// // 'j' (0x6a) with bit 6 flipped is '*' (0x2a).
/// assert_eq!(flip_bit(b"j", 6), vec![b'*']);
/// ```
pub fn flip_bit(payload: &[u8], bit: usize) -> Vec<u8> {
    assert!(bit < payload.len() * 8, "bit {bit} out of range");
    let mut out = payload.to_vec();
    out[bit / 8] ^= 1 << (bit % 8);
    out
}

/// A deterministic in-memory datagram network.
///
/// # Examples
///
/// ```
/// use achilles_netsim::{Addr, Network};
///
/// let mut net = Network::new();
/// net.register(Addr::new("server"));
/// net.send(Addr::new("client"), Addr::new("server"), b"ping".to_vec());
/// let d = net.recv(&Addr::new("server")).unwrap();
/// assert_eq!(d.payload, b"ping");
/// assert_eq!(d.from, Addr::new("client"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Network {
    inboxes: BTreeMap<Addr, VecDeque<Datagram>>,
    stats: NetStats,
    log: Vec<Datagram>,
    keep_log: bool,
    corrupt_next: Option<usize>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// A network that retains a copy of every datagram for inspection.
    pub fn with_log() -> Network {
        Network {
            keep_log: true,
            ..Network::default()
        }
    }

    /// Registers an endpoint so it can receive datagrams.
    pub fn register(&mut self, addr: Addr) {
        self.inboxes.entry(addr).or_default();
    }

    /// Whether an endpoint is registered.
    pub fn is_registered(&self, addr: &Addr) -> bool {
        self.inboxes.contains_key(addr)
    }

    /// Arms single-bit corruption of the *next* sent datagram — the
    /// fault-injection hook for fire-drill style testing (§1: Google's
    /// intentional failures in live systems; the S3 bit flip).
    pub fn corrupt_next_send(&mut self, bit: usize) {
        self.corrupt_next = Some(bit);
    }

    /// Sends a datagram; undeliverable datagrams are counted and dropped
    /// (UDP semantics).
    pub fn send(&mut self, from: Addr, to: Addr, mut payload: Vec<u8>) {
        if let Some(bit) = self.corrupt_next.take() {
            if bit < payload.len() * 8 {
                payload = flip_bit(&payload, bit);
                self.stats.corrupted += 1;
            }
        }
        self.stats.sent += 1;
        self.stats.bytes += payload.len() as u64;
        let d = Datagram {
            from,
            to: to.clone(),
            payload,
        };
        if self.keep_log {
            self.log.push(d.clone());
        }
        match self.inboxes.get_mut(&to) {
            Some(q) => {
                q.push_back(d);
                self.stats.delivered += 1;
            }
            None => self.stats.dropped += 1,
        }
    }

    /// Receives the next datagram for `addr`, if any.
    pub fn recv(&mut self, addr: &Addr) -> Option<Datagram> {
        self.inboxes.get_mut(addr)?.pop_front()
    }

    /// Number of queued datagrams for `addr`.
    pub fn pending(&self, addr: &Addr) -> usize {
        self.inboxes.get(addr).map_or(0, VecDeque::len)
    }

    /// Network counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The datagram log (empty unless created via [`Network::with_log`]).
    pub fn log(&self) -> &[Datagram] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_delivery() {
        let mut net = Network::new();
        net.register(Addr::new("s"));
        net.send(Addr::new("c"), Addr::new("s"), vec![1]);
        net.send(Addr::new("c"), Addr::new("s"), vec![2]);
        assert_eq!(net.pending(&Addr::new("s")), 2);
        assert_eq!(net.recv(&Addr::new("s")).unwrap().payload, vec![1]);
        assert_eq!(net.recv(&Addr::new("s")).unwrap().payload, vec![2]);
        assert!(net.recv(&Addr::new("s")).is_none());
    }

    #[test]
    fn unregistered_destination_drops() {
        let mut net = Network::new();
        net.send(Addr::new("c"), Addr::new("ghost"), vec![0]);
        assert_eq!(net.stats().dropped, 1);
        assert_eq!(net.stats().sent, 1);
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn log_records_everything() {
        let mut net = Network::with_log();
        net.register(Addr::new("s"));
        net.send(Addr::new("a"), Addr::new("s"), vec![9]);
        net.send(Addr::new("b"), Addr::new("ghost"), vec![8]);
        assert_eq!(net.log().len(), 2);
        assert_eq!(net.log()[1].to, Addr::new("ghost"));
    }

    #[test]
    fn flip_bit_is_an_involution() {
        let payload = vec![0xAAu8, 0x55, 0x00];
        for bit in 0..24 {
            let once = flip_bit(&payload, bit);
            assert_ne!(once, payload);
            assert_eq!(flip_bit(&once, bit), payload);
        }
    }

    #[test]
    fn corrupt_next_send_flips_one_bit() {
        let mut net = Network::new();
        net.register(Addr::new("s"));
        net.corrupt_next_send(6); // 'j' -> '*'
        net.send(Addr::new("c"), Addr::new("s"), b"j".to_vec());
        assert_eq!(net.recv(&Addr::new("s")).unwrap().payload, b"*");
        assert_eq!(net.stats().corrupted, 1);
        // Only the armed datagram is corrupted.
        net.send(Addr::new("c"), Addr::new("s"), b"j".to_vec());
        assert_eq!(net.recv(&Addr::new("s")).unwrap().payload, b"j");
        assert_eq!(net.stats().corrupted, 1);
    }

    #[test]
    fn byte_accounting() {
        let mut net = Network::new();
        net.register(Addr::new("s"));
        net.send(Addr::new("c"), Addr::new("s"), vec![0; 10]);
        net.send(Addr::new("c"), Addr::new("s"), vec![0; 5]);
        assert_eq!(net.stats().bytes, 15);
    }
}
