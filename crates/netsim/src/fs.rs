//! A deterministic in-memory filesystem.
//!
//! This stands in for the FSP server's on-disk state: a tree of directories
//! and files addressed by `/`-separated paths. All operations are literal —
//! the filesystem itself knows nothing about wildcards. Glob semantics
//! (`*` matching, as UNIX shells and the FSP *client* implement them) live in
//! [`glob_match`] and [`SimFs::glob`], so tests can demonstrate precisely the
//! client/server asymmetry behind the FSP wildcard Trojan: the server treats
//! `*` as an ordinary character, clients expand it.

use std::collections::BTreeMap;

/// Errors returned by filesystem operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
    /// Path exists but has the wrong kind (file vs directory).
    NotADirectory(String),
    /// Path exists but has the wrong kind (directory vs file).
    IsADirectory(String),
    /// Target of a create already exists.
    AlreadyExists(String),
    /// Directory is not empty.
    NotEmpty(String),
    /// Path is syntactically invalid (empty component, etc.).
    InvalidPath(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// What a path names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A regular file.
    File,
    /// A directory.
    Dir,
}

#[derive(Clone, Debug)]
enum Node {
    File(Vec<u8>),
    Dir(BTreeMap<String, Node>),
}

/// A deterministic in-memory filesystem tree.
///
/// # Examples
///
/// ```
/// use achilles_netsim::SimFs;
///
/// let mut fs = SimFs::new();
/// fs.mkdir("/docs").unwrap();
/// fs.write("/docs/a.txt", b"hello").unwrap();
/// assert_eq!(fs.read("/docs/a.txt").unwrap(), b"hello");
/// assert_eq!(fs.list("/docs").unwrap(), vec!["a.txt".to_string()]);
/// ```
#[derive(Clone, Debug)]
pub struct SimFs {
    root: Node,
}

impl Default for SimFs {
    fn default() -> SimFs {
        SimFs::new()
    }
}

/// Splits and validates a path into components.
fn components(path: &str) -> Result<Vec<&str>, FsError> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidPath(path.to_string()));
    }
    let parts: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
    // Reject empty interior components like "/a//b" — filter removed them,
    // so re-check by counting separators only for pathological "//".
    Ok(parts)
}

impl SimFs {
    /// An empty filesystem (just `/`).
    pub fn new() -> SimFs {
        SimFs {
            root: Node::Dir(BTreeMap::new()),
        }
    }

    fn lookup_dir_mut(
        &mut self,
        parts: &[&str],
        path: &str,
    ) -> Result<&mut BTreeMap<String, Node>, FsError> {
        let mut cur = &mut self.root;
        for part in parts {
            let map = match cur {
                Node::Dir(map) => map,
                Node::File(_) => return Err(FsError::NotADirectory(path.to_string())),
            };
            cur = map
                .get_mut(*part)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        }
        match cur {
            Node::Dir(map) => Ok(map),
            Node::File(_) => Err(FsError::NotADirectory(path.to_string())),
        }
    }

    fn lookup(&self, path: &str) -> Result<&Node, FsError> {
        let parts = components(path)?;
        let mut cur = &self.root;
        for part in parts {
            let map = match cur {
                Node::Dir(map) => map,
                Node::File(_) => return Err(FsError::NotADirectory(path.to_string())),
            };
            cur = map
                .get(part)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        }
        Ok(cur)
    }

    fn split_parent(path: &str) -> Result<(Vec<&str>, &str), FsError> {
        let parts = components(path)?;
        match parts.split_last() {
            Some((name, parents)) => Ok((parents.to_vec(), name)),
            None => Err(FsError::InvalidPath(path.to_string())),
        }
    }

    /// The kind of the node at `path`, if it exists.
    pub fn kind(&self, path: &str) -> Option<NodeKind> {
        match self.lookup(path) {
            Ok(Node::File(_)) => Some(NodeKind::File),
            Ok(Node::Dir(_)) => Some(NodeKind::Dir),
            Err(_) => None,
        }
    }

    /// Whether `path` names an existing file or directory.
    pub fn exists(&self, path: &str) -> bool {
        self.kind(path).is_some()
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// Fails if the parent is missing or the name already exists.
    pub fn mkdir(&mut self, path: &str) -> Result<(), FsError> {
        let (parents, name) = Self::split_parent(path)?;
        let dir = self.lookup_dir_mut(&parents, path)?;
        if dir.contains_key(name) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        dir.insert(name.to_string(), Node::Dir(BTreeMap::new()));
        Ok(())
    }

    /// Writes (creates or replaces) a file.
    ///
    /// # Errors
    ///
    /// Fails if the parent directory is missing or `path` names a directory.
    pub fn write(&mut self, path: &str, content: &[u8]) -> Result<(), FsError> {
        let (parents, name) = Self::split_parent(path)?;
        let dir = self.lookup_dir_mut(&parents, path)?;
        match dir.get(name) {
            Some(Node::Dir(_)) => Err(FsError::IsADirectory(path.to_string())),
            _ => {
                dir.insert(name.to_string(), Node::File(content.to_vec()));
                Ok(())
            }
        }
    }

    /// Reads a file's content.
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or names a directory.
    pub fn read(&self, path: &str) -> Result<Vec<u8>, FsError> {
        match self.lookup(path)? {
            Node::File(content) => Ok(content.clone()),
            Node::Dir(_) => Err(FsError::IsADirectory(path.to_string())),
        }
    }

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or names a directory.
    pub fn remove_file(&mut self, path: &str) -> Result<(), FsError> {
        let (parents, name) = Self::split_parent(path)?;
        let dir = self.lookup_dir_mut(&parents, path)?;
        match dir.get(name) {
            Some(Node::File(_)) => {
                dir.remove(name);
                Ok(())
            }
            Some(Node::Dir(_)) => Err(FsError::IsADirectory(path.to_string())),
            None => Err(FsError::NotFound(path.to_string())),
        }
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// Fails if missing, not a directory, or not empty.
    pub fn rmdir(&mut self, path: &str) -> Result<(), FsError> {
        let (parents, name) = Self::split_parent(path)?;
        let dir = self.lookup_dir_mut(&parents, path)?;
        match dir.get(name) {
            Some(Node::Dir(map)) if map.is_empty() => {
                dir.remove(name);
                Ok(())
            }
            Some(Node::Dir(_)) => Err(FsError::NotEmpty(path.to_string())),
            Some(Node::File(_)) => Err(FsError::NotADirectory(path.to_string())),
            None => Err(FsError::NotFound(path.to_string())),
        }
    }

    /// Renames a file within the same directory tree (both paths absolute).
    ///
    /// # Errors
    ///
    /// Fails if the source is missing or the destination parent is missing.
    /// An existing destination file is replaced, matching POSIX `rename`.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        let (fparents, fname) = Self::split_parent(from)?;
        let node = {
            let dir = self.lookup_dir_mut(&fparents, from)?;
            dir.get(fname)
                .ok_or_else(|| FsError::NotFound(from.to_string()))?
                .clone()
        };
        let (tparents, tname) = Self::split_parent(to)?;
        {
            let tdir = self.lookup_dir_mut(&tparents, to)?;
            if matches!(tdir.get(tname), Some(Node::Dir(_))) {
                return Err(FsError::IsADirectory(to.to_string()));
            }
            tdir.insert(tname.to_string(), node);
        }
        let fdir = self
            .lookup_dir_mut(&fparents, from)
            .expect("source dir still there");
        fdir.remove(fname);
        Ok(())
    }

    /// Lists the entries of a directory (sorted).
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or names a file.
    pub fn list(&self, path: &str) -> Result<Vec<String>, FsError> {
        match self.lookup(path)? {
            Node::Dir(map) => Ok(map.keys().cloned().collect()),
            Node::File(_) => Err(FsError::NotADirectory(path.to_string())),
        }
    }

    /// Names in `dir` matching a glob `pattern` (only `*` is special,
    /// matching any — possibly empty — character sequence).
    ///
    /// This is the *client-side* expansion semantics; the FSP server never
    /// calls it.
    ///
    /// # Errors
    ///
    /// Fails if `dir` is missing or names a file.
    pub fn glob(&self, dir: &str, pattern: &str) -> Result<Vec<String>, FsError> {
        Ok(self
            .list(dir)?
            .into_iter()
            .filter(|name| glob_match(pattern, name))
            .collect())
    }

    /// Total number of files in the tree.
    pub fn file_count(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::File(_) => 1,
                Node::Dir(map) => map.values().map(walk).sum(),
            }
        }
        walk(&self.root)
    }
}

/// Shell-style glob matching where only `*` is special.
///
/// There is deliberately **no escape character** — exactly the FSP globbing
/// limitation the paper exploits (§6.3): once a file named `file*` exists,
/// no pattern can name it without also matching its siblings.
///
/// # Examples
///
/// ```
/// use achilles_netsim::glob_match;
///
/// assert!(glob_match("file*", "file1"));
/// assert!(glob_match("file*", "file*"));
/// assert!(glob_match("*", "anything"));
/// assert!(!glob_match("file?", "file1")); // '?' is NOT special in FSP
/// ```
pub fn glob_match(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    // Classic two-pointer with backtracking over the last '*'.
    let (mut pi, mut ni) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((spi, sni)) = star {
            pi = spi + 1;
            ni = sni + 1;
            star = Some((spi, sni + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimFs {
        let mut fs = SimFs::new();
        fs.mkdir("/dir").unwrap();
        fs.write("/file1", b"one").unwrap();
        fs.write("/file2", b"two").unwrap();
        fs.write("/dir/nested", b"deep").unwrap();
        fs
    }

    #[test]
    fn write_read_round_trip() {
        let fs = sample();
        assert_eq!(fs.read("/file1").unwrap(), b"one");
        assert_eq!(fs.read("/dir/nested").unwrap(), b"deep");
        assert_eq!(fs.file_count(), 3);
    }

    #[test]
    fn kinds_and_existence() {
        let fs = sample();
        assert_eq!(fs.kind("/dir"), Some(NodeKind::Dir));
        assert_eq!(fs.kind("/file1"), Some(NodeKind::File));
        assert_eq!(fs.kind("/missing"), None);
        assert!(fs.exists("/dir/nested"));
    }

    #[test]
    fn remove_and_errors() {
        let mut fs = sample();
        fs.remove_file("/file1").unwrap();
        assert!(!fs.exists("/file1"));
        assert_eq!(
            fs.remove_file("/file1"),
            Err(FsError::NotFound("/file1".into()))
        );
        assert_eq!(
            fs.remove_file("/dir"),
            Err(FsError::IsADirectory("/dir".into()))
        );
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut fs = sample();
        assert_eq!(fs.rmdir("/dir"), Err(FsError::NotEmpty("/dir".into())));
        fs.remove_file("/dir/nested").unwrap();
        fs.rmdir("/dir").unwrap();
        assert!(!fs.exists("/dir"));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut fs = sample();
        fs.rename("/file1", "/renamed").unwrap();
        assert!(!fs.exists("/file1"));
        assert_eq!(fs.read("/renamed").unwrap(), b"one");
        // Replacing an existing file is allowed.
        fs.rename("/renamed", "/file2").unwrap();
        assert_eq!(fs.read("/file2").unwrap(), b"one");
    }

    #[test]
    fn list_sorted() {
        let fs = sample();
        assert_eq!(fs.list("/").unwrap(), vec!["dir", "file1", "file2"]);
    }

    #[test]
    fn invalid_paths_rejected() {
        let mut fs = SimFs::new();
        assert!(matches!(
            fs.write("relative", b""),
            Err(FsError::InvalidPath(_))
        ));
        assert!(matches!(fs.mkdir("/"), Err(FsError::InvalidPath(_))));
    }

    #[test]
    fn glob_matching_star_only() {
        assert!(glob_match("file*", "file"));
        assert!(glob_match("file*", "file123"));
        assert!(glob_match("*file", "myfile"));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(!glob_match("a*b", "ac"));
        assert!(glob_match("*", ""));
        // No escaping: backslash is literal.
        assert!(!glob_match("file\\*", "file*"));
        assert!(glob_match("file\\*", "file\\anything"));
    }

    #[test]
    fn glob_lists_matching_files() {
        let mut fs = sample();
        fs.write("/filez", b"").unwrap();
        let hits = fs.glob("/", "file*").unwrap();
        assert_eq!(hits, vec!["file1", "file2", "filez"]);
    }

    #[test]
    fn wildcard_file_cannot_be_targeted_precisely() {
        // The FSP Trojan scenario: a literal 'file*' exists next to others.
        let mut fs = SimFs::new();
        fs.write("/file*", b"trojan").unwrap();
        fs.write("/file1", b"precious").unwrap();
        // Any pattern matching 'file*' also matches 'file1'.
        let hits = fs.glob("/", "file*").unwrap();
        assert_eq!(hits, vec!["file*", "file1"]);
        // And there is no escape syntax to single it out.
        let escaped = fs.glob("/", "file\\*").unwrap();
        assert!(escaped.is_empty());
    }
}
