//! A logical clock for deterministic cost accounting.
//!
//! The PBFT MAC-attack demo measures "expensive recovery" in simulated time:
//! protocol steps charge microsecond costs to a [`SimClock`], so the
//! throughput collapse the paper describes (§6.3) reproduces deterministically
//! on any machine.

/// Simulated time in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since the epoch of the simulation.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds (floating) since the epoch of the simulation.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1000.0)
    }
}

/// A monotonically advancing logical clock.
///
/// # Examples
///
/// ```
/// use achilles_netsim::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.advance_micros(1500);
/// assert_eq!(clock.now().as_micros(), 1500);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances by `micros` microseconds.
    pub fn advance_micros(&mut self, micros: u64) {
        self.now = SimTime(self.now.0 + micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_micros(10);
        c.advance_micros(5);
        assert_eq!(c.now().as_micros(), 15);
        assert!(c.now() > SimTime::ZERO);
    }

    #[test]
    fn display_in_millis() {
        let mut c = SimClock::new();
        c.advance_micros(2500);
        assert_eq!(c.now().to_string(), "2.500ms");
        assert!((c.now().as_secs_f64() - 0.0025).abs() < 1e-12);
    }
}
