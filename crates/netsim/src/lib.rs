//! # achilles-netsim — deterministic distributed-system substrate
//!
//! Simulation building blocks under the Achilles target systems: an
//! in-memory datagram network ([`Network`]), a simulated filesystem
//! ([`SimFs`], the FSP server's disk), shell-style glob matching
//! ([`glob_match`], the FSP client's wildcard expansion), wire codecs
//! ([`bytes`]), and a logical clock ([`SimClock`]) for cost accounting in
//! the PBFT MAC-attack demo.
//!
//! These replace the parts of the paper's testbed that a portable
//! reproduction cannot assume: Linux UDP sockets, the server's ext3 state,
//! and wall-clock-based performance measurements.
//!
//! ```
//! use achilles_netsim::{Addr, Network, SimFs};
//!
//! let mut fs = SimFs::new();
//! fs.write("/hello", b"world").unwrap();
//!
//! let mut net = Network::new();
//! net.register(Addr::new("fsp-server"));
//! net.send(Addr::new("client"), Addr::new("fsp-server"), fs.read("/hello").unwrap());
//! assert_eq!(net.recv(&Addr::new("fsp-server")).unwrap().payload, b"world");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bytes;
pub mod clock;
pub mod fs;
pub mod net;

pub use bytes::{decode_fields, encode_fields, WireError};
pub use clock::{SimClock, SimTime};
pub use fs::{glob_match, FsError, NodeKind, SimFs};
pub use net::{flip_bit, Addr, Datagram, NetStats, Network};
