//! Wire encoding of field-structured messages.
//!
//! Protocol crates map their message layouts to byte sequences with these
//! helpers: each field is written big-endian in `width_bits / 8` bytes.
//! Only whole-byte widths are supported on the wire (protocols with flag
//! *bits* pack them into a flags byte/word, as PBFT's `extra` field does).

/// Errors from wire decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before all fields were read.
    Truncated {
        /// Bytes that were available.
        have: usize,
        /// Bytes that were needed.
        need: usize,
    },
    /// A field width is not a whole number of bytes.
    BadWidth {
        /// The offending width in bits.
        bits: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { have, need } => {
                write!(f, "wire message truncated: have {have} bytes, need {need}")
            }
            WireError::BadWidth { bits } => {
                write!(f, "field width {bits} is not a whole number of bytes")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes `(width_bits, value)` fields big-endian.
///
/// # Errors
///
/// Returns [`WireError::BadWidth`] if any width is not a multiple of 8.
///
/// # Examples
///
/// ```
/// use achilles_netsim::bytes::encode_fields;
///
/// let wire = encode_fields(&[(8, 0x41), (16, 0x0102)]).unwrap();
/// assert_eq!(wire, vec![0x41, 0x01, 0x02]);
/// ```
pub fn encode_fields(fields: &[(u32, u64)]) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    for &(bits, value) in fields {
        if bits % 8 != 0 || bits == 0 || bits > 64 {
            return Err(WireError::BadWidth { bits });
        }
        let bytes = (bits / 8) as usize;
        for i in (0..bytes).rev() {
            out.push(((value >> (8 * i)) & 0xff) as u8);
        }
    }
    Ok(out)
}

/// Decodes a byte buffer into values given per-field widths (big-endian).
///
/// # Errors
///
/// [`WireError::Truncated`] if the buffer is too short,
/// [`WireError::BadWidth`] for non-byte widths. Trailing bytes are ignored
/// (datagram protocols routinely pad).
///
/// # Examples
///
/// ```
/// use achilles_netsim::bytes::decode_fields;
///
/// let values = decode_fields(&[0x41, 0x01, 0x02], &[8, 16]).unwrap();
/// assert_eq!(values, vec![0x41, 0x0102]);
/// ```
pub fn decode_fields(wire: &[u8], widths: &[u32]) -> Result<Vec<u64>, WireError> {
    let mut out = Vec::with_capacity(widths.len());
    let mut pos = 0usize;
    let need: usize = widths.iter().map(|w| (*w / 8) as usize).sum();
    if wire.len() < need {
        return Err(WireError::Truncated {
            have: wire.len(),
            need,
        });
    }
    for &bits in widths {
        if bits % 8 != 0 || bits == 0 || bits > 64 {
            return Err(WireError::BadWidth { bits });
        }
        let bytes = (bits / 8) as usize;
        let mut v = 0u64;
        for _ in 0..bytes {
            v = (v << 8) | u64::from(wire[pos]);
            pos += 1;
        }
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let fields = [(8u32, 0xABu64), (16, 0x1234), (32, 0xDEADBEEF), (8, 0)];
        let wire = encode_fields(&fields).unwrap();
        assert_eq!(wire.len(), 1 + 2 + 4 + 1);
        let widths: Vec<u32> = fields.iter().map(|f| f.0).collect();
        let values = decode_fields(&wire, &widths).unwrap();
        let expect: Vec<u64> = fields.iter().map(|f| f.1).collect();
        assert_eq!(values, expect);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let err = decode_fields(&[1, 2], &[8, 16]).unwrap_err();
        assert_eq!(err, WireError::Truncated { have: 2, need: 3 });
    }

    #[test]
    fn non_byte_width_rejected() {
        assert_eq!(
            encode_fields(&[(4, 1)]).unwrap_err(),
            WireError::BadWidth { bits: 4 }
        );
        assert_eq!(
            decode_fields(&[0], &[12]).unwrap_err(),
            WireError::BadWidth { bits: 12 }
        );
    }

    #[test]
    fn values_truncated_to_width() {
        // Encoding masks high bits beyond the field width.
        let wire = encode_fields(&[(8, 0x1FF)]).unwrap();
        assert_eq!(wire, vec![0xFF]);
    }

    #[test]
    fn trailing_bytes_ignored() {
        let values = decode_fields(&[7, 9, 9, 9], &[8]).unwrap();
        assert_eq!(values, vec![7]);
    }
}
