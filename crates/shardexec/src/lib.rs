//! # achilles-shardexec — a sharded executor under Achilles
//!
//! A three-shard replicated executor with a **sender-identity Trojan**:
//! cross-shard state-write broadcasts carry the originating shard's id
//! in a `sender` field, and the fabric's echo-suppression routing rule
//! ("apply everywhere except the originator, who already applied
//! locally") trusts that field without authentication. A forged sender
//! is routed without incident — no crash, no rejection — but the named
//! shard silently keeps its old value while the other two commit the
//! write. The replicas **split**, and nothing detonates until an
//! anti-entropy round or a client read observes the disagreement.
//!
//! The crate exists for two reasons:
//!
//! * it is the proving ground for the **divergence-triage subsystem**
//!   (`achilles::diverge`): the Trojan here never crashes a process, so
//!   catching it requires per-node state roots observed after every
//!   delivery, folded into crash signatures, and surfaced as the sweep
//!   classifier's `Diverged` class;
//! * it is the first **multi-node** deployment in the registry — replay
//!   targets boot a whole cluster, and the `DivergenceSignature` names
//!   which nodes split at which delivery index.
//!
//! Like every other protocol, shardexec joins the registry-driven
//! drivers through a single
//! `registry.register(Arc::new(ShardexecSpec::default()))` call.
//!
//! ```
//! use achilles::AchillesSession;
//! use achilles_shardexec::{ShardWrite, ShardexecSpec};
//!
//! let spec = ShardexecSpec::default();
//! let report = AchillesSession::new(&spec).run();
//! assert_eq!(report.trojans.len(), 1);
//! let write = ShardWrite::from_field_values(&report.trojans[0].witness_fields);
//! assert_ne!(write.sender, write.key, "a forged sender identity");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod programs;
pub mod protocol;
pub mod target;

pub use engine::{ReadResolution, ShardCluster, ShardexecConfig};
pub use programs::{
    IngressWriteProgram, ReadClientProgram, SessionShardProgram, ShardWriteProgram,
    SyncRoundProgram,
};
pub use protocol::{
    read_layout, sync_layout, write_layout, ShardRead, ShardSync, ShardWrite, MAX_VALUE, N_KEYS,
    N_SHARDS, READ_KIND, SYNC_KIND, WRITE_KIND,
};
pub use target::{ShardexecSessionTarget, ShardexecSpec, ShardexecTarget};
