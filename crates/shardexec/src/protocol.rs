//! The sharded-executor wire formats.
//!
//! The modeled cluster is three shards replicating a small key table.
//! Three message kinds cross the fabric:
//!
//! * `WRITE` — a cross-shard state-write broadcast carrying the
//!   originating shard's identity in the `sender` field;
//! * `SYNC` — an anti-entropy comparison round for one key;
//! * `READ` — a client-facing resolution of one key across the shards.
//!
//! The protocol invariant correct nodes obey: a shard only originates
//! writes for the keys it owns (`sender == owner(key)`, and with one key
//! per shard, `owner(key) == key`). The vulnerable ingress never checks
//! it — the sender-identity window the whole crate exists to model (see
//! [`crate::engine`]).

use std::sync::Arc;

use achilles::{fields_to_wire, wire_to_fields, WireError};
use achilles_solver::Width;
use achilles_symvm::MessageLayout;

/// `kind` value of `WRITE` messages (cross-shard state-write broadcast).
pub const WRITE_KIND: u64 = 1;

/// `kind` value of `SYNC` messages (anti-entropy comparison round).
pub const SYNC_KIND: u64 = 2;

/// `kind` value of `READ` messages (cross-shard resolution request).
pub const READ_KIND: u64 = 3;

/// Shards in the cluster (`sender < N_SHARDS`).
pub const N_SHARDS: u64 = 3;

/// Keys the replicated table tracks — one per shard, and a shard owns
/// exactly the key with its own id (`owner(key) == key`).
pub const N_KEYS: u64 = N_SHARDS;

/// Write values correct shards commit (`1 <= value < MAX_VALUE`; zero is
/// the "absent" marker and never travels in a correct write).
pub const MAX_VALUE: u64 = 256;

/// The `WRITE` message layout (slot 0 of the write→sync→read session).
pub fn write_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("shardexec_write")
        .field("kind", Width::W8)
        .field("sender", Width::W8)
        .field("key", Width::W8)
        .field("value", Width::W16)
        .build()
}

/// The `SYNC` message layout (slot 1).
pub fn sync_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("shardexec_sync")
        .field("kind", Width::W8)
        .field("sender", Width::W8)
        .field("key", Width::W8)
        .build()
}

/// The `READ` message layout (slot 2).
pub fn read_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("shardexec_read")
        .field("kind", Width::W8)
        .field("key", Width::W8)
        .build()
}

/// One concrete `WRITE` broadcast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardWrite {
    /// Message kind ([`WRITE_KIND`] for real writes).
    pub kind: u8,
    /// The shard claiming to have originated the write.
    pub sender: u8,
    /// Table key being written.
    pub key: u8,
    /// The committed value (correct shards send `1..MAX_VALUE`).
    pub value: u16,
}

impl ShardWrite {
    /// The write shard `shard` would broadcast for its own key.
    pub fn correct(shard: u8, value: u16) -> ShardWrite {
        ShardWrite {
            kind: WRITE_KIND as u8,
            sender: shard,
            key: shard,
            value,
        }
    }

    /// Layout-ordered field values.
    pub fn field_values(&self) -> Vec<u64> {
        vec![
            u64::from(self.kind),
            u64::from(self.sender),
            u64::from(self.key),
            u64::from(self.value),
        ]
    }

    /// Rebuilds a write from layout-ordered field values (truncated to
    /// their wire widths, like the real parser would).
    pub fn from_field_values(fields: &[u64]) -> ShardWrite {
        ShardWrite {
            kind: fields.first().copied().unwrap_or(0) as u8,
            sender: fields.get(1).copied().unwrap_or(0) as u8,
            key: fields.get(2).copied().unwrap_or(0) as u8,
            value: fields.get(3).copied().unwrap_or(0) as u16,
        }
    }

    /// Encodes to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        fields_to_wire(&write_layout(), &self.field_values())
            .expect("the write layout is byte-aligned")
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated buffers.
    pub fn from_wire(wire: &[u8]) -> Result<ShardWrite, WireError> {
        Ok(ShardWrite::from_field_values(&wire_to_fields(
            &write_layout(),
            wire,
        )?))
    }
}

/// One concrete `SYNC` round request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSync {
    /// Message kind ([`SYNC_KIND`]).
    pub kind: u8,
    /// The shard initiating the round.
    pub sender: u8,
    /// Table key compared across the shards.
    pub key: u8,
}

impl ShardSync {
    /// The round shard `sender` would initiate for `key`.
    pub fn correct(sender: u8, key: u8) -> ShardSync {
        ShardSync {
            kind: SYNC_KIND as u8,
            sender,
            key,
        }
    }

    /// Layout-ordered field values.
    pub fn field_values(&self) -> Vec<u64> {
        vec![
            u64::from(self.kind),
            u64::from(self.sender),
            u64::from(self.key),
        ]
    }

    /// Rebuilds a sync from layout-ordered field values.
    pub fn from_field_values(fields: &[u64]) -> ShardSync {
        ShardSync {
            kind: fields.first().copied().unwrap_or(0) as u8,
            sender: fields.get(1).copied().unwrap_or(0) as u8,
            key: fields.get(2).copied().unwrap_or(0) as u8,
        }
    }

    /// Encodes to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        fields_to_wire(&sync_layout(), &self.field_values())
            .expect("the sync layout is byte-aligned")
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated buffers.
    pub fn from_wire(wire: &[u8]) -> Result<ShardSync, WireError> {
        Ok(ShardSync::from_field_values(&wire_to_fields(
            &sync_layout(),
            wire,
        )?))
    }
}

/// One concrete `READ` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRead {
    /// Message kind ([`READ_KIND`]).
    pub kind: u8,
    /// Table key resolved across the shards.
    pub key: u8,
}

impl ShardRead {
    /// The read a correct client would send for `key`.
    pub fn correct(key: u8) -> ShardRead {
        ShardRead {
            kind: READ_KIND as u8,
            key,
        }
    }

    /// Layout-ordered field values.
    pub fn field_values(&self) -> Vec<u64> {
        vec![u64::from(self.kind), u64::from(self.key)]
    }

    /// Rebuilds a read from layout-ordered field values.
    pub fn from_field_values(fields: &[u64]) -> ShardRead {
        ShardRead {
            kind: fields.first().copied().unwrap_or(0) as u8,
            key: fields.get(1).copied().unwrap_or(0) as u8,
        }
    }

    /// Encodes to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        fields_to_wire(&read_layout(), &self.field_values())
            .expect("the read layout is byte-aligned")
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated buffers.
    pub fn from_wire(wire: &[u8]) -> Result<ShardRead, WireError> {
        Ok(ShardRead::from_field_values(&wire_to_fields(
            &read_layout(),
            wire,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_wire_round_trip() {
        let w = ShardWrite::correct(2, 0x1234);
        assert_eq!(ShardWrite::from_wire(&w.to_wire()).unwrap(), w);
        assert_eq!(w.to_wire(), vec![1, 2, 2, 0x12, 0x34]);
    }

    #[test]
    fn sync_and_read_wire_round_trip() {
        let s = ShardSync::correct(1, 2);
        assert_eq!(ShardSync::from_wire(&s.to_wire()).unwrap(), s);
        assert_eq!(s.to_wire(), vec![2, 1, 2]);
        let r = ShardRead::correct(0);
        assert_eq!(ShardRead::from_wire(&r.to_wire()).unwrap(), r);
        assert_eq!(r.to_wire(), vec![3, 0]);
    }

    #[test]
    fn field_round_trip_truncates_to_wire_widths() {
        let w = ShardWrite {
            kind: 1,
            sender: 7,
            key: 2,
            value: 0xbeef,
        };
        assert_eq!(ShardWrite::from_field_values(&w.field_values()), w);
    }
}
