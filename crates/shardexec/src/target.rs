//! The shardexec [`TargetSpec`] and concrete deployment targets.
//!
//! The first multi-node deployment in the registry: replay targets here
//! boot a three-shard cluster, observe per-shard state roots through a
//! [`DivergenceProbe`] after every delivery, and fold the observation
//! into the outcome's effects — so silent state divergence flows through
//! the ordinary signature triage, the sweep classifier's `Diverged`
//! class, and the fleetd query path with zero changes to the replay
//! harness.

use std::sync::Arc;

use achilles::{
    AchillesConfig, Delivery, DivergenceProbe, InjectionOutcome, ReplayTarget, SessionSlot,
    SessionSpec, SnapshotReplayTarget, StateRoot, TargetSnapshot, TargetSpec, TrojanReport,
};
use achilles_symvm::{MessageLayout, NodeProgram};

use crate::engine::{ReadResolution, ShardCluster, ShardexecConfig};
use crate::programs::{
    IngressWriteProgram, ReadClientProgram, SessionShardProgram, ShardWriteProgram,
    SyncRoundProgram,
};
use crate::protocol::{
    read_layout, sync_layout, write_layout, ShardRead, ShardSync, ShardWrite, MAX_VALUE, N_KEYS,
    N_SHARDS, READ_KIND, SYNC_KIND, WRITE_KIND,
};

fn write_generable(fields: &[u64]) -> bool {
    let [kind, sender, key, value] = fields else {
        return false;
    };
    // Some shard's write library can produce it: the library stamps
    // sender == key == its own id, so generable writes are exactly the
    // authentic ones.
    *kind == WRITE_KIND
        && *sender < N_SHARDS
        && *key < N_KEYS
        && sender == key
        && *value >= 1
        && *value < MAX_VALUE
}

fn sync_generable(fields: &[u64]) -> bool {
    let [kind, sender, key] = fields else {
        return false;
    };
    *kind == SYNC_KIND && *sender < N_SHARDS && *key < N_KEYS
}

fn read_generable(fields: &[u64]) -> bool {
    let [kind, key] = fields else {
        return false;
    };
    *kind == READ_KIND && *key < N_KEYS
}

/// Folds one accepted write's fabric-level observations into effects.
fn write_effects(write: &ShardWrite, outcome: &mut InjectionOutcome) {
    outcome.effects.push("write:applied".to_string());
    if write.sender != write.key {
        // The structural family marker: the fabric routed a write under
        // an identity no shard library would stamp on it.
        outcome.effects.push("family:sender-spoof".to_string());
    }
}

/// The single-message shardexec deployment target: a fresh three-shard
/// cluster ingesting `WRITE` broadcasts, with per-shard state roots
/// observed after every delivery — a forged sender splits the replicas
/// concretely within the injection.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardexecTarget {
    /// Cluster build (patch toggle must match the analyzed server).
    pub config: ShardexecConfig,
}

impl ShardexecTarget {
    /// A target over the given cluster build.
    pub fn new(config: ShardexecConfig) -> ShardexecTarget {
        ShardexecTarget { config }
    }
}

impl ReplayTarget for ShardexecTarget {
    fn name(&self) -> &'static str {
        "shardexec"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        write_layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        ShardWrite::correct(0, 1).field_values()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        write_generable(fields)
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut session = ShardexecForkSession::boot(self.config);
        let mut outcome = InjectionOutcome::default();
        for delivery in deliveries {
            session.deliver(delivery, &mut outcome);
        }
        session.finish(&mut outcome);
        outcome
    }

    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        Some(Box::new(ShardexecForkSession::boot(self.config)))
    }

    fn reports_state_roots(&self) -> bool {
        true
    }
}

/// The incremental deployment behind [`ShardexecTarget`]: one live
/// cluster plus the divergence probe. `inject` is a boot → deliver-each
/// → finish loop over this struct, so fork-server replay is equivalent
/// to cold-boot by construction — probe included, because the probe
/// rides in the snapshot payload.
struct ShardexecForkSession {
    cluster: ShardCluster,
    probe: DivergenceProbe,
}

impl ShardexecForkSession {
    fn boot(config: ShardexecConfig) -> ShardexecForkSession {
        ShardexecForkSession {
            cluster: ShardCluster::new(config),
            probe: DivergenceProbe::new(),
        }
    }
}

impl SnapshotReplayTarget for ShardexecForkSession {
    fn deliver(&mut self, delivery: &Delivery, outcome: &mut InjectionOutcome) {
        let (wire, _) = delivery;
        match ShardWrite::from_wire(wire) {
            Ok(write) if u64::from(write.kind) == WRITE_KIND => {
                let accepted = self.cluster.on_write(write.sender, write.key, write.value);
                outcome.accepted_each.push(accepted);
                if accepted {
                    write_effects(&write, outcome);
                } else {
                    outcome.effects.push("rejected:ingress".to_string());
                }
            }
            Ok(_) => {
                outcome.accepted_each.push(false);
                outcome.effects.push("ignored:not-write".to_string());
            }
            Err(_) => {
                outcome.accepted_each.push(false);
                outcome.effects.push("malformed".to_string());
            }
        }
        self.probe.observe(&self.cluster.roots());
    }

    fn snapshot(&self) -> TargetSnapshot {
        TargetSnapshot::of((self.cluster.clone(), self.probe.clone()))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) {
        let (cluster, probe) = snapshot
            .get::<(ShardCluster, DivergenceProbe)>()
            .expect("a shardexec fork session restores shardexec snapshots");
        self.cluster = cluster.clone();
        self.probe = probe.clone();
    }

    fn finish(&mut self, outcome: &mut InjectionOutcome) {
        outcome
            .effects
            .extend(self.probe.finish(&self.cluster.roots()));
    }

    fn state_roots(&self) -> Option<Vec<StateRoot>> {
        Some(self.cluster.roots())
    }
}

/// The shardexec session deployment: a *fresh* cluster processing a
/// `WRITE`, a `SYNC`, and a `READ` in one session — the stateful
/// scenario where a forged sender splits the replicas without incident
/// at slot 0, the anti-entropy round observes the split, and the client
/// read two messages later returns different answers depending on which
/// shard serves it.
///
/// Deliveries are parsed by their kind byte (all three wire formats
/// share the kind-first framing).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardexecSessionTarget {
    /// Cluster build (patch toggle must match the analyzed server).
    pub config: ShardexecConfig,
}

impl ShardexecSessionTarget {
    /// A session target over the given cluster build.
    pub fn new(config: ShardexecConfig) -> ShardexecSessionTarget {
        ShardexecSessionTarget { config }
    }
}

impl ReplayTarget for ShardexecSessionTarget {
    fn name(&self) -> &'static str {
        "shardexec"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        write_layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        ShardWrite::correct(0, 1).field_values()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        write_generable(fields)
    }

    fn slot_layouts(&self) -> Vec<Arc<MessageLayout>> {
        vec![write_layout(), sync_layout(), read_layout()]
    }

    fn slot_benign_fields(&self, slot: usize) -> Vec<u64> {
        match slot {
            0 => ShardWrite::correct(0, 1).field_values(),
            1 => ShardSync::correct(0, 0).field_values(),
            _ => ShardRead::correct(0).field_values(),
        }
    }

    fn slot_generable(&self, slot: usize, fields: &[u64]) -> bool {
        match slot {
            0 => write_generable(fields),
            1 => sync_generable(fields),
            _ => read_generable(fields),
        }
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut session = ShardexecSessionForkSession::boot(self.config);
        let mut outcome = InjectionOutcome::default();
        for delivery in deliveries {
            session.deliver(delivery, &mut outcome);
        }
        session.finish(&mut outcome);
        outcome
    }

    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        Some(Box::new(ShardexecSessionForkSession::boot(self.config)))
    }

    fn reports_state_roots(&self) -> bool {
        true
    }
}

/// The incremental deployment behind [`ShardexecSessionTarget`]: one
/// live cluster plus the divergence probe, dispatching on the kind byte.
struct ShardexecSessionForkSession {
    cluster: ShardCluster,
    probe: DivergenceProbe,
}

impl ShardexecSessionForkSession {
    fn boot(config: ShardexecConfig) -> ShardexecSessionForkSession {
        ShardexecSessionForkSession {
            cluster: ShardCluster::new(config),
            probe: DivergenceProbe::new(),
        }
    }
}

impl SnapshotReplayTarget for ShardexecSessionForkSession {
    fn deliver(&mut self, delivery: &Delivery, outcome: &mut InjectionOutcome) {
        let (wire, _) = delivery;
        let cluster = &mut self.cluster;
        match wire.first().map(|&k| u64::from(k)) {
            Some(WRITE_KIND) => match ShardWrite::from_wire(wire) {
                Ok(write) => {
                    let accepted = cluster.on_write(write.sender, write.key, write.value);
                    outcome.accepted_each.push(accepted);
                    if accepted {
                        write_effects(&write, outcome);
                    } else {
                        outcome.effects.push("rejected:ingress".to_string());
                    }
                }
                Err(_) => {
                    outcome.accepted_each.push(false);
                    outcome.effects.push("malformed".to_string());
                }
            },
            Some(SYNC_KIND) => match ShardSync::from_wire(wire) {
                Ok(sync) => {
                    let accepted = cluster.on_sync(sync.sender, sync.key);
                    outcome.accepted_each.push(accepted);
                    if !accepted {
                        outcome.effects.push("rejected:sync".to_string());
                    } else if cluster.key_agrees(sync.key) {
                        outcome.effects.push("sync:agree".to_string());
                    } else {
                        // The anti-entropy round sees the replicas
                        // disagreeing — the split is now observable
                        // inside the cluster.
                        outcome.effects.push("sync:split".to_string());
                    }
                }
                Err(_) => {
                    outcome.accepted_each.push(false);
                    outcome.effects.push("malformed".to_string());
                }
            },
            Some(READ_KIND) => match ShardRead::from_wire(wire) {
                Ok(read) => {
                    let accepted = cluster.on_read(read.key);
                    outcome.accepted_each.push(accepted);
                    if !accepted {
                        outcome.effects.push("rejected:read".to_string());
                    } else {
                        match cluster.resolve(read.key) {
                            ReadResolution::Agree(_) => {
                                outcome.effects.push("read:agree".to_string());
                            }
                            ReadResolution::Split => {
                                // The client-visible symptom: which
                                // answer the read returns now depends on
                                // which shard serves it.
                                outcome.effects.push("read:split".to_string());
                            }
                        }
                    }
                }
                Err(_) => {
                    outcome.accepted_each.push(false);
                    outcome.effects.push("malformed".to_string());
                }
            },
            _ => {
                outcome.accepted_each.push(false);
                outcome.effects.push("ignored:unknown-kind".to_string());
            }
        }
        self.probe.observe(&self.cluster.roots());
    }

    fn snapshot(&self) -> TargetSnapshot {
        TargetSnapshot::of((self.cluster.clone(), self.probe.clone()))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) {
        let (cluster, probe) = snapshot
            .get::<(ShardCluster, DivergenceProbe)>()
            .expect("a shardexec session restores shardexec snapshots");
        self.cluster = cluster.clone();
        self.probe = probe.clone();
    }

    fn finish(&mut self, outcome: &mut InjectionOutcome) {
        outcome
            .effects
            .extend(self.probe.finish(&self.cluster.roots()));
    }

    fn state_roots(&self) -> Option<Vec<StateRoot>> {
        Some(self.cluster.roots())
    }
}

/// The sharded-executor protocol as a [`TargetSpec`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardexecSpec {
    /// The cluster build under analysis (and replay).
    pub config: ShardexecConfig,
}

impl ShardexecSpec {
    /// A spec over the given cluster build.
    pub fn new(config: ShardexecConfig) -> ShardexecSpec {
        ShardexecSpec { config }
    }

    /// The patched build (sender authenticated at ingress): expects zero
    /// Trojans.
    pub fn patched() -> ShardexecSpec {
        ShardexecSpec::new(ShardexecConfig {
            authenticate_sender: true,
        })
    }
}

impl TargetSpec for ShardexecSpec {
    fn name(&self) -> &'static str {
        "shardexec"
    }

    fn description(&self) -> &'static str {
        "sharded executor: unauthenticated cross-shard write sender silently splits the replicas"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        write_layout()
    }

    fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        (0..N_SHARDS)
            .map(|shard| Box::new(ShardWriteProgram { shard }) as Box<dyn NodeProgram + Sync>)
            .collect()
    }

    fn server(&self) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(IngressWriteProgram {
            config: self.config,
        })
    }

    fn analysis_config(&self) -> AchillesConfig {
        AchillesConfig::verified()
    }

    fn expected_trojans(&self) -> Option<usize> {
        // One accepting ingress path; the patched build closes it.
        if self.config.authenticate_sender {
            Some(0)
        } else {
            Some(1)
        }
    }

    fn classify(&self, report: &TrojanReport) -> String {
        let write = ShardWrite::from_field_values(&report.witness_fields);
        if u64::from(write.kind) == WRITE_KIND && write.sender != write.key {
            "sender-spoof".to_string()
        } else {
            "other".to_string()
        }
    }

    fn replay_target(&self) -> Box<dyn ReplayTarget> {
        Box::new(ShardexecTarget::new(self.config))
    }

    fn sessions(&self) -> Vec<SessionSpec> {
        vec![SessionSpec::new(
            "write-sync-read",
            vec![
                SessionSlot::new("write", write_layout(), vec![0, 1, 2]),
                SessionSlot::new("sync", sync_layout(), vec![3]),
                SessionSlot::new("read", read_layout(), vec![4]),
            ],
        )
        // One accepting session path; only the write slot hosts a
        // window, and the patched build closes it.
        .expecting(if self.config.authenticate_sender {
            0
        } else {
            1
        })]
    }

    fn session_clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        let mut clients: Vec<Box<dyn NodeProgram + Sync + '_>> = (0..N_SHARDS)
            .map(|shard| Box::new(ShardWriteProgram { shard }) as Box<dyn NodeProgram + Sync>)
            .collect();
        clients.push(Box::new(SyncRoundProgram));
        clients.push(Box::new(ReadClientProgram));
        clients
    }

    fn session_server(&self, _name: &str) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(SessionShardProgram {
            config: self.config,
        })
    }

    fn session_replay_target(&self, _name: &str) -> Box<dyn ReplayTarget> {
        Box::new(ShardexecSessionTarget::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles::{effects_diverged, AchillesSession, DivergenceSignature};

    fn diverged(outcome: &InjectionOutcome) -> bool {
        effects_diverged(outcome.effects.iter().map(String::as_str))
    }

    #[test]
    fn discovery_finds_the_sender_spoof_trojan() {
        let spec = ShardexecSpec::default();
        let report = AchillesSession::new(&spec).run();
        assert_eq!(Some(report.trojans.len()), spec.expected_trojans());
        let t = &report.trojans[0];
        assert!(
            t.verified,
            "witness re-verified against the shard libraries"
        );
        let write = ShardWrite::from_field_values(&t.witness_fields);
        assert_eq!(u64::from(write.kind), WRITE_KIND);
        assert!(u64::from(write.sender) < N_SHARDS);
        assert!(u64::from(write.key) < N_KEYS);
        assert!(write.value >= 1 && u64::from(write.value) < MAX_VALUE);
        assert_ne!(
            write.sender, write.key,
            "the only un-generable accepted field pair is a forged sender: {write:?}"
        );
        assert_eq!(spec.classify(t), "sender-spoof");
    }

    #[test]
    fn patched_build_is_trojan_free() {
        let spec = ShardexecSpec::patched();
        let report = AchillesSession::new(&spec).run();
        assert_eq!(report.trojans.len(), 0, "sender auth closes the bug");
        let sessions = AchillesSession::new(&spec).run_sessions();
        assert_eq!(sessions[0].trojans.len(), 0);
    }

    #[test]
    fn declared_session_finds_the_trojan_with_write_slot_attribution() {
        let spec = ShardexecSpec::default();
        let mut session = AchillesSession::new(&spec);
        let reports = session.run_sessions();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.session, "write-sync-read");
        assert_eq!(r.slot_names, vec!["write", "sync", "read"]);
        assert_eq!(Some(r.trojans.len()), r.expected_trojans);
        assert_eq!(
            r.trojan_slots[0],
            vec![0],
            "only the write slot hosts the Trojan"
        );
        let parts = r.split_fields(&r.trojans[0].witness_fields);
        let write = ShardWrite::from_field_values(&parts[0]);
        let sync = ShardSync::from_field_values(&parts[1]);
        let read = ShardRead::from_field_values(&parts[2]);
        assert_ne!(write.sender, write.key, "forged sender identity");
        assert_eq!(sync.key, write.key, "the round probes the written key");
        assert_eq!(read.key, write.key, "the read resolves the written key");
    }

    #[test]
    fn forged_sender_splits_and_detonates_at_read_time() {
        // The implicit interaction, concretely: the forged write is
        // routed without incident, the anti-entropy round observes the
        // split, and the client read returns shard-dependent answers.
        let target = ShardexecSessionTarget::default();
        let forged = ShardWrite {
            kind: WRITE_KIND as u8,
            sender: 2,
            key: 0,
            value: 7,
        };
        let outcome = target.inject(&[
            (forged.to_wire(), true),
            (ShardSync::correct(1, 0).to_wire(), true),
            (ShardRead::correct(0).to_wire(), true),
        ]);
        assert_eq!(outcome.accepted_each, vec![true, true, true]);
        assert!(outcome.effects.contains(&"family:sender-spoof".to_string()));
        assert!(outcome.effects.contains(&"sync:split".to_string()));
        assert!(outcome.effects.contains(&"read:split".to_string()));
        assert!(
            diverged(&outcome),
            "the replicas split: {:?}",
            outcome.effects
        );
        let sig =
            DivergenceSignature::from_effects(outcome.effects.iter().map(String::as_str)).unwrap();
        assert_eq!(sig.first_split, 0, "the write itself splits the cluster");
        assert_eq!(
            sig.split_sets(),
            vec![vec!["shard0", "shard1"], vec!["shard2"]],
            "the forged sender names exactly the shard left behind"
        );
        assert!(!target.slot_generable(0, &forged.field_values()));
        assert!(target.slot_generable(1, &ShardSync::correct(1, 0).field_values()));
        assert!(target.slot_generable(2, &ShardRead::correct(0).field_values()));

        // A fully authentic session stays converged.
        let benign = ShardWrite::correct(0, 7);
        let outcome = target.inject(&[
            (benign.to_wire(), true),
            (ShardSync::correct(1, 0).to_wire(), true),
            (ShardRead::correct(0).to_wire(), true),
        ]);
        assert_eq!(outcome.accepted_each, vec![true, true, true]);
        assert!(!diverged(&outcome));
        assert!(outcome.effects.contains(&"sync:agree".to_string()));
        assert!(outcome.effects.contains(&"read:agree".to_string()));
    }

    #[test]
    fn single_message_target_confirms_and_diverges_on_the_witness() {
        let target = ShardexecTarget::default();
        let forged = ShardWrite {
            kind: WRITE_KIND as u8,
            sender: 1,
            key: 2,
            value: 40,
        };
        let outcome = target.inject(&[(forged.to_wire(), true)]);
        assert_eq!(outcome.accepted_each, vec![true]);
        assert!(outcome.effects.contains(&"family:sender-spoof".to_string()));
        assert!(diverged(&outcome));
        assert!(!target.client_generable(&forged.field_values()));

        // An authentic write stays converged.
        let benign = ShardWrite::correct(1, 40);
        let outcome = target.inject(&[(benign.to_wire(), true)]);
        assert_eq!(outcome.accepted_each, vec![true]);
        assert!(!diverged(&outcome));
        assert!(target.client_generable(&benign.field_values()));
    }

    #[test]
    fn discovery_is_worker_count_invariant() {
        let spec = ShardexecSpec::default();
        let seq = AchillesSession::new(&spec).run();
        let par = AchillesSession::new(&spec).workers(4).run();
        assert_eq!(
            seq.trojans
                .iter()
                .map(|t| t.witness_fields.clone())
                .collect::<Vec<_>>(),
            par.trojans
                .iter()
                .map(|t| t.witness_fields.clone())
                .collect::<Vec<_>>()
        );
        assert_eq!(seq.server_paths, par.server_paths);
    }
}
