//! The concrete sharded executor: three replicating shards whose
//! broadcast fabric trusts the `sender` field it is handed.
//!
//! The cluster mirrors the Trojan shape of the cross-shard audits in
//! SNIPPETS.md: state-write messages are applied with no sender
//! authentication, routed on a peer-controlled kind byte. The fabric's
//! delivery rule is echo suppression — a broadcast is applied by every
//! shard *except* the one named in `sender`, because a shard that
//! originated a write already applied it locally before broadcasting.
//! For an authentic write (`sender == owner(key)`) the engine models
//! that origination too, so all three shards converge. For a *forged*
//! sender there was no origination: the named shard silently keeps its
//! old value while the other two commit the write, and the cluster
//! splits without any process crashing — the divergence-triage subsystem
//! ([`achilles::diverge`]) exists to catch exactly this.

use achilles::{RootHasher, StateRoot};

use crate::protocol::{MAX_VALUE, N_KEYS, N_SHARDS};

/// Cluster configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardexecConfig {
    /// Patch for the sender-identity bug: reject writes whose `sender`
    /// does not own the written key, before they reach the fabric.
    pub authenticate_sender: bool,
}

/// What resolving a key across the shards produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadResolution {
    /// Every shard holds the same value.
    Agree(u16),
    /// The replicas disagree — the silent split is now client-visible.
    Split,
}

/// A deterministic three-shard cluster replicating [`N_KEYS`] values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardCluster {
    config: ShardexecConfig,
    /// `stores[shard][key]`; zero means "absent".
    stores: Vec<Vec<u16>>,
}

impl ShardCluster {
    /// A fresh cluster with every key absent on every shard.
    pub fn new(config: ShardexecConfig) -> ShardCluster {
        ShardCluster {
            config,
            stores: vec![vec![0; N_KEYS as usize]; N_SHARDS as usize],
        }
    }

    /// The value `shard` holds for `key`.
    pub fn value(&self, shard: u8, key: u8) -> u16 {
        self.stores[shard as usize][key as usize]
    }

    /// Whether every shard holds the same value for `key`.
    pub fn key_agrees(&self, key: u8) -> bool {
        self.stores
            .windows(2)
            .all(|w| w[0][key as usize] == w[1][key as usize])
    }

    /// Handles one inbound `WRITE` broadcast; returns whether the fabric
    /// accepted (validated and routed) it.
    ///
    /// Every shard except `sender` applies the write (echo suppression).
    /// When the write is authentic (`sender == owner(key) == key`) the
    /// engine also models the origination — the local apply shard
    /// `sender` performed before broadcasting — so correct traffic keeps
    /// the replicas converged. A forged sender has no origination to
    /// model: the named shard is left behind, and the cluster diverges.
    pub fn on_write(&mut self, sender: u8, key: u8, value: u16) -> bool {
        if u64::from(sender) >= N_SHARDS
            || u64::from(key) >= N_KEYS
            || value == 0
            || u64::from(value) >= MAX_VALUE
        {
            return false;
        }
        if self.config.authenticate_sender && sender != key {
            return false;
        }
        // Security vulnerability (unpatched build): the sender field is
        // trusted for echo suppression without authentication — a forged
        // sender silently splits the replicas.
        for shard in 0..N_SHARDS as u8 {
            if shard != sender || sender == key {
                self.stores[shard as usize][key as usize] = value;
            }
        }
        true
    }

    /// Handles one inbound `SYNC` round: compares `key` across the
    /// shards (effect-level observation only — the round repairs
    /// nothing in this bounded model). Returns whether the fabric
    /// accepted the request.
    pub fn on_sync(&mut self, sender: u8, key: u8) -> bool {
        u64::from(sender) < N_SHARDS && u64::from(key) < N_KEYS
    }

    /// Handles one inbound `READ`: resolves `key` across the shards.
    pub fn on_read(&mut self, key: u8) -> bool {
        u64::from(key) < N_KEYS
    }

    /// Resolves `key` across the shards without mutating state.
    pub fn resolve(&self, key: u8) -> ReadResolution {
        if self.key_agrees(key) {
            ReadResolution::Agree(self.value(0, key))
        } else {
            ReadResolution::Split
        }
    }

    /// The canonical per-shard state roots, in shard order.
    pub fn roots(&self) -> Vec<StateRoot> {
        self.stores
            .iter()
            .enumerate()
            .map(|(shard, store)| {
                let mut hasher = RootHasher::new();
                for &value in store {
                    hasher.write_u64(u64::from(value));
                }
                StateRoot::new(format!("shard{shard}"), hasher.finish())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles::roots_agree;

    #[test]
    fn authentic_writes_keep_every_shard_converged() {
        let mut c = ShardCluster::new(ShardexecConfig::default());
        assert!(c.on_write(1, 1, 42));
        for shard in 0..N_SHARDS as u8 {
            assert_eq!(c.value(shard, 1), 42);
        }
        assert!(roots_agree(&c.roots()));
        assert_eq!(c.resolve(1), ReadResolution::Agree(42));
    }

    #[test]
    fn forged_sender_silently_splits_the_named_shard() {
        let mut c = ShardCluster::new(ShardexecConfig::default());
        assert!(c.on_write(2, 0, 7), "the fabric accepts the forged write");
        assert_eq!(c.value(0, 0), 7);
        assert_eq!(c.value(1, 0), 7);
        assert_eq!(c.value(2, 0), 0, "shard2 never originated the write");
        assert!(!roots_agree(&c.roots()), "the replicas silently split");
        assert!(!c.key_agrees(0));
        assert_eq!(c.resolve(0), ReadResolution::Split);
        // No crash, no wedge: later traffic still flows everywhere.
        assert!(c.on_write(1, 1, 9));
        assert_eq!(c.resolve(1), ReadResolution::Agree(9));
    }

    #[test]
    fn patched_build_rejects_unauthenticated_senders() {
        let mut c = ShardCluster::new(ShardexecConfig {
            authenticate_sender: true,
        });
        assert!(!c.on_write(2, 0, 7));
        assert!(roots_agree(&c.roots()));
        assert!(c.on_write(0, 0, 7), "authentic writes still flow");
        assert_eq!(c.resolve(0), ReadResolution::Agree(7));
    }

    #[test]
    fn out_of_domain_writes_are_rejected() {
        let mut c = ShardCluster::new(ShardexecConfig::default());
        assert!(!c.on_write(N_SHARDS as u8, 0, 1));
        assert!(!c.on_write(0, N_KEYS as u8, 1));
        assert!(!c.on_write(0, 0, 0), "zero is the absent marker");
        assert!(!c.on_write(0, 0, MAX_VALUE as u16));
        assert!(roots_agree(&c.roots()));
    }

    #[test]
    fn sync_and_read_validate_but_never_mutate() {
        let mut c = ShardCluster::new(ShardexecConfig::default());
        assert!(c.on_write(2, 1, 5));
        let before = c.clone();
        assert!(c.on_sync(0, 1));
        assert!(!c.on_sync(N_SHARDS as u8, 1));
        assert!(!c.on_sync(0, N_KEYS as u8));
        assert!(c.on_read(1));
        assert!(!c.on_read(N_KEYS as u8));
        assert_eq!(c, before);
    }

    #[test]
    fn roots_are_value_sensitive() {
        let mut a = ShardCluster::new(ShardexecConfig::default());
        let mut b = ShardCluster::new(ShardexecConfig::default());
        assert_eq!(a.roots(), b.roots());
        a.on_write(0, 0, 1);
        b.on_write(0, 0, 2);
        assert_ne!(a.roots()[0], b.roots()[0]);
    }
}
