//! Symbolic node programs: the per-shard write libraries, the
//! anti-entropy and read requesters (clients), and the cluster's ingress
//! handlers (servers).
//!
//! Each shard's write library broadcasts only its *own* writes: the
//! `sender` field is the shard's constant identity and the key is the
//! one the shard owns. The ingress validates the kind, the domains, and
//! the value range, but **not the sender identity**: any in-range
//! `(sender, key)` pair is routed, including pairs no shard's library
//! can produce. Every `WRITE` with `sender != key` is therefore a Trojan
//! — accepted by the fabric, producible by no correct shard — and the
//! concrete cluster silently diverges on it
//! ([`ShardCluster::on_write`](crate::ShardCluster::on_write)).

use achilles_solver::Width;
use achilles_symvm::{NodeProgram, PathResult, SymEnv, SymMessage};

use crate::engine::ShardexecConfig;
use crate::protocol::{
    read_layout, sync_layout, write_layout, MAX_VALUE, N_KEYS, N_SHARDS, READ_KIND, SYNC_KIND,
    WRITE_KIND,
};

/// Shard `shard`'s write library: broadcasts a committed value for the
/// key the shard owns, under the shard's own identity.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardWriteProgram {
    /// The shard this library runs on (`sender == key == shard`).
    pub shard: u64,
}

impl NodeProgram for ShardWriteProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        // The library stamps the shard's identity and key; only the
        // value is caller-controlled (and validated into the non-zero
        // committed range before anything reaches the wire).
        let kind = env.constant(WRITE_KIND, Width::W8);
        let sender = env.constant(self.shard, Width::W8);
        let key = env.constant(self.shard, Width::W8);
        let value = env.sym_in_range("value", Width::W16, 1, MAX_VALUE - 1)?;
        env.send(SymMessage::new(
            write_layout(),
            vec![kind, sender, key, value],
        ));
        Ok(())
    }
}

/// A correct shard initiating an anti-entropy comparison round
/// (all-to-all: any shard may probe any key).
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncRoundProgram;

impl NodeProgram for SyncRoundProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let kind = env.constant(SYNC_KIND, Width::W8);
        let sender = env.sym_in_range("sender", Width::W8, 0, N_SHARDS - 1)?;
        let key = env.sym_in_range("key", Width::W8, 0, N_KEYS - 1)?;
        env.send(SymMessage::new(sync_layout(), vec![kind, sender, key]));
        Ok(())
    }
}

/// A correct client asking the cluster to resolve one key.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadClientProgram;

impl NodeProgram for ReadClientProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let kind = env.constant(READ_KIND, Width::W8);
        let key = env.sym_in_range("key", Width::W8, 0, N_KEYS - 1)?;
        env.send(SymMessage::new(read_layout(), vec![kind, key]));
        Ok(())
    }
}

/// The fabric's inbound `WRITE` (ingress) handler as a node program.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngressWriteProgram {
    /// Patch toggle mirrored from the concrete build.
    pub config: ShardexecConfig,
}

impl NodeProgram for IngressWriteProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&write_layout())?;
        let write_kind = env.constant(WRITE_KIND, Width::W8);
        if !env.if_eq(msg.field("kind"), write_kind)? {
            return Ok(()); // not a write: ignored
        }
        let n_shards = env.constant(N_SHARDS, Width::W8);
        if !env.if_ult(msg.field("sender"), n_shards)? {
            return Ok(()); // unknown shard: rejected
        }
        let n_keys = env.constant(N_KEYS, Width::W8);
        if !env.if_ult(msg.field("key"), n_keys)? {
            return Ok(()); // unknown key: rejected
        }
        let zero = env.constant(0, Width::W16);
        if env.if_eq(msg.field("value"), zero)? {
            return Ok(()); // zero is the absent marker: rejected
        }
        let max_value = env.constant(MAX_VALUE, Width::W16);
        if !env.if_ult(msg.field("value"), max_value)? {
            return Ok(()); // out-of-range value: rejected
        }
        if self.config.authenticate_sender && !env.if_eq(msg.field("sender"), msg.field("key"))? {
            return Ok(()); // patched build: forged sender rejected
        }
        // Security vulnerability (unpatched build): the sender flows
        // unauthenticated into the echo-suppression routing — the named
        // shard is skipped on nothing but the message's say-so.
        env.note("apply on every shard except msg.sender (echo suppression)");
        env.mark_accept();
        Ok(())
    }
}

/// The fabric's write→sync→read session handler: one activation routes a
/// cross-shard write, runs an anti-entropy round over the written key,
/// and resolves it for a client — the cross-message scope in which a
/// forged sender planted at slot 0 surfaces as a split read two messages
/// later.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionShardProgram {
    /// Patch toggle mirrored from the concrete build.
    pub config: ShardexecConfig,
}

impl NodeProgram for SessionShardProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        // Slot 0: the write (same validation as the single-message
        // ingress — and in the patched build only, sender
        // authentication).
        let write = env.recv(&write_layout())?;
        let write_kind = env.constant(WRITE_KIND, Width::W8);
        if !env.if_eq(write.field("kind"), write_kind)? {
            return Ok(());
        }
        let n_shards = env.constant(N_SHARDS, Width::W8);
        if !env.if_ult(write.field("sender"), n_shards)? {
            return Ok(());
        }
        let n_keys = env.constant(N_KEYS, Width::W8);
        if !env.if_ult(write.field("key"), n_keys)? {
            return Ok(());
        }
        let zero = env.constant(0, Width::W16);
        if env.if_eq(write.field("value"), zero)? {
            return Ok(());
        }
        let max_value = env.constant(MAX_VALUE, Width::W16);
        if !env.if_ult(write.field("value"), max_value)? {
            return Ok(());
        }
        if self.config.authenticate_sender
            && !env.if_eq(write.field("sender"), write.field("key"))?
        {
            return Ok(());
        }

        // Slot 1: the anti-entropy round, tied to the written key.
        let sync = env.recv(&sync_layout())?;
        let sync_kind = env.constant(SYNC_KIND, Width::W8);
        if !env.if_eq(sync.field("kind"), sync_kind)? {
            return Ok(());
        }
        if !env.if_ult(sync.field("sender"), n_shards)? {
            return Ok(());
        }
        if !env.if_eq(sync.field("key"), write.field("key"))? {
            return Ok(()); // a round for some other key: not this session
        }

        // Slot 2: the client read of the same key.
        let read = env.recv(&read_layout())?;
        let read_kind = env.constant(READ_KIND, Width::W8);
        if !env.if_eq(read.field("kind"), read_kind)? {
            return Ok(());
        }
        if !env.if_eq(read.field("key"), write.field("key"))? {
            return Ok(()); // a read of some other key: not this session
        }
        // Security vulnerability (unpatched build): the read resolves a
        // key whose replicas a forged sender may have silently split two
        // messages earlier.
        env.note("resolve(read.key) across replicas the write may have split");
        env.mark_accept();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::{Solver, TermPool};
    use achilles_symvm::{Executor, ExploreConfig, Verdict};

    #[test]
    fn each_shard_library_has_one_validated_send_path() {
        for shard in 0..N_SHARDS {
            let mut pool = TermPool::new();
            let mut solver = Solver::new();
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            let result = exec.explore(&ShardWriteProgram { shard });
            let senders: Vec<_> = result.paths.iter().filter(|p| !p.sent.is_empty()).collect();
            assert_eq!(senders.len(), 1);
        }
    }

    #[test]
    fn ingress_has_one_accepting_path_per_build() {
        for (patched, expect_depth) in [(false, 5), (true, 6)] {
            let mut pool = TermPool::new();
            let mut solver = Solver::new();
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            let program = IngressWriteProgram {
                config: ShardexecConfig {
                    authenticate_sender: patched,
                },
            };
            let result = exec.explore(&program);
            let accepting: Vec<_> = result
                .paths
                .iter()
                .filter(|p| p.verdict == Verdict::Accept)
                .collect();
            assert_eq!(accepting.len(), 1);
            assert_eq!(accepting[0].decisions.len(), expect_depth);
        }
    }
}
