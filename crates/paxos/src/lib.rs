//! # achilles-paxos — single-decree Paxos for the local-state modes
//!
//! The paper uses Paxos as its running example for handling *local state*
//! (§3.4): which `Accept` messages an acceptor should take depends on where
//! the protocol is in its three phases. This crate provides
//!
//! * a small, concrete single-decree Paxos (proposer/acceptor) usable over
//!   the simulated network, and
//! * node programs for Achilles analyses in each of the three local-state
//!   modes — Concrete, Constructed Symbolic, and Over-approximate.
//!
//! The paper's scenario: "a Paxos Acceptor has just entered the second
//! phase, with proposed value 7. It should only validate Accept messages for
//! value 7 — any other message is a Trojan message." The acceptor *code* is
//! correct Paxos; the Trojan is scenario-specific, exactly like the Amazon
//! S3 gossip message (§1).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod programs;
pub mod target;

pub use engine::{Acceptor, Ballot, Proposer, Value};
pub use programs::{
    accept_layout, analyze_local_state, AcceptorMode, AcceptorProgram, ProposerMode,
    ProposerProgram, ACCEPT_KIND, MAX_PROPOSABLE_VALUE,
};
pub use target::{PaxosSpec, PaxosTarget};
