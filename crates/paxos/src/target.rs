//! The Paxos [`TargetSpec`] and concrete deployment target.
//!
//! [`PaxosSpec`] packages one local-state scenario (proposer mode ×
//! acceptor mode, §3.4) behind the protocol-agnostic trait;
//! [`PaxosTarget`] — previously hand-assembled in the replay harness —
//! boots a single-decree acceptor mid-scenario per injection.

use std::sync::Arc;

use achilles::{
    wire_to_fields, AchillesConfig, Delivery, InjectionOutcome, LocalStateMode, ReplayTarget,
    SnapshotReplayTarget, TargetSnapshot, TargetSpec,
};
use achilles_symvm::{MessageLayout, NodeProgram};

use crate::engine::{Acceptor, Ballot, Value};
use crate::programs::{
    accept_layout, AcceptorMode, AcceptorProgram, ProposerMode, ProposerProgram, ACCEPT_KIND,
    MAX_PROPOSABLE_VALUE,
};

/// The Paxos deployment target: a single-decree acceptor mid-scenario.
#[derive(Clone, Copy, Debug)]
pub struct PaxosTarget {
    /// The acceptor's promised ballot when the witness arrives.
    pub promised: Ballot,
    /// The proposer scenario defining client generability.
    pub proposer: ProposerMode,
}

impl PaxosTarget {
    /// A target for the acceptor-promised-`promised` scenario with the
    /// given proposer mode.
    pub fn new(promised: Ballot, proposer: ProposerMode) -> PaxosTarget {
        PaxosTarget { promised, proposer }
    }
}

impl ReplayTarget for PaxosTarget {
    fn name(&self) -> &'static str {
        "paxos"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        accept_layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        match self.proposer {
            ProposerMode::Concrete(b, v) => vec![ACCEPT_KIND, u64::from(b), u64::from(v)],
            ProposerMode::Constructed(b) => vec![ACCEPT_KIND, u64::from(b), 0],
        }
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        let [kind, ballot, value] = fields else {
            return false;
        };
        if *kind != ACCEPT_KIND {
            return false;
        }
        match self.proposer {
            ProposerMode::Concrete(b, v) => *ballot == u64::from(b) && *value == u64::from(v),
            ProposerMode::Constructed(b) => {
                *ballot == u64::from(b) && *value <= MAX_PROPOSABLE_VALUE
            }
        }
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut session = PaxosForkSession::boot(*self);
        let mut outcome = InjectionOutcome::default();
        for delivery in deliveries {
            session.deliver(delivery, &mut outcome);
        }
        session.finish(&mut outcome);
        outcome
    }

    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        Some(Box::new(PaxosForkSession::boot(*self)))
    }
}

/// The incremental deployment behind [`PaxosTarget`]: one live acceptor
/// mid-scenario. No end-of-plan step.
struct PaxosForkSession {
    target: PaxosTarget,
    acceptor: Acceptor,
}

impl PaxosForkSession {
    fn boot(target: PaxosTarget) -> PaxosForkSession {
        let mut acceptor = Acceptor::new();
        acceptor.on_prepare(target.promised);
        PaxosForkSession { target, acceptor }
    }
}

impl SnapshotReplayTarget for PaxosForkSession {
    fn deliver(&mut self, delivery: &Delivery, outcome: &mut InjectionOutcome) {
        let (wire, is_witness) = delivery;
        let layout = self.target.layout();
        let Ok(fields) = wire_to_fields(&layout, wire) else {
            outcome.accepted_each.push(false);
            outcome.effects.push("malformed".to_string());
            return;
        };
        let (kind, ballot, value) = (fields[0], fields[1], fields[2]);
        if kind != ACCEPT_KIND {
            outcome.accepted_each.push(false);
            outcome.effects.push("ignored:not-accept".to_string());
            return;
        }
        let accepted = self.acceptor.on_accept(ballot as Ballot, value as Value);
        outcome.accepted_each.push(accepted);
        if !accepted {
            outcome.effects.push("rejected:stale-ballot".to_string());
            return;
        }
        outcome.effects.push("accepted".to_string());
        if *is_witness {
            if u64::from(ballot as Ballot) > u64::from(self.target.promised) {
                outcome.effects.push("ballot:hijacks-round".to_string());
            }
            if value > MAX_PROPOSABLE_VALUE {
                outcome.effects.push("value:out-of-domain".to_string());
            } else if !self.target.client_generable(&fields) {
                outcome.effects.push("value:foreign".to_string());
            }
        }
    }

    fn snapshot(&self) -> TargetSnapshot {
        TargetSnapshot::of(self.acceptor.clone())
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) {
        self.acceptor = snapshot
            .get::<Acceptor>()
            .expect("a paxos fork session restores paxos snapshots")
            .clone();
    }

    fn finish(&mut self, _outcome: &mut InjectionOutcome) {}
}

/// One Paxos local-state scenario as a [`TargetSpec`].
///
/// The default is the paper's running example: the acceptor has just
/// entered phase 2 having promised ballot 5, the proposer proposed value 7
/// — any other accepted message is Trojan *for this scenario*.
#[derive(Clone, Copy, Debug)]
pub struct PaxosSpec {
    /// How the proposer (the client side) obtains the value it proposes.
    pub proposer: ProposerMode,
    /// How the acceptor (the server side) obtains its `promised` state.
    pub acceptor: AcceptorMode,
}

impl Default for PaxosSpec {
    fn default() -> PaxosSpec {
        PaxosSpec {
            proposer: ProposerMode::Concrete(5, 7),
            acceptor: AcceptorMode::Concrete(5),
        }
    }
}

impl PaxosSpec {
    /// A spec for one (proposer, acceptor) scenario.
    pub fn new(proposer: ProposerMode, acceptor: AcceptorMode) -> PaxosSpec {
        PaxosSpec { proposer, acceptor }
    }

    /// The promised ballot the concrete replay acceptor boots with (the
    /// scenario ballot; the over-approximate mode replays at its upper
    /// bound).
    pub fn replay_promised(&self) -> Ballot {
        match self.acceptor {
            AcceptorMode::Concrete(b) => b,
            AcceptorMode::OverApproximate { max } => max,
        }
    }
}

impl TargetSpec for PaxosSpec {
    fn name(&self) -> &'static str {
        "paxos"
    }

    fn description(&self) -> &'static str {
        "single-decree Paxos acceptor mid-scenario: context-dependent Accept Trojans (§3.4)"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        accept_layout()
    }

    fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        vec![Box::new(ProposerProgram {
            mode: self.proposer,
        })]
    }

    fn server(&self) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(AcceptorProgram {
            mode: self.acceptor,
        })
    }

    fn analysis_config(&self) -> AchillesConfig {
        AchillesConfig::verified()
    }

    fn local_state_modes(&self) -> Vec<LocalStateMode> {
        vec![
            LocalStateMode::Concrete,
            LocalStateMode::Constructed,
            LocalStateMode::OverApproximate,
        ]
    }

    fn expected_trojans(&self) -> Option<usize> {
        // One accepting acceptor path, one report.
        Some(1)
    }

    fn replay_target(&self) -> Box<dyn ReplayTarget> {
        Box::new(PaxosTarget::new(self.replay_promised(), self.proposer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles::AchillesSession;

    #[test]
    fn spec_session_matches_the_legacy_pipeline() {
        // Pin the session against the original hand-wired pipeline
        // (rebuilt inline here, since `analyze_local_state` is now itself
        // a session-backed shim and would move in lockstep).
        let legacy = {
            use achilles::{prepare_client_workers, ClientPredicate, FieldMask, Optimizations};
            use achilles_solver::{Solver, TermPool};
            use achilles_symvm::{Executor, ExploreConfig, SymMessage};

            let mut pool = TermPool::new();
            let mut solver = Solver::new();
            let client_result = {
                let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
                exec.explore(&ProposerProgram {
                    mode: ProposerMode::Concrete(5, 7),
                })
            };
            let pred = ClientPredicate::from_exploration(&client_result);
            let server_msg = SymMessage::fresh(&mut pool, &accept_layout(), "msg");
            let prepared = prepare_client_workers(
                &mut pool,
                &mut solver,
                pred,
                server_msg.clone(),
                FieldMask::none(),
                Optimizations::default(),
                1,
            );
            let explore = ExploreConfig {
                recv_script: vec![server_msg],
                ..Default::default()
            };
            achilles::run_trojan_search(
                &mut pool,
                &mut solver,
                &prepared,
                &AcceptorProgram {
                    mode: AcceptorMode::Concrete(5),
                },
                explore,
                Optimizations::default(),
                true,
            )
            .reports
        };
        let spec = PaxosSpec::default();
        let report = AchillesSession::new(&spec).run();
        assert_eq!(report.trojans.len(), legacy.len());
        assert_eq!(report.trojans[0].witness_fields, legacy[0].witness_fields);
        assert_eq!(report.trojans[0].verified, legacy[0].verified);
    }

    #[test]
    fn all_three_local_state_modes_are_declared() {
        let spec = PaxosSpec::default();
        assert_eq!(spec.local_state_modes().len(), 3);
        assert_eq!(spec.replay_promised(), 5);
        let over = PaxosSpec::new(
            ProposerMode::Constructed(5),
            AcceptorMode::OverApproximate { max: 20 },
        );
        assert_eq!(over.replay_promised(), 20);
    }
}
