//! Concrete single-decree Paxos.
//!
//! A textbook Synod implementation small enough to read in one sitting:
//! proposers run phase 1 (prepare/promise) and phase 2 (accept/accepted);
//! acceptors maintain the `promised` ballot and the last accepted
//! `(ballot, value)` pair. Used by the local-state example to build the
//! "just entered phase 2 with value 7" scenario concretely.

/// A ballot (proposal) number.
pub type Ballot = u16;
/// A proposed value.
pub type Value = u32;

/// A Paxos acceptor's durable state plus the protocol rules.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Acceptor {
    /// Highest ballot promised (phase 1).
    pub promised: Option<Ballot>,
    /// Last accepted ballot and value (phase 2).
    pub accepted: Option<(Ballot, Value)>,
}

impl Acceptor {
    /// A fresh acceptor.
    pub fn new() -> Acceptor {
        Acceptor::default()
    }

    /// Phase 1b: handle `prepare(b)`; returns the promise (the previously
    /// accepted pair, if any) or `None` when the ballot is stale.
    pub fn on_prepare(&mut self, ballot: Ballot) -> Option<Option<(Ballot, Value)>> {
        if self.promised.is_some_and(|p| ballot <= p) {
            return None;
        }
        self.promised = Some(ballot);
        Some(self.accepted)
    }

    /// Phase 2b: handle `accept(b, v)`; returns whether it was accepted.
    pub fn on_accept(&mut self, ballot: Ballot, value: Value) -> bool {
        if self.promised.is_some_and(|p| ballot < p) {
            return false;
        }
        self.promised = Some(ballot);
        self.accepted = Some((ballot, value));
        true
    }
}

/// A Paxos proposer driving one ballot.
#[derive(Clone, Debug)]
pub struct Proposer {
    /// This proposer's ballot.
    pub ballot: Ballot,
    /// The value it wants to propose (may be overridden by phase 1).
    pub value: Value,
}

impl Proposer {
    /// A proposer for `ballot` proposing `value`.
    pub fn new(ballot: Ballot, value: Value) -> Proposer {
        Proposer { ballot, value }
    }

    /// Runs both phases against a set of acceptors; returns the chosen value
    /// if a majority accepted.
    pub fn run(&mut self, acceptors: &mut [Acceptor]) -> Option<Value> {
        let majority = acceptors.len() / 2 + 1;
        // Phase 1.
        let mut promises = Vec::new();
        for a in acceptors.iter_mut() {
            if let Some(prev) = a.on_prepare(self.ballot) {
                promises.push(prev);
            }
        }
        if promises.len() < majority {
            return None;
        }
        // Adopt the highest previously accepted value, if any.
        if let Some((_, v)) = promises.iter().flatten().max_by_key(|(b, _)| *b) {
            self.value = *v;
        }
        // Phase 2.
        let accepted = acceptors
            .iter_mut()
            .filter(|_| true)
            .map(|a| a.on_accept(self.ballot, self.value))
            .filter(|ok| *ok)
            .count();
        (accepted >= majority).then_some(self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_proposer_decides() {
        let mut acceptors = vec![Acceptor::new(); 3];
        let mut p = Proposer::new(5, 7);
        assert_eq!(p.run(&mut acceptors), Some(7));
        for a in &acceptors {
            assert_eq!(a.accepted, Some((5, 7)));
        }
    }

    #[test]
    fn stale_ballot_rejected() {
        let mut a = Acceptor::new();
        assert!(a.on_prepare(10).is_some());
        assert!(a.on_prepare(5).is_none(), "lower ballot after promise");
        assert!(!a.on_accept(5, 1), "stale accept refused");
        assert!(a.on_accept(10, 2));
    }

    #[test]
    fn later_proposer_adopts_accepted_value() {
        let mut acceptors = vec![Acceptor::new(); 3];
        let mut p1 = Proposer::new(1, 7);
        assert_eq!(p1.run(&mut acceptors), Some(7));
        // A competing proposer with a different value must converge on 7.
        let mut p2 = Proposer::new(2, 99);
        assert_eq!(
            p2.run(&mut acceptors),
            Some(7),
            "safety: chosen value sticks"
        );
    }

    #[test]
    fn no_majority_no_decision() {
        let mut acceptors = vec![Acceptor::new(); 3];
        // Pre-promise all acceptors to a high ballot.
        for a in acceptors.iter_mut() {
            a.on_prepare(100);
        }
        let mut p = Proposer::new(5, 7);
        assert_eq!(p.run(&mut acceptors), None);
    }
}
