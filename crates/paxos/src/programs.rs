//! Paxos node programs for the three local-state modes (§3.4).
//!
//! The analyzed scenario: an acceptor has promised ballot `B` and the
//! proposer has entered phase 2 proposing some value. The *proposer* is the
//! "client" (it generates `Accept` messages), the *acceptor* is the
//! "server". A correct acceptor takes any `Accept` with a fresh ballot —
//! the value binding lives in the deployment scenario, not in the code —
//! which is precisely why these messages are Trojan *in context*:
//!
//! * **Concrete** ([`ProposerMode::Concrete`] / [`AcceptorMode::Concrete`]):
//!   the deployment proposed value 7 at ballot 5; any accepted message with
//!   another value (or ballot) is Trojan *for this scenario*.
//! * **Constructed Symbolic** ([`ProposerMode::Constructed`]): the proposed
//!   value is a symbolic input validated to `0..=MAX_PROPOSABLE_VALUE`; one
//!   analysis covers every concrete scenario at once, and the provable
//!   Trojans are the out-of-domain values.
//! * **Over-approximate** ([`AcceptorMode::OverApproximate`]): the
//!   acceptor's `promised` state is replaced by an annotated symbolic value
//!   (the paper's `make_symbolic` on local state).

use std::sync::Arc;

use achilles_solver::Width;
use achilles_symvm::{MessageLayout, NodeProgram, PathResult, SymEnv, SymMessage};

use crate::engine::{Ballot, Value};

/// `kind` value of phase-2a (`Accept`) messages.
pub const ACCEPT_KIND: u64 = 3;

/// Upper bound a correct proposer enforces on client-supplied values
/// (the Constructed-Symbolic mode's validation).
pub const MAX_PROPOSABLE_VALUE: u64 = 1000;

/// The `Accept` message layout.
pub fn accept_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("paxos_accept")
        .field("kind", Width::W8)
        .field("ballot", Width::W16)
        .field("value", Width::W32)
        .build()
}

/// How the proposer (the client side) obtains the value it proposes.
#[derive(Clone, Copy, Debug)]
pub enum ProposerMode {
    /// The deployment's concrete phase-2 state: `(ballot, value)`.
    Concrete(Ballot, Value),
    /// The value is symbolic user input validated to
    /// `0..=MAX_PROPOSABLE_VALUE`; the ballot is the concrete round.
    Constructed(Ballot),
}

/// The proposer's phase-2 send as a node program.
#[derive(Clone, Copy, Debug)]
pub struct ProposerProgram {
    /// State mode.
    pub mode: ProposerMode,
}

impl NodeProgram for ProposerProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let (ballot, value) = match self.mode {
            ProposerMode::Concrete(b, v) => {
                let b = env.constant(u64::from(b), Width::W16);
                let v = env.constant(u64::from(v), Width::W32);
                (b, v)
            }
            ProposerMode::Constructed(b) => {
                let ballot = env.constant(u64::from(b), Width::W16);
                let value = env.sym_in_range("proposed", Width::W32, 0, MAX_PROPOSABLE_VALUE)?;
                (ballot, value)
            }
        };
        let kind = env.constant(ACCEPT_KIND, Width::W8);
        env.send(SymMessage::new(accept_layout(), vec![kind, ballot, value]));
        Ok(())
    }
}

/// How the acceptor (the server side) obtains its `promised` state.
#[derive(Clone, Copy, Debug)]
pub enum AcceptorMode {
    /// Concrete promised ballot (run the system up to the scenario, §3.4's
    /// Concrete Local State).
    Concrete(Ballot),
    /// Promised ballot replaced by an annotated symbolic value in
    /// `[0, max]` (§3.4's Over-approximate Symbolic Local State).
    OverApproximate {
        /// Upper bound on the promised ballot.
        max: Ballot,
    },
}

/// The acceptor's phase-2 receive as a node program.
#[derive(Clone, Copy, Debug)]
pub struct AcceptorProgram {
    /// State mode.
    pub mode: AcceptorMode,
}

impl NodeProgram for AcceptorProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&accept_layout())?;
        let kind_ok = env.constant(ACCEPT_KIND, Width::W8);
        if !env.if_eq(msg.field("kind"), kind_ok)? {
            return Ok(()); // not an Accept
        }
        let promised = match self.mode {
            AcceptorMode::Concrete(b) => env.constant(u64::from(b), Width::W16),
            AcceptorMode::OverApproximate { max } => {
                env.sym_in_range("state.promised", Width::W16, 0, u64::from(max))?
            }
        };
        // Paxos rule: accept iff ballot >= promised. The value is taken as
        // is — correct code, scenario-specific Trojans.
        if env.if_ult(msg.field("ballot"), promised)? {
            return Ok(()); // stale ballot
        }
        env.note("accepted");
        env.mark_accept();
        Ok(())
    }
}

/// Runs the full local-state analysis for one (proposer, acceptor) scenario:
/// proposer predicate → preprocessing → acceptor Trojan search, optionally
/// fanned out over `workers` work-stealing threads.
///
/// Returns the pool (for rendering witnesses) and the Trojan reports in
/// canonical path order.
///
/// Deprecated shim: delegates to
/// [`AchillesSession`](achilles::AchillesSession) over
/// [`PaxosSpec`](crate::PaxosSpec); prefer driving the session (or the
/// registry) directly in new code.
pub fn analyze_local_state(
    proposer: ProposerMode,
    acceptor: AcceptorMode,
    workers: usize,
) -> (achilles_solver::TermPool, Vec<achilles::TrojanReport>) {
    let spec = crate::target::PaxosSpec::new(proposer, acceptor);
    let mut session = achilles::AchillesSession::new(&spec).workers(workers);
    let report = session.run();
    (session.into_engine().pool, report.trojans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(
        proposer: ProposerMode,
        acceptor: AcceptorMode,
    ) -> (achilles_solver::TermPool, Vec<achilles::TrojanReport>) {
        analyze_local_state(proposer, acceptor, 1)
    }

    #[test]
    fn concrete_scenario_flags_other_values() {
        // Phase 2 entered with (ballot 5, value 7): anything else is Trojan.
        let (_pool, reports) = analyze(ProposerMode::Concrete(5, 7), AcceptorMode::Concrete(5));
        assert_eq!(reports.len(), 1);
        let w = &reports[0].witness_fields;
        // kind, ballot, value — witness differs from (3, 5, 7) in some field
        // while still being accepted (ballot >= 5).
        assert_eq!(w[0], ACCEPT_KIND);
        assert!(w[1] >= 5);
        assert!(
            w[1] != 5 || w[2] != 7,
            "must differ from the one correct message"
        );
        assert!(reports[0].verified);
    }

    #[test]
    fn constructed_mode_covers_all_scenarios_at_once() {
        let (_pool, reports) = analyze(ProposerMode::Constructed(5), AcceptorMode::Concrete(5));
        assert_eq!(reports.len(), 1);
        let w = &reports[0].witness_fields;
        // The provable Trojans are out-of-domain values (or foreign ballots).
        assert!(
            w[2] > MAX_PROPOSABLE_VALUE || w[1] != 5,
            "witness {w:?} must be outside every concrete scenario"
        );
    }

    #[test]
    fn over_approximate_acceptor_state() {
        let (_pool, reports) = analyze(
            ProposerMode::Constructed(5),
            AcceptorMode::OverApproximate { max: 20 },
        );
        assert_eq!(
            reports.len(),
            1,
            "annotated state still admits the analysis"
        );
        assert!(reports[0].verified);
    }

    #[test]
    fn concrete_round_trip_against_engine() {
        // The symbolic acceptor and the concrete engine agree on the rule.
        let mut acc = crate::engine::Acceptor::new();
        acc.on_prepare(5);
        assert!(acc.on_accept(5, 7));
        assert!(!acc.on_accept(4, 9), "stale ballot refused by the engine");
    }
}
