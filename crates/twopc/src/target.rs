//! The 2PC [`TargetSpec`] and concrete deployment target.
//!
//! This is the crate that proves the protocol-agnostic API: everything —
//! symbolic programs, concrete coordinator, replay target, spec — lives
//! here, and the protocol joins discovery, validation, conformance
//! testing, and the bench bins through one registry registration, with
//! zero changes to `achilles-core`, `achilles-replay`, or any driver.

use std::sync::Arc;

use achilles::{
    AchillesConfig, Delivery, InjectionOutcome, ReplayTarget, SessionSlot, SessionSpec,
    SnapshotReplayTarget, TargetSnapshot, TargetSpec, TrojanReport,
};
use achilles_symvm::{MessageLayout, NodeProgram};

use crate::engine::{Coordinator, CoordinatorConfig, Decision, DECISION_TABLE_LEN};
use crate::programs::{
    ControllerProgram, CoordinatorProgram, ParticipantProgram, SessionCoordinatorProgram,
};
use crate::protocol::{
    decide_layout, layout, TwopcDecide, TwopcVote, DECISION_KIND, MAX_TXID, N_PARTICIPANTS,
    VOTE_KIND,
};

/// The 2PC deployment target: a coordinator mid-phase-1, waiting on the
/// last participant's vote for every transaction.
#[derive(Clone, Copy, Debug, Default)]
pub struct TwopcTarget {
    /// Coordinator build (patch toggle must match the analyzed server).
    pub config: CoordinatorConfig,
}

impl TwopcTarget {
    /// A target over the given coordinator build.
    pub fn new(config: CoordinatorConfig) -> TwopcTarget {
        TwopcTarget { config }
    }

    /// Boots the scenario: every participant has a recorded commit vote on
    /// every transaction, so any injected vote overwrites one tally slot
    /// and re-runs the (quorum-complete) decision handler — the injected
    /// byte decides, and an out-of-domain byte detonates the jump table
    /// immediately.
    fn boot(&self) -> Coordinator {
        let mut coordinator = Coordinator::new(self.config);
        for txid in 0..MAX_TXID as u16 {
            for participant in 0..N_PARTICIPANTS as u8 {
                assert!(coordinator.on_vote(txid, participant, 1));
            }
        }
        coordinator
    }
}

impl ReplayTarget for TwopcTarget {
    fn name(&self) -> &'static str {
        "twopc"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        TwopcVote::correct(0, (N_PARTICIPANTS - 1) as u8, true).field_values()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        let [kind, txid, participant, vote] = fields else {
            return false;
        };
        *kind == VOTE_KIND
            && *txid < MAX_TXID
            && *participant < N_PARTICIPANTS
            && *vote < u64::from(DECISION_TABLE_LEN)
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut session = TwopcForkSession::boot(self.boot());
        let mut outcome = InjectionOutcome::default();
        for delivery in deliveries {
            session.deliver(delivery, &mut outcome);
        }
        session.finish(&mut outcome);
        outcome
    }

    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        Some(Box::new(TwopcForkSession::boot(self.boot())))
    }
}

/// The incremental deployment behind [`TwopcTarget`]: the quorum-complete
/// coordinator plus the tracked witness transaction; `finish` performs the
/// final decision read.
struct TwopcForkSession {
    coordinator: Coordinator,
    witness_tx: Option<u16>,
}

impl TwopcForkSession {
    fn boot(coordinator: Coordinator) -> TwopcForkSession {
        TwopcForkSession {
            coordinator,
            witness_tx: None,
        }
    }
}

impl SnapshotReplayTarget for TwopcForkSession {
    fn deliver(&mut self, delivery: &Delivery, outcome: &mut InjectionOutcome) {
        let (wire, is_witness) = delivery;
        let Ok(vote) = TwopcVote::from_wire(wire) else {
            outcome.accepted_each.push(false);
            outcome.effects.push("malformed".to_string());
            return;
        };
        if u64::from(vote.kind) != VOTE_KIND {
            outcome.accepted_each.push(false);
            outcome.effects.push("ignored:not-vote".to_string());
            return;
        }
        let crashed_before = self.coordinator.crashed();
        let accepted = self
            .coordinator
            .on_vote(vote.txid, vote.participant, vote.vote);
        outcome.accepted_each.push(accepted);
        if !accepted {
            outcome.effects.push(if crashed_before {
                "rejected:coordinator-wedged".to_string()
            } else {
                "rejected:validation".to_string()
            });
            return;
        }
        if *is_witness {
            self.witness_tx = Some(vote.txid);
        }
        if self.coordinator.crashed() && !crashed_before {
            outcome.effects.push("crash:decision-jump-oob".to_string());
        }
    }

    fn snapshot(&self) -> TargetSnapshot {
        TargetSnapshot::of((self.coordinator.clone(), self.witness_tx))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) {
        let (coordinator, witness_tx) = snapshot
            .get::<(Coordinator, Option<u16>)>()
            .expect("a 2PC fork session restores 2PC snapshots");
        self.coordinator = coordinator.clone();
        self.witness_tx = *witness_tx;
    }

    fn finish(&mut self, outcome: &mut InjectionOutcome) {
        if let Some(txid) = self.witness_tx {
            let decision = match self.coordinator.decide(txid) {
                Decision::Pending => "decision:pending",
                Decision::Commit => "decision:commit",
                Decision::Abort => "decision:abort",
            };
            outcome.effects.push(decision.to_string());
            if self.coordinator.crashed() && self.coordinator.decide(txid) == Decision::Commit {
                // The quorum that "committed" includes a vote no participant
                // cast: the transaction outcome is forged.
                outcome.effects.push("decision:forged-quorum".to_string());
            }
        }
    }
}

/// The 2PC session deployment: a *fresh* coordinator (no recorded votes),
/// processing a VOTE then a DECIDE in one session — the stateful scenario
/// where an out-of-domain vote is recorded without incident and detonates
/// only when the finalize request walks the tally.
///
/// Deliveries are parsed by their kind byte (votes and finalize requests
/// share the wire's first field).
#[derive(Clone, Copy, Debug, Default)]
pub struct TwopcSessionTarget {
    /// Coordinator build (patch toggle must match the analyzed server).
    pub config: CoordinatorConfig,
}

impl TwopcSessionTarget {
    /// A session target over the given coordinator build.
    pub fn new(config: CoordinatorConfig) -> TwopcSessionTarget {
        TwopcSessionTarget { config }
    }

    fn decide_generable(fields: &[u64]) -> bool {
        let [kind, txid, outcome] = fields else {
            return false;
        };
        *kind == DECISION_KIND && *txid < MAX_TXID && *outcome < u64::from(DECISION_TABLE_LEN)
    }
}

impl ReplayTarget for TwopcSessionTarget {
    fn name(&self) -> &'static str {
        "twopc"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        TwopcVote::correct(0, 0, true).field_values()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        TwopcTarget::default().client_generable(fields)
    }

    fn slot_layouts(&self) -> Vec<Arc<MessageLayout>> {
        vec![layout(), decide_layout()]
    }

    fn slot_benign_fields(&self, slot: usize) -> Vec<u64> {
        if slot == 0 {
            TwopcVote::correct(0, 0, true).field_values()
        } else {
            TwopcDecide::correct(0, true).field_values()
        }
    }

    fn slot_generable(&self, slot: usize, fields: &[u64]) -> bool {
        if slot == 0 {
            self.client_generable(fields)
        } else {
            TwopcSessionTarget::decide_generable(fields)
        }
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut session = TwopcSessionForkSession::boot(self.config);
        let mut outcome = InjectionOutcome::default();
        for delivery in deliveries {
            session.deliver(delivery, &mut outcome);
        }
        session.finish(&mut outcome);
        outcome
    }

    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        Some(Box::new(TwopcSessionForkSession::boot(self.config)))
    }
}

/// The incremental deployment behind [`TwopcSessionTarget`]: a fresh
/// coordinator dispatching on the kind byte, plus the tracked witness
/// transaction; `finish` reads the witness transaction's decision.
struct TwopcSessionForkSession {
    coordinator: Coordinator,
    witness_tx: Option<u16>,
}

impl TwopcSessionForkSession {
    fn boot(config: CoordinatorConfig) -> TwopcSessionForkSession {
        TwopcSessionForkSession {
            coordinator: Coordinator::new(config),
            witness_tx: None,
        }
    }
}

impl SnapshotReplayTarget for TwopcSessionForkSession {
    fn deliver(&mut self, delivery: &Delivery, outcome: &mut InjectionOutcome) {
        let (wire, is_witness) = delivery;
        let coordinator = &mut self.coordinator;
        let crashed_before = coordinator.crashed();
        match wire.first().map(|&k| u64::from(k)) {
            Some(VOTE_KIND) => {
                let Ok(vote) = TwopcVote::from_wire(wire) else {
                    outcome.accepted_each.push(false);
                    outcome.effects.push("malformed".to_string());
                    return;
                };
                let accepted = coordinator.on_vote(vote.txid, vote.participant, vote.vote);
                outcome.accepted_each.push(accepted);
                if !accepted {
                    outcome.effects.push(if crashed_before {
                        "rejected:coordinator-wedged".to_string()
                    } else {
                        "rejected:validation".to_string()
                    });
                    return;
                }
                if *is_witness {
                    self.witness_tx = Some(vote.txid);
                }
                if coordinator.crashed() && !crashed_before {
                    outcome.effects.push("crash:decision-jump-oob".to_string());
                }
            }
            Some(DECISION_KIND) => {
                let Ok(decide) = TwopcDecide::from_wire(wire) else {
                    outcome.accepted_each.push(false);
                    outcome.effects.push("malformed".to_string());
                    return;
                };
                let poisoned = coordinator.tally_poisoned(decide.txid);
                let accepted = coordinator.on_decide(decide.txid, decide.outcome);
                outcome.accepted_each.push(accepted);
                if !accepted {
                    outcome.effects.push(if crashed_before {
                        "rejected:coordinator-wedged".to_string()
                    } else {
                        "rejected:validation".to_string()
                    });
                    return;
                }
                if coordinator.crashed() && !crashed_before {
                    outcome.effects.push("crash:decide-jump-oob".to_string());
                    if poisoned {
                        // The implicit interaction: the crash was armed
                        // by a vote recorded messages earlier.
                        outcome.effects.push("tally:poisoned".to_string());
                    }
                }
            }
            _ => {
                outcome.accepted_each.push(false);
                outcome.effects.push("ignored:unknown-kind".to_string());
            }
        }
    }

    fn snapshot(&self) -> TargetSnapshot {
        TargetSnapshot::of((self.coordinator.clone(), self.witness_tx))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) {
        let (coordinator, witness_tx) = snapshot
            .get::<(Coordinator, Option<u16>)>()
            .expect("a 2PC session restores 2PC snapshots");
        self.coordinator = coordinator.clone();
        self.witness_tx = *witness_tx;
    }

    fn finish(&mut self, outcome: &mut InjectionOutcome) {
        if let Some(txid) = self.witness_tx {
            let decision = match self.coordinator.decide(txid) {
                Decision::Pending => "decision:pending",
                Decision::Commit => "decision:commit",
                Decision::Abort => "decision:abort",
            };
            outcome.effects.push(decision.to_string());
        }
    }
}

/// The two-phase-commit protocol as a [`TargetSpec`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TwopcSpec {
    /// The coordinator build under analysis (and replay).
    pub config: CoordinatorConfig,
}

impl TwopcSpec {
    /// A spec over the given coordinator build.
    pub fn new(config: CoordinatorConfig) -> TwopcSpec {
        TwopcSpec { config }
    }

    /// The patched build (vote domain validated): expects zero Trojans.
    pub fn patched() -> TwopcSpec {
        TwopcSpec::new(CoordinatorConfig {
            validate_vote_domain: true,
        })
    }
}

impl TargetSpec for TwopcSpec {
    fn name(&self) -> &'static str {
        "twopc"
    }

    fn description(&self) -> &'static str {
        "two-phase-commit coordinator: unvalidated vote byte crashes the decision logic"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        layout()
    }

    fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        vec![Box::new(ParticipantProgram)]
    }

    fn server(&self) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(CoordinatorProgram {
            config: self.config,
        })
    }

    fn analysis_config(&self) -> AchillesConfig {
        AchillesConfig::verified()
    }

    fn expected_trojans(&self) -> Option<usize> {
        // One accepting coordinator path; the patched build closes it.
        if self.config.validate_vote_domain {
            Some(0)
        } else {
            Some(1)
        }
    }

    fn classify(&self, report: &TrojanReport) -> String {
        let vote = TwopcVote::from_field_values(&report.witness_fields).vote;
        if vote >= DECISION_TABLE_LEN {
            "vote-domain".to_string()
        } else {
            "other".to_string()
        }
    }

    fn replay_target(&self) -> Box<dyn ReplayTarget> {
        Box::new(TwopcTarget::new(self.config))
    }

    fn sessions(&self) -> Vec<SessionSpec> {
        vec![SessionSpec::new(
            "vote-decide",
            vec![
                SessionSlot::new("vote", layout(), vec![0]),
                SessionSlot::new("decide", decide_layout(), vec![1]),
            ],
        )
        // One accepting session path; the patched build closes both the
        // vote-domain and outcome-domain windows.
        .expecting(if self.config.validate_vote_domain {
            0
        } else {
            1
        })]
    }

    fn session_clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        vec![Box::new(ParticipantProgram), Box::new(ControllerProgram)]
    }

    fn session_server(&self, _name: &str) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(SessionCoordinatorProgram {
            config: self.config,
        })
    }

    fn session_replay_target(&self, _name: &str) -> Box<dyn ReplayTarget> {
        Box::new(TwopcSessionTarget::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles::AchillesSession;

    #[test]
    fn session_discovers_the_vote_domain_trojan() {
        let spec = TwopcSpec::default();
        let report = AchillesSession::new(&spec).run();
        assert_eq!(Some(report.trojans.len()), spec.expected_trojans());
        let t = &report.trojans[0];
        assert!(t.verified, "witness re-verified against the participant");
        let vote = TwopcVote::from_field_values(&t.witness_fields);
        assert_eq!(u64::from(vote.kind), VOTE_KIND);
        assert!(u64::from(vote.txid) < MAX_TXID);
        assert!(u64::from(vote.participant) < N_PARTICIPANTS);
        assert!(
            vote.vote >= DECISION_TABLE_LEN,
            "the only un-generable accepted field is an out-of-domain vote: {vote:?}"
        );
        assert_eq!(spec.classify(t), "vote-domain");
    }

    #[test]
    fn patched_build_is_trojan_free() {
        let spec = TwopcSpec::patched();
        let report = AchillesSession::new(&spec).run();
        assert_eq!(report.trojans.len(), 0, "the domain check closes the bug");
    }

    #[test]
    fn discovery_is_worker_count_invariant() {
        let spec = TwopcSpec::default();
        let seq = AchillesSession::new(&spec).run();
        let par = AchillesSession::new(&spec).workers(4).run();
        assert_eq!(
            seq.trojans
                .iter()
                .map(|t| t.witness_fields.clone())
                .collect::<Vec<_>>(),
            par.trojans
                .iter()
                .map(|t| t.witness_fields.clone())
                .collect::<Vec<_>>()
        );
        assert_eq!(seq.server_paths, par.server_paths);
    }

    #[test]
    fn declared_session_finds_the_vote_decide_trojan_with_slot_attribution() {
        let spec = TwopcSpec::default();
        let mut session = AchillesSession::new(&spec);
        let reports = session.run_sessions();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.session, "vote-decide");
        assert_eq!(Some(r.trojans.len()), r.expected_trojans);
        assert_eq!(
            r.trojan_slots[0],
            vec![0, 1],
            "both the vote byte and the outcome byte host Trojans"
        );
        let parts = r.split_fields(&r.trojans[0].witness_fields);
        let vote = TwopcVote::from_field_values(&parts[0]);
        let decide = TwopcDecide::from_field_values(&parts[1]);
        assert!(vote.vote >= DECISION_TABLE_LEN, "forged vote byte");
        assert_eq!(
            vote.txid, decide.txid,
            "the finalize targets the poisoned transaction"
        );

        // Patched build: both windows close.
        let patched = TwopcSpec::patched();
        let reports = AchillesSession::new(&patched).run_sessions();
        assert_eq!(reports[0].trojans.len(), 0);
    }

    #[test]
    fn session_poison_detonates_at_decide_time() {
        // The implicit interaction, concretely: the poisoned vote is
        // accepted without incident, and the coordinator only crashes when
        // the finalize request walks the tally one message later.
        let target = TwopcSessionTarget::default();
        let vote = TwopcVote {
            kind: VOTE_KIND as u8,
            txid: 4,
            participant: 1,
            vote: 0x77,
        };
        let decide = TwopcDecide::correct(4, true);
        let outcome = target.inject(&[(vote.to_wire(), true), (decide.to_wire(), true)]);
        assert_eq!(outcome.accepted_each, vec![true, true]);
        assert!(outcome
            .effects
            .contains(&"crash:decide-jump-oob".to_string()));
        assert!(outcome.effects.contains(&"tally:poisoned".to_string()));
        assert!(!target.slot_generable(0, &vote.field_values()));
        assert!(target.slot_generable(1, &decide.field_values()));

        // A fully benign session decides nothing unusual.
        let benign_vote = TwopcVote::correct(4, 1, true);
        let outcome = target.inject(&[(benign_vote.to_wire(), true), (decide.to_wire(), true)]);
        assert_eq!(outcome.accepted_each, vec![true, true]);
        assert!(!outcome.effects.iter().any(|e| e.starts_with("crash:")));
    }

    #[test]
    fn target_confirms_and_crashes_on_the_witness() {
        let target = TwopcTarget::default();
        let trojan = TwopcVote {
            kind: VOTE_KIND as u8,
            txid: 2,
            participant: 2,
            vote: 0x77,
        };
        let outcome = target.inject(&[(trojan.to_wire(), true)]);
        assert_eq!(outcome.accepted_each, vec![true]);
        assert!(outcome
            .effects
            .contains(&"crash:decision-jump-oob".to_string()));
        assert!(outcome
            .effects
            .contains(&"decision:forged-quorum".to_string()));
        assert!(!target.client_generable(&trojan.field_values()));

        // A benign final commit vote decides cleanly.
        let benign = TwopcVote::correct(2, 2, true);
        let outcome = target.inject(&[(benign.to_wire(), true)]);
        assert_eq!(outcome.accepted_each, vec![true]);
        assert!(outcome.effects.contains(&"decision:commit".to_string()));
        assert!(target.client_generable(&benign.field_values()));
    }
}
