//! The concrete 2PC coordinator: deterministic vote tallying with the
//! crashable decision logic the symbolic model abstracts.
//!
//! The coordinator records phase-1 votes per transaction and decides when
//! every participant has voted. The vulnerable build mirrors the real-world
//! pattern the Trojan exploits: the decision handler uses the raw vote
//! byte as an index into a two-entry jump table (`decision_table[vote]`),
//! so a vote outside `{0, 1}` — accepted because the inbound validation
//! never checks the domain — sends the decision logic through an
//! out-of-bounds slot and wedges the coordinator.
//!
//! The jump table is indexed **when the decision logic runs**, not when
//! the vote arrives: on the vote that completes a transaction's quorum
//! ([`Coordinator::on_vote`]) and on an explicit finalize request
//! ([`Coordinator::on_decide`]). That timing is what makes the poison an
//! *implicit interaction*: an out-of-domain vote is recorded without
//! incident and detonates messages later, when a quorum completes or a
//! `DECIDE` walks the tally — the session-level failure mode
//! single-message analysis cannot see.

use crate::protocol::{MAX_TXID, N_PARTICIPANTS, VOTE_ABORT};

/// Size of the decision jump table (one slot per legal vote value).
pub const DECISION_TABLE_LEN: u8 = 2;

/// Coordinator configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoordinatorConfig {
    /// Patch for the vote-domain bug: reject votes outside `{0, 1}` at
    /// message validation time, before they reach the decision logic.
    pub validate_vote_domain: bool,
}

/// Phase-2 outcome for one transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Not every participant has voted yet.
    Pending,
    /// All participants voted commit.
    Commit,
    /// At least one participant voted abort.
    Abort,
}

/// A deterministic 2PC coordinator tracking [`MAX_TXID`] transactions.
#[derive(Clone, Debug)]
pub struct Coordinator {
    config: CoordinatorConfig,
    votes: Vec<[Option<u8>; N_PARTICIPANTS as usize]>,
    crashed: bool,
}

impl Coordinator {
    /// A fresh coordinator with no recorded votes.
    pub fn new(config: CoordinatorConfig) -> Coordinator {
        Coordinator {
            config,
            votes: vec![[None; N_PARTICIPANTS as usize]; MAX_TXID as usize],
            crashed: false,
        }
    }

    /// Whether the decision logic has crashed (jump-table out-of-bounds).
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Handles one inbound vote; returns whether the coordinator accepted
    /// (validated and recorded) it.
    ///
    /// A crashed coordinator accepts nothing — the wedge is sticky, which
    /// is exactly the denial-of-service the Trojan buys.
    pub fn on_vote(&mut self, txid: u16, participant: u8, vote: u8) -> bool {
        if self.crashed {
            return false;
        }
        if u64::from(txid) >= MAX_TXID || u64::from(participant) >= N_PARTICIPANTS {
            return false;
        }
        if self.config.validate_vote_domain && vote >= DECISION_TABLE_LEN {
            return false;
        }
        self.votes[txid as usize][participant as usize] = Some(vote);
        // The decision handler runs once the quorum is complete:
        // `decision_table[vote]` over the tally. An out-of-domain byte —
        // whether it arrived now or was recorded messages ago — indexes out
        // of bounds here.
        if self.votes[txid as usize].iter().all(Option::is_some) && self.tally_poisoned(txid) {
            self.crashed = true;
        }
        true
    }

    /// Handles an explicit finalize request for `txid` with the manager's
    /// expected `outcome` byte; returns whether the coordinator accepted
    /// it.
    ///
    /// The vulnerable build indexes `decision_table[outcome]` and walks the
    /// recorded tally (`decision_table[vote]` per vote) without a domain
    /// check, so an out-of-domain outcome byte — or a poisoned vote
    /// recorded earlier in the session — crashes the decision logic here.
    pub fn on_decide(&mut self, txid: u16, outcome: u8) -> bool {
        if self.crashed {
            return false;
        }
        if u64::from(txid) >= MAX_TXID {
            return false;
        }
        if self.config.validate_vote_domain && outcome >= DECISION_TABLE_LEN {
            return false;
        }
        if outcome >= DECISION_TABLE_LEN || self.tally_poisoned(txid) {
            self.crashed = true;
        }
        true
    }

    /// Whether finalizing `txid` would index the decision jump table out
    /// of bounds (some recorded vote is outside the table). An unknown
    /// transaction has no tally and is never poisoned — callers probe this
    /// with raw wire values (e.g. a bit-flipped finalize request) before
    /// validation runs.
    pub fn tally_poisoned(&self, txid: u16) -> bool {
        self.votes
            .get(txid as usize)
            .is_some_and(|slots| slots.iter().flatten().any(|&v| v >= DECISION_TABLE_LEN))
    }

    /// The phase-2 decision for `txid` (any non-abort vote counts as
    /// commit — the `vote != 0` shortcut that pairs with the missing
    /// domain check).
    pub fn decide(&self, txid: u16) -> Decision {
        let Some(slots) = self.votes.get(txid as usize) else {
            return Decision::Pending;
        };
        if slots.iter().any(Option::is_none) {
            return Decision::Pending;
        }
        if slots.iter().flatten().any(|&v| u64::from(v) == VOTE_ABORT) {
            Decision::Abort
        } else {
            Decision::Commit
        }
    }

    /// Votes recorded for `txid`, in participant order.
    pub fn votes(&self, txid: u16) -> &[Option<u8>] {
        &self.votes[txid as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_commit_decides_commit() {
        let mut c = Coordinator::new(CoordinatorConfig::default());
        for p in 0..N_PARTICIPANTS as u8 {
            assert!(c.on_vote(0, p, 1));
        }
        assert_eq!(c.decide(0), Decision::Commit);
        assert!(!c.crashed());
    }

    #[test]
    fn one_abort_vote_aborts() {
        let mut c = Coordinator::new(CoordinatorConfig::default());
        assert!(c.on_vote(1, 0, 1));
        assert!(c.on_vote(1, 1, 0));
        assert!(c.on_vote(1, 2, 1));
        assert_eq!(c.decide(1), Decision::Abort);
    }

    #[test]
    fn out_of_domain_vote_crashes_at_quorum_completion() {
        let mut c = Coordinator::new(CoordinatorConfig::default());
        assert!(c.on_vote(0, 0, 0x77), "validation misses the domain check");
        assert!(
            !c.crashed(),
            "the poison is recorded silently — no quorum yet"
        );
        assert!(c.tally_poisoned(0));
        assert!(c.on_vote(0, 1, 1));
        assert!(c.on_vote(0, 2, 1), "the completing vote is accepted");
        assert!(c.crashed(), "the decision handler indexed out of bounds");
        // The wedge is sticky: later legitimate traffic is lost.
        assert!(!c.on_vote(1, 1, 1));
    }

    #[test]
    fn poisoned_tally_crashes_on_explicit_finalize() {
        // The VOTE→DECIDE interaction: the poison detonates one message
        // later, when the finalize request walks the tally.
        let mut c = Coordinator::new(CoordinatorConfig::default());
        assert!(c.on_vote(3, 0, 0x77));
        assert!(!c.crashed());
        assert!(c.on_decide(3, 1), "the finalize request is accepted");
        assert!(c.crashed(), "…and the tally walk crashed the coordinator");
    }

    #[test]
    fn out_of_domain_outcome_crashes_the_vulnerable_build() {
        let mut c = Coordinator::new(CoordinatorConfig::default());
        assert!(c.on_decide(0, 0x40));
        assert!(c.crashed(), "decision_table[outcome] indexed out of bounds");
    }

    #[test]
    fn patched_build_rejects_out_of_domain_votes_and_outcomes() {
        let mut c = Coordinator::new(CoordinatorConfig {
            validate_vote_domain: true,
        });
        assert!(!c.on_vote(0, 0, 0x77));
        assert!(!c.on_decide(0, 0x77));
        assert!(!c.crashed());
        assert!(c.on_vote(0, 0, 1), "legitimate votes still flow");
        assert!(c.on_decide(0, 1), "legitimate finalizes still flow");
        assert!(!c.crashed());
    }

    #[test]
    fn unknown_tx_and_participant_are_rejected() {
        let mut c = Coordinator::new(CoordinatorConfig::default());
        assert!(!c.on_vote(MAX_TXID as u16, 0, 1));
        assert!(!c.on_vote(0, N_PARTICIPANTS as u8, 1));
    }
}
