//! Symbolic node programs: the participant (client) and the coordinator's
//! vote handler (server).
//!
//! The participant validates everything it sends — transaction id in
//! range, its own participant id, and a vote that is exactly
//! `VOTE_ABORT` or `VOTE_COMMIT`. The coordinator validates the kind, the
//! transaction id, and the participant id, but **not the vote domain**:
//! its decision logic treats any nonzero byte as a commit vote and indexes
//! a two-entry jump table with the raw byte. Every message with
//! `vote ∉ {0, 1}` is therefore a Trojan — accepted by the coordinator,
//! producible by no correct participant — and the concrete build crashes
//! on it ([`Coordinator::on_vote`](crate::Coordinator::on_vote)).

use achilles_solver::Width;
use achilles_symvm::{NodeProgram, PathResult, SymEnv, SymMessage};

use crate::engine::CoordinatorConfig;
use crate::protocol::{
    decide_layout, layout, DECISION_KIND, MAX_TXID, N_PARTICIPANTS, VOTE_COMMIT, VOTE_KIND,
};

/// A correct 2PC participant sending its phase-1 vote.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParticipantProgram;

impl NodeProgram for ParticipantProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        // Symbolic inputs, validated like the participant library
        // validates them before anything reaches the wire.
        let txid = env.sym_in_range("txid", Width::W16, 0, MAX_TXID - 1)?;
        let participant = env.sym_in_range("participant", Width::W8, 0, N_PARTICIPANTS - 1)?;
        let vote = env.sym_in_range("vote", Width::W8, 0, VOTE_COMMIT)?;
        let kind = env.constant(VOTE_KIND, Width::W8);
        env.send(SymMessage::new(
            layout(),
            vec![kind, txid, participant, vote],
        ));
        Ok(())
    }
}

/// The coordinator's inbound vote handler as a node program.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordinatorProgram {
    /// Patch toggle mirrored from the concrete build.
    pub config: CoordinatorConfig,
}

impl NodeProgram for CoordinatorProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&layout())?;
        let vote_kind = env.constant(VOTE_KIND, Width::W8);
        if !env.if_eq(msg.field("kind"), vote_kind)? {
            return Ok(()); // not a vote: ignored
        }
        let max_txid = env.constant(MAX_TXID, Width::W16);
        if !env.if_ult(msg.field("txid"), max_txid)? {
            return Ok(()); // unknown transaction: rejected
        }
        let n_participants = env.constant(N_PARTICIPANTS, Width::W8);
        if !env.if_ult(msg.field("participant"), n_participants)? {
            return Ok(()); // unknown participant: rejected
        }
        if self.config.validate_vote_domain {
            let table_len = env.constant(u64::from(crate::engine::DECISION_TABLE_LEN), Width::W8);
            if !env.if_ult(msg.field("vote"), table_len)? {
                return Ok(()); // patched build: out-of-domain vote rejected
            }
        }
        // Security vulnerability (unpatched build): the vote byte flows
        // unvalidated into `tally[participant] = vote` and the
        // `decision_table[vote]` lookup.
        env.note("tally[msg.participant] = msg.vote; decision_table[msg.vote]");
        env.mark_accept();
        Ok(())
    }
}

/// A correct transaction manager asking the coordinator to finalize a
/// transaction: validated transaction id, outcome restricted to
/// `{abort, commit}`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ControllerProgram;

impl NodeProgram for ControllerProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let txid = env.sym_in_range("txid", Width::W16, 0, MAX_TXID - 1)?;
        let outcome = env.sym_in_range("outcome", Width::W8, 0, VOTE_COMMIT)?;
        let kind = env.constant(DECISION_KIND, Width::W8);
        env.send(SymMessage::new(decide_layout(), vec![kind, txid, outcome]));
        Ok(())
    }
}

/// The coordinator's VOTE→DECIDE session handler: one activation consumes
/// a participant's vote, then the manager's finalize request for the
/// *same* transaction — the cross-message state single-message analysis
/// cannot track.
///
/// Neither the vote byte (slot 0) nor the outcome byte (slot 1) is
/// domain-checked by the vulnerable build, and both flow into the
/// two-entry decision jump table when the finalize runs — so the session
/// is Trojan through either slot, and the slot-0 poison only detonates at
/// slot 1 (see [`Coordinator::on_decide`](crate::Coordinator::on_decide)).
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionCoordinatorProgram {
    /// Patch toggle mirrored from the concrete build.
    pub config: CoordinatorConfig,
}

impl NodeProgram for SessionCoordinatorProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        // Slot 0: the phase-1 vote (same validation as the single-message
        // handler — kind, txid, participant, and in the patched build only,
        // the vote domain).
        let vote = env.recv(&layout())?;
        let vote_kind = env.constant(VOTE_KIND, Width::W8);
        if !env.if_eq(vote.field("kind"), vote_kind)? {
            return Ok(());
        }
        let max_txid = env.constant(MAX_TXID, Width::W16);
        if !env.if_ult(vote.field("txid"), max_txid)? {
            return Ok(());
        }
        let n_participants = env.constant(N_PARTICIPANTS, Width::W8);
        if !env.if_ult(vote.field("participant"), n_participants)? {
            return Ok(());
        }
        let table_len = env.constant(u64::from(crate::engine::DECISION_TABLE_LEN), Width::W8);
        if self.config.validate_vote_domain && !env.if_ult(vote.field("vote"), table_len)? {
            return Ok(());
        }

        // Slot 1: the finalize request, tied to the slot-0 transaction.
        let decide = env.recv(&decide_layout())?;
        let decision_kind = env.constant(DECISION_KIND, Width::W8);
        if !env.if_eq(decide.field("kind"), decision_kind)? {
            return Ok(());
        }
        if !env.if_eq(decide.field("txid"), vote.field("txid"))? {
            return Ok(()); // finalize for a different transaction: ignored
        }
        if self.config.validate_vote_domain && !env.if_ult(decide.field("outcome"), table_len)? {
            return Ok(());
        }
        // Security vulnerability (unpatched build): both the recorded vote
        // byte and the outcome byte index the decision jump table here.
        env.note("decision_table[decide.outcome]; decision_table[tally[vote.participant]]");
        env.mark_accept();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::{Solver, TermPool};
    use achilles_symvm::{Executor, ExploreConfig, Verdict};

    #[test]
    fn participant_has_one_validated_send_path() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&ParticipantProgram);
        let senders: Vec<_> = result.paths.iter().filter(|p| !p.sent.is_empty()).collect();
        assert_eq!(senders.len(), 1);
    }

    #[test]
    fn coordinator_has_one_accepting_path_per_build() {
        for (patched, expect_depth) in [(false, 3), (true, 4)] {
            let mut pool = TermPool::new();
            let mut solver = Solver::new();
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            let program = CoordinatorProgram {
                config: CoordinatorConfig {
                    validate_vote_domain: patched,
                },
            };
            let result = exec.explore(&program);
            let accepting: Vec<_> = result
                .paths
                .iter()
                .filter(|p| p.verdict == Verdict::Accept)
                .collect();
            assert_eq!(accepting.len(), 1);
            assert_eq!(accepting[0].decisions.len(), expect_depth);
        }
    }
}
