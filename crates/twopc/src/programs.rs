//! Symbolic node programs: the participant (client) and the coordinator's
//! vote handler (server).
//!
//! The participant validates everything it sends — transaction id in
//! range, its own participant id, and a vote that is exactly
//! `VOTE_ABORT` or `VOTE_COMMIT`. The coordinator validates the kind, the
//! transaction id, and the participant id, but **not the vote domain**:
//! its decision logic treats any nonzero byte as a commit vote and indexes
//! a two-entry jump table with the raw byte. Every message with
//! `vote ∉ {0, 1}` is therefore a Trojan — accepted by the coordinator,
//! producible by no correct participant — and the concrete build crashes
//! on it ([`Coordinator::on_vote`](crate::Coordinator::on_vote)).

use achilles_solver::Width;
use achilles_symvm::{NodeProgram, PathResult, SymEnv, SymMessage};

use crate::engine::CoordinatorConfig;
use crate::protocol::{layout, MAX_TXID, N_PARTICIPANTS, VOTE_COMMIT, VOTE_KIND};

/// A correct 2PC participant sending its phase-1 vote.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParticipantProgram;

impl NodeProgram for ParticipantProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        // Symbolic inputs, validated like the participant library
        // validates them before anything reaches the wire.
        let txid = env.sym_in_range("txid", Width::W16, 0, MAX_TXID - 1)?;
        let participant = env.sym_in_range("participant", Width::W8, 0, N_PARTICIPANTS - 1)?;
        let vote = env.sym_in_range("vote", Width::W8, 0, VOTE_COMMIT)?;
        let kind = env.constant(VOTE_KIND, Width::W8);
        env.send(SymMessage::new(
            layout(),
            vec![kind, txid, participant, vote],
        ));
        Ok(())
    }
}

/// The coordinator's inbound vote handler as a node program.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordinatorProgram {
    /// Patch toggle mirrored from the concrete build.
    pub config: CoordinatorConfig,
}

impl NodeProgram for CoordinatorProgram {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&layout())?;
        let vote_kind = env.constant(VOTE_KIND, Width::W8);
        if !env.if_eq(msg.field("kind"), vote_kind)? {
            return Ok(()); // not a vote: ignored
        }
        let max_txid = env.constant(MAX_TXID, Width::W16);
        if !env.if_ult(msg.field("txid"), max_txid)? {
            return Ok(()); // unknown transaction: rejected
        }
        let n_participants = env.constant(N_PARTICIPANTS, Width::W8);
        if !env.if_ult(msg.field("participant"), n_participants)? {
            return Ok(()); // unknown participant: rejected
        }
        if self.config.validate_vote_domain {
            let table_len = env.constant(u64::from(crate::engine::DECISION_TABLE_LEN), Width::W8);
            if !env.if_ult(msg.field("vote"), table_len)? {
                return Ok(()); // patched build: out-of-domain vote rejected
            }
        }
        // Security vulnerability (unpatched build): the vote byte flows
        // unvalidated into `tally[participant] = vote` and the
        // `decision_table[vote]` lookup.
        env.note("tally[msg.participant] = msg.vote; decision_table[msg.vote]");
        env.mark_accept();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::{Solver, TermPool};
    use achilles_symvm::{Executor, ExploreConfig, Verdict};

    #[test]
    fn participant_has_one_validated_send_path() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&ParticipantProgram);
        let senders: Vec<_> = result.paths.iter().filter(|p| !p.sent.is_empty()).collect();
        assert_eq!(senders.len(), 1);
    }

    #[test]
    fn coordinator_has_one_accepting_path_per_build() {
        for (patched, expect_depth) in [(false, 3), (true, 4)] {
            let mut pool = TermPool::new();
            let mut solver = Solver::new();
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            let program = CoordinatorProgram {
                config: CoordinatorConfig {
                    validate_vote_domain: patched,
                },
            };
            let result = exec.explore(&program);
            let accepting: Vec<_> = result
                .paths
                .iter()
                .filter(|p| p.verdict == Verdict::Accept)
                .collect();
            assert_eq!(accepting.len(), 1);
            assert_eq!(accepting[0].decisions.len(), expect_depth);
        }
    }
}
