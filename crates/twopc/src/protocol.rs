//! The bounded two-phase-commit vote wire format.
//!
//! Phase 1 of 2PC: every participant sends the coordinator one `VOTE`
//! message for a transaction — `VOTE_COMMIT` (1) if it can commit,
//! `VOTE_ABORT` (0) otherwise. The message is deliberately small (the
//! paper's bounded-protocol methodology): a kind tag, a transaction id, the
//! participant id, and the one-byte vote.

use std::sync::Arc;

use achilles::{fields_to_wire, wire_to_fields, WireError};
use achilles_solver::Width;
use achilles_symvm::MessageLayout;

/// `kind` value of phase-1 `VOTE` messages.
pub const VOTE_KIND: u64 = 1;

/// `kind` value of phase-2 decision messages (coordinator → participants;
/// not part of the analyzed inbound surface, but kept distinct so stray
/// decisions never parse as votes).
pub const DECISION_KIND: u64 = 2;

/// A participant's "I can commit" vote.
pub const VOTE_COMMIT: u64 = 1;

/// A participant's "abort" vote.
pub const VOTE_ABORT: u64 = 0;

/// Number of participants in the modeled deployment.
pub const N_PARTICIPANTS: u64 = 3;

/// Transactions the coordinator tracks (`txid < MAX_TXID`).
pub const MAX_TXID: u64 = 8;

/// The `VOTE` message layout.
pub fn layout() -> Arc<MessageLayout> {
    MessageLayout::builder("twopc_vote")
        .field("kind", Width::W8)
        .field("txid", Width::W16)
        .field("participant", Width::W8)
        .field("vote", Width::W8)
        .build()
}

/// The `DECIDE` message layout (slot 1 of the VOTE→DECIDE session): the
/// transaction manager asks the coordinator to finalize `txid` with an
/// expected `outcome` byte (0 = abort, 1 = commit).
pub fn decide_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("twopc_decide")
        .field("kind", Width::W8)
        .field("txid", Width::W16)
        .field("outcome", Width::W8)
        .build()
}

/// One concrete `DECIDE` message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwopcDecide {
    /// Message kind ([`DECISION_KIND`] for real finalize requests).
    pub kind: u8,
    /// Transaction id to finalize.
    pub txid: u16,
    /// The expected outcome byte (correct managers send only 0 or 1).
    pub outcome: u8,
}

impl TwopcDecide {
    /// A finalize request a correct transaction manager would send.
    pub fn correct(txid: u16, commit: bool) -> TwopcDecide {
        TwopcDecide {
            kind: DECISION_KIND as u8,
            txid,
            outcome: if commit { VOTE_COMMIT } else { VOTE_ABORT } as u8,
        }
    }

    /// Layout-ordered field values.
    pub fn field_values(&self) -> Vec<u64> {
        vec![
            u64::from(self.kind),
            u64::from(self.txid),
            u64::from(self.outcome),
        ]
    }

    /// Rebuilds a decide from layout-ordered field values (truncated to
    /// their wire widths).
    pub fn from_field_values(fields: &[u64]) -> TwopcDecide {
        TwopcDecide {
            kind: fields.first().copied().unwrap_or(0) as u8,
            txid: fields.get(1).copied().unwrap_or(0) as u16,
            outcome: fields.get(2).copied().unwrap_or(0) as u8,
        }
    }

    /// Encodes to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        fields_to_wire(&decide_layout(), &self.field_values())
            .expect("the decide layout is byte-aligned")
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated buffers.
    pub fn from_wire(wire: &[u8]) -> Result<TwopcDecide, WireError> {
        Ok(TwopcDecide::from_field_values(&wire_to_fields(
            &decide_layout(),
            wire,
        )?))
    }
}

/// One concrete `VOTE` message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwopcVote {
    /// Message kind ([`VOTE_KIND`] for real votes).
    pub kind: u8,
    /// Transaction id.
    pub txid: u16,
    /// Sending participant.
    pub participant: u8,
    /// The vote byte (correct participants send only 0 or 1).
    pub vote: u8,
}

impl TwopcVote {
    /// A vote a correct participant would send.
    pub fn correct(txid: u16, participant: u8, commit: bool) -> TwopcVote {
        TwopcVote {
            kind: VOTE_KIND as u8,
            txid,
            participant,
            vote: if commit { VOTE_COMMIT } else { VOTE_ABORT } as u8,
        }
    }

    /// Layout-ordered field values.
    pub fn field_values(&self) -> Vec<u64> {
        vec![
            u64::from(self.kind),
            u64::from(self.txid),
            u64::from(self.participant),
            u64::from(self.vote),
        ]
    }

    /// Rebuilds a vote from layout-ordered field values (fields are
    /// truncated to their wire widths, like the real parser would).
    pub fn from_field_values(fields: &[u64]) -> TwopcVote {
        TwopcVote {
            kind: fields.first().copied().unwrap_or(0) as u8,
            txid: fields.get(1).copied().unwrap_or(0) as u16,
            participant: fields.get(2).copied().unwrap_or(0) as u8,
            vote: fields.get(3).copied().unwrap_or(0) as u8,
        }
    }

    /// Encodes to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        fields_to_wire(&layout(), &self.field_values()).expect("the vote layout is byte-aligned")
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated buffers.
    pub fn from_wire(wire: &[u8]) -> Result<TwopcVote, WireError> {
        Ok(TwopcVote::from_field_values(&wire_to_fields(
            &layout(),
            wire,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        let v = TwopcVote::correct(3, 2, true);
        assert_eq!(TwopcVote::from_wire(&v.to_wire()).unwrap(), v);
        assert_eq!(v.to_wire(), vec![1, 0, 3, 2, 1]);
    }

    #[test]
    fn decide_wire_round_trip() {
        let d = TwopcDecide::correct(5, true);
        assert_eq!(TwopcDecide::from_wire(&d.to_wire()).unwrap(), d);
        assert_eq!(d.to_wire(), vec![2, 0, 5, 1]);
    }

    #[test]
    fn field_round_trip() {
        let v = TwopcVote {
            kind: 1,
            txid: 7,
            participant: 1,
            vote: 0xA0,
        };
        assert_eq!(TwopcVote::from_field_values(&v.field_values()), v);
    }
}
