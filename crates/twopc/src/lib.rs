//! # achilles-twopc — two-phase commit under Achilles
//!
//! A bounded two-phase-commit coordinator with a **vote-domain Trojan**:
//! participants validate their phase-1 vote byte to `{VOTE_ABORT,
//! VOTE_COMMIT}` before sending, but the coordinator's inbound validation
//! checks only the kind, transaction id, and participant id. Its decision
//! logic then treats any nonzero byte as a commit vote *and indexes a
//! two-entry jump table with the raw byte* — so a `VOTE` message carrying
//! `vote ∉ {0, 1}` is accepted, forges a commit quorum, and wedges the
//! coordinator (the crashable decision logic the concrete
//! [`Coordinator`] models).
//!
//! The crate exists to prove the protocol-agnostic [`TargetSpec`] API:
//! symbolic programs ([`programs`]), the concrete engine ([`engine`]), the
//! replay deployment and spec ([`target`]) all live here, and the protocol
//! joins every registry-driven driver — discovery (`--target twopc`),
//! replay validation, the conformance suite, `BENCH_replay.json` — through
//! a single `registry.register(Arc::new(TwopcSpec::default()))` call, with
//! zero changes to `achilles-core`, `achilles-replay`, or the bench bins.
//!
//! ```
//! use achilles::AchillesSession;
//! use achilles_twopc::{TwopcSpec, TwopcVote, DECISION_TABLE_LEN};
//!
//! let spec = TwopcSpec::default();
//! let report = AchillesSession::new(&spec).run();
//! assert_eq!(report.trojans.len(), 1);
//! let vote = TwopcVote::from_field_values(&report.trojans[0].witness_fields);
//! assert!(vote.vote >= DECISION_TABLE_LEN, "an out-of-domain vote byte");
//! ```
//!
//! [`TargetSpec`]: achilles::TargetSpec

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod programs;
pub mod protocol;
pub mod target;

pub use engine::{Coordinator, CoordinatorConfig, Decision, DECISION_TABLE_LEN};
pub use programs::{
    ControllerProgram, CoordinatorProgram, ParticipantProgram, SessionCoordinatorProgram,
};
pub use protocol::{
    decide_layout, layout, TwopcDecide, TwopcVote, DECISION_KIND, MAX_TXID, N_PARTICIPANTS,
    VOTE_ABORT, VOTE_COMMIT, VOTE_KIND,
};
pub use target::{TwopcSessionTarget, TwopcSpec, TwopcTarget};
