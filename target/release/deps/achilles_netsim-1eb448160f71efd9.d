/root/repo/target/release/deps/achilles_netsim-1eb448160f71efd9.d: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

/root/repo/target/release/deps/achilles_netsim-1eb448160f71efd9: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

crates/netsim/src/lib.rs:
crates/netsim/src/bytes.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/fs.rs:
crates/netsim/src/net.rs:
