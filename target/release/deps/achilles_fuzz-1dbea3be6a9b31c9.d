/root/repo/target/release/deps/achilles_fuzz-1dbea3be6a9b31c9.d: crates/fuzz/src/lib.rs

/root/repo/target/release/deps/libachilles_fuzz-1dbea3be6a9b31c9.rlib: crates/fuzz/src/lib.rs

/root/repo/target/release/deps/libachilles_fuzz-1dbea3be6a9b31c9.rmeta: crates/fuzz/src/lib.rs

crates/fuzz/src/lib.rs:
