/root/repo/target/release/deps/ablation_optimizations-f78836de27629b79.d: crates/bench/src/bin/ablation_optimizations.rs

/root/repo/target/release/deps/ablation_optimizations-f78836de27629b79: crates/bench/src/bin/ablation_optimizations.rs

crates/bench/src/bin/ablation_optimizations.rs:
