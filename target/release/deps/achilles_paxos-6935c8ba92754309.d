/root/repo/target/release/deps/achilles_paxos-6935c8ba92754309.d: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

/root/repo/target/release/deps/libachilles_paxos-6935c8ba92754309.rlib: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

/root/repo/target/release/deps/libachilles_paxos-6935c8ba92754309.rmeta: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

crates/paxos/src/lib.rs:
crates/paxos/src/engine.rs:
crates/paxos/src/programs.rs:
