/root/repo/target/release/deps/achilles_xtests-69b153da044d8388.d: crates/xtests/src/lib.rs

/root/repo/target/release/deps/achilles_xtests-69b153da044d8388: crates/xtests/src/lib.rs

crates/xtests/src/lib.rs:
