/root/repo/target/release/deps/fuzzing_comparison-60da481a7d3dbece.d: crates/bench/src/bin/fuzzing_comparison.rs

/root/repo/target/release/deps/fuzzing_comparison-60da481a7d3dbece: crates/bench/src/bin/fuzzing_comparison.rs

crates/bench/src/bin/fuzzing_comparison.rs:
