/root/repo/target/release/deps/pbft_analysis-4f4b577de4bf67d4.d: crates/bench/src/bin/pbft_analysis.rs

/root/repo/target/release/deps/pbft_analysis-4f4b577de4bf67d4: crates/bench/src/bin/pbft_analysis.rs

crates/bench/src/bin/pbft_analysis.rs:
