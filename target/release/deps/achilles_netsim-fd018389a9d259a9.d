/root/repo/target/release/deps/achilles_netsim-fd018389a9d259a9.d: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

/root/repo/target/release/deps/libachilles_netsim-fd018389a9d259a9.rlib: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

/root/repo/target/release/deps/libachilles_netsim-fd018389a9d259a9.rmeta: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

crates/netsim/src/lib.rs:
crates/netsim/src/bytes.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/fs.rs:
crates/netsim/src/net.rs:
