/root/repo/target/release/deps/fig10_discovery-e6406718837c809c.d: crates/bench/src/bin/fig10_discovery.rs

/root/repo/target/release/deps/fig10_discovery-e6406718837c809c: crates/bench/src/bin/fig10_discovery.rs

crates/bench/src/bin/fig10_discovery.rs:
