/root/repo/target/release/deps/props-45a96f4feb3ab4f4.d: crates/symvm/tests/props.rs

/root/repo/target/release/deps/props-45a96f4feb3ab4f4: crates/symvm/tests/props.rs

crates/symvm/tests/props.rs:
