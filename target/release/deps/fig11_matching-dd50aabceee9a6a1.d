/root/repo/target/release/deps/fig11_matching-dd50aabceee9a6a1.d: crates/bench/src/bin/fig11_matching.rs

/root/repo/target/release/deps/fig11_matching-dd50aabceee9a6a1: crates/bench/src/bin/fig11_matching.rs

crates/bench/src/bin/fig11_matching.rs:
