/root/repo/target/release/deps/pipeline_quickstart-9046a02c765e3cc4.d: crates/xtests/../../tests/pipeline_quickstart.rs

/root/repo/target/release/deps/pipeline_quickstart-9046a02c765e3cc4: crates/xtests/../../tests/pipeline_quickstart.rs

crates/xtests/../../tests/pipeline_quickstart.rs:
