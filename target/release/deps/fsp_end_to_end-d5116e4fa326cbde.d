/root/repo/target/release/deps/fsp_end_to_end-d5116e4fa326cbde.d: crates/xtests/../../tests/fsp_end_to_end.rs

/root/repo/target/release/deps/fsp_end_to_end-d5116e4fa326cbde: crates/xtests/../../tests/fsp_end_to_end.rs

crates/xtests/../../tests/fsp_end_to_end.rs:
