/root/repo/target/release/deps/achilles_paxos-c5737c74089525a8.d: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

/root/repo/target/release/deps/achilles_paxos-c5737c74089525a8: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

crates/paxos/src/lib.rs:
crates/paxos/src/engine.rs:
crates/paxos/src/programs.rs:
