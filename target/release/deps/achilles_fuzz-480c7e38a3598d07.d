/root/repo/target/release/deps/achilles_fuzz-480c7e38a3598d07.d: crates/fuzz/src/lib.rs

/root/repo/target/release/deps/achilles_fuzz-480c7e38a3598d07: crates/fuzz/src/lib.rs

crates/fuzz/src/lib.rs:
