/root/repo/target/release/deps/parallel_scaling-a250cc90e89b53c4.d: crates/bench/src/bin/parallel_scaling.rs

/root/repo/target/release/deps/parallel_scaling-a250cc90e89b53c4: crates/bench/src/bin/parallel_scaling.rs

crates/bench/src/bin/parallel_scaling.rs:
