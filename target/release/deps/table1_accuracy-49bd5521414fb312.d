/root/repo/target/release/deps/table1_accuracy-49bd5521414fb312.d: crates/bench/src/bin/table1_accuracy.rs

/root/repo/target/release/deps/table1_accuracy-49bd5521414fb312: crates/bench/src/bin/table1_accuracy.rs

crates/bench/src/bin/table1_accuracy.rs:
