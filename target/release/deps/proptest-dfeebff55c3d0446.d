/root/repo/target/release/deps/proptest-dfeebff55c3d0446.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-dfeebff55c3d0446.rlib: crates/vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-dfeebff55c3d0446.rmeta: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
