/root/repo/target/release/deps/proptest-78b034c10bd2573a.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-78b034c10bd2573a: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
