/root/repo/target/release/deps/table1_accuracy-6750bab4125a0b64.d: crates/bench/src/bin/table1_accuracy.rs

/root/repo/target/release/deps/table1_accuracy-6750bab4125a0b64: crates/bench/src/bin/table1_accuracy.rs

crates/bench/src/bin/table1_accuracy.rs:
