/root/repo/target/release/deps/achilles_pbft-cf7e06d506cbd583.d: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

/root/repo/target/release/deps/achilles_pbft-cf7e06d506cbd583: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

crates/pbft/src/lib.rs:
crates/pbft/src/analysis.rs:
crates/pbft/src/client.rs:
crates/pbft/src/cluster.rs:
crates/pbft/src/mac.rs:
crates/pbft/src/protocol.rs:
crates/pbft/src/replica.rs:
