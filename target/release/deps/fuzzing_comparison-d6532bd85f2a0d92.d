/root/repo/target/release/deps/fuzzing_comparison-d6532bd85f2a0d92.d: crates/bench/src/bin/fuzzing_comparison.rs

/root/repo/target/release/deps/fuzzing_comparison-d6532bd85f2a0d92: crates/bench/src/bin/fuzzing_comparison.rs

crates/bench/src/bin/fuzzing_comparison.rs:
