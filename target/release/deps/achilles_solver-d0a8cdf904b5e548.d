/root/repo/target/release/deps/achilles_solver-d0a8cdf904b5e548.d: crates/solver/src/lib.rs crates/solver/src/atom.rs crates/solver/src/cache.rs crates/solver/src/interval.rs crates/solver/src/model.rs crates/solver/src/pretty.rs crates/solver/src/scoped.rs crates/solver/src/search.rs crates/solver/src/smtlib.rs crates/solver/src/solver.rs crates/solver/src/term.rs crates/solver/src/width.rs

/root/repo/target/release/deps/libachilles_solver-d0a8cdf904b5e548.rlib: crates/solver/src/lib.rs crates/solver/src/atom.rs crates/solver/src/cache.rs crates/solver/src/interval.rs crates/solver/src/model.rs crates/solver/src/pretty.rs crates/solver/src/scoped.rs crates/solver/src/search.rs crates/solver/src/smtlib.rs crates/solver/src/solver.rs crates/solver/src/term.rs crates/solver/src/width.rs

/root/repo/target/release/deps/libachilles_solver-d0a8cdf904b5e548.rmeta: crates/solver/src/lib.rs crates/solver/src/atom.rs crates/solver/src/cache.rs crates/solver/src/interval.rs crates/solver/src/model.rs crates/solver/src/pretty.rs crates/solver/src/scoped.rs crates/solver/src/search.rs crates/solver/src/smtlib.rs crates/solver/src/solver.rs crates/solver/src/term.rs crates/solver/src/width.rs

crates/solver/src/lib.rs:
crates/solver/src/atom.rs:
crates/solver/src/cache.rs:
crates/solver/src/interval.rs:
crates/solver/src/model.rs:
crates/solver/src/pretty.rs:
crates/solver/src/scoped.rs:
crates/solver/src/search.rs:
crates/solver/src/smtlib.rs:
crates/solver/src/solver.rs:
crates/solver/src/term.rs:
crates/solver/src/width.rs:
