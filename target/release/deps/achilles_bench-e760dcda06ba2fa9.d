/root/repo/target/release/deps/achilles_bench-e760dcda06ba2fa9.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libachilles_bench-e760dcda06ba2fa9.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libachilles_bench-e760dcda06ba2fa9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
