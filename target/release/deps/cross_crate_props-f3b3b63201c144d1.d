/root/repo/target/release/deps/cross_crate_props-f3b3b63201c144d1.d: crates/xtests/../../tests/cross_crate_props.rs

/root/repo/target/release/deps/cross_crate_props-f3b3b63201c144d1: crates/xtests/../../tests/cross_crate_props.rs

crates/xtests/../../tests/cross_crate_props.rs:
