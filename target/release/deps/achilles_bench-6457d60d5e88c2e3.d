/root/repo/target/release/deps/achilles_bench-6457d60d5e88c2e3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/achilles_bench-6457d60d5e88c2e3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
