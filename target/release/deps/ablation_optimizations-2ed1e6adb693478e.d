/root/repo/target/release/deps/ablation_optimizations-2ed1e6adb693478e.d: crates/bench/src/bin/ablation_optimizations.rs

/root/repo/target/release/deps/ablation_optimizations-2ed1e6adb693478e: crates/bench/src/bin/ablation_optimizations.rs

crates/bench/src/bin/ablation_optimizations.rs:
