/root/repo/target/release/deps/achilles_examples-7bc2bbaea3df849c.d: crates/examples-app/src/lib.rs

/root/repo/target/release/deps/achilles_examples-7bc2bbaea3df849c: crates/examples-app/src/lib.rs

crates/examples-app/src/lib.rs:
