/root/repo/target/release/deps/achilles_symvm-4b81c576a84fc584.d: crates/symvm/src/lib.rs crates/symvm/src/env.rs crates/symvm/src/executor.rs crates/symvm/src/message.rs crates/symvm/src/observer.rs crates/symvm/src/parallel.rs crates/symvm/src/program.rs crates/symvm/src/record.rs

/root/repo/target/release/deps/libachilles_symvm-4b81c576a84fc584.rlib: crates/symvm/src/lib.rs crates/symvm/src/env.rs crates/symvm/src/executor.rs crates/symvm/src/message.rs crates/symvm/src/observer.rs crates/symvm/src/parallel.rs crates/symvm/src/program.rs crates/symvm/src/record.rs

/root/repo/target/release/deps/libachilles_symvm-4b81c576a84fc584.rmeta: crates/symvm/src/lib.rs crates/symvm/src/env.rs crates/symvm/src/executor.rs crates/symvm/src/message.rs crates/symvm/src/observer.rs crates/symvm/src/parallel.rs crates/symvm/src/program.rs crates/symvm/src/record.rs

crates/symvm/src/lib.rs:
crates/symvm/src/env.rs:
crates/symvm/src/executor.rs:
crates/symvm/src/message.rs:
crates/symvm/src/observer.rs:
crates/symvm/src/parallel.rs:
crates/symvm/src/program.rs:
crates/symvm/src/record.rs:
