/root/repo/target/release/deps/parallel_determinism-a30077b19c799c67.d: crates/xtests/../../tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-a30077b19c799c67: crates/xtests/../../tests/parallel_determinism.rs

crates/xtests/../../tests/parallel_determinism.rs:
