/root/repo/target/release/deps/parallel_scaling-15a90b2a9e3a61fc.d: crates/bench/src/bin/parallel_scaling.rs

/root/repo/target/release/deps/parallel_scaling-15a90b2a9e3a61fc: crates/bench/src/bin/parallel_scaling.rs

crates/bench/src/bin/parallel_scaling.rs:
