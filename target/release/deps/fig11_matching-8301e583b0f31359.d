/root/repo/target/release/deps/fig11_matching-8301e583b0f31359.d: crates/bench/src/bin/fig11_matching.rs

/root/repo/target/release/deps/fig11_matching-8301e583b0f31359: crates/bench/src/bin/fig11_matching.rs

crates/bench/src/bin/fig11_matching.rs:
