/root/repo/target/release/deps/achilles-accb704bdcf9542f.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/diff_matrix.rs crates/core/src/export.rs crates/core/src/negate.rs crates/core/src/pipeline.rs crates/core/src/predicate.rs crates/core/src/refine.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sequence.rs

/root/repo/target/release/deps/achilles-accb704bdcf9542f: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/diff_matrix.rs crates/core/src/export.rs crates/core/src/negate.rs crates/core/src/pipeline.rs crates/core/src/predicate.rs crates/core/src/refine.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sequence.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/diff_matrix.rs:
crates/core/src/export.rs:
crates/core/src/negate.rs:
crates/core/src/pipeline.rs:
crates/core/src/predicate.rs:
crates/core/src/refine.rs:
crates/core/src/report.rs:
crates/core/src/search.rs:
crates/core/src/sequence.rs:
