/root/repo/target/release/deps/props-0a20b81b4759da4d.d: crates/solver/tests/props.rs

/root/repo/target/release/deps/props-0a20b81b4759da4d: crates/solver/tests/props.rs

crates/solver/tests/props.rs:
