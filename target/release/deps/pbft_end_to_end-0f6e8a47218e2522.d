/root/repo/target/release/deps/pbft_end_to_end-0f6e8a47218e2522.d: crates/xtests/../../tests/pbft_end_to_end.rs

/root/repo/target/release/deps/pbft_end_to_end-0f6e8a47218e2522: crates/xtests/../../tests/pbft_end_to_end.rs

crates/xtests/../../tests/pbft_end_to_end.rs:
