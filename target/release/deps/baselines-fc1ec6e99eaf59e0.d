/root/repo/target/release/deps/baselines-fc1ec6e99eaf59e0.d: crates/xtests/../../tests/baselines.rs

/root/repo/target/release/deps/baselines-fc1ec6e99eaf59e0: crates/xtests/../../tests/baselines.rs

crates/xtests/../../tests/baselines.rs:
