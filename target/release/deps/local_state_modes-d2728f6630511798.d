/root/repo/target/release/deps/local_state_modes-d2728f6630511798.d: crates/xtests/../../tests/local_state_modes.rs

/root/repo/target/release/deps/local_state_modes-d2728f6630511798: crates/xtests/../../tests/local_state_modes.rs

crates/xtests/../../tests/local_state_modes.rs:
