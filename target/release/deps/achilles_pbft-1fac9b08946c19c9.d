/root/repo/target/release/deps/achilles_pbft-1fac9b08946c19c9.d: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

/root/repo/target/release/deps/libachilles_pbft-1fac9b08946c19c9.rlib: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

/root/repo/target/release/deps/libachilles_pbft-1fac9b08946c19c9.rmeta: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

crates/pbft/src/lib.rs:
crates/pbft/src/analysis.rs:
crates/pbft/src/client.rs:
crates/pbft/src/cluster.rs:
crates/pbft/src/mac.rs:
crates/pbft/src/protocol.rs:
crates/pbft/src/replica.rs:
