/root/repo/target/release/deps/achilles_fsp-294a6240c7ebfe5a.d: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs

/root/repo/target/release/deps/achilles_fsp-294a6240c7ebfe5a: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs

crates/fsp/src/lib.rs:
crates/fsp/src/analysis.rs:
crates/fsp/src/client.rs:
crates/fsp/src/oracle.rs:
crates/fsp/src/protocol.rs:
crates/fsp/src/runtime.rs:
crates/fsp/src/server.rs:
