/root/repo/target/release/deps/fig10_discovery-89cb07c189ebeb08.d: crates/bench/src/bin/fig10_discovery.rs

/root/repo/target/release/deps/fig10_discovery-89cb07c189ebeb08: crates/bench/src/bin/fig10_discovery.rs

crates/bench/src/bin/fig10_discovery.rs:
