/root/repo/target/release/deps/achilles_examples-33ad95381a5e7393.d: crates/examples-app/src/lib.rs

/root/repo/target/release/deps/libachilles_examples-33ad95381a5e7393.rlib: crates/examples-app/src/lib.rs

/root/repo/target/release/deps/libachilles_examples-33ad95381a5e7393.rmeta: crates/examples-app/src/lib.rs

crates/examples-app/src/lib.rs:
