/root/repo/target/release/deps/achilles_fsp-742a7a4541ec6a3b.d: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs

/root/repo/target/release/deps/libachilles_fsp-742a7a4541ec6a3b.rlib: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs

/root/repo/target/release/deps/libachilles_fsp-742a7a4541ec6a3b.rmeta: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs

crates/fsp/src/lib.rs:
crates/fsp/src/analysis.rs:
crates/fsp/src/client.rs:
crates/fsp/src/oracle.rs:
crates/fsp/src/protocol.rs:
crates/fsp/src/runtime.rs:
crates/fsp/src/server.rs:
