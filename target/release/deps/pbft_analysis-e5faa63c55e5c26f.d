/root/repo/target/release/deps/pbft_analysis-e5faa63c55e5c26f.d: crates/bench/src/bin/pbft_analysis.rs

/root/repo/target/release/deps/pbft_analysis-e5faa63c55e5c26f: crates/bench/src/bin/pbft_analysis.rs

crates/bench/src/bin/pbft_analysis.rs:
