/root/repo/target/release/deps/achilles_xtests-589ba3d7120a201f.d: crates/xtests/src/lib.rs

/root/repo/target/release/deps/libachilles_xtests-589ba3d7120a201f.rlib: crates/xtests/src/lib.rs

/root/repo/target/release/deps/libachilles_xtests-589ba3d7120a201f.rmeta: crates/xtests/src/lib.rs

crates/xtests/src/lib.rs:
