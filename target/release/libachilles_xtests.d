/root/repo/target/release/libachilles_xtests.rlib: /root/repo/crates/xtests/src/lib.rs
