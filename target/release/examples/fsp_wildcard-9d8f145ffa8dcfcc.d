/root/repo/target/release/examples/fsp_wildcard-9d8f145ffa8dcfcc.d: crates/examples-app/../../examples/fsp_wildcard.rs

/root/repo/target/release/examples/fsp_wildcard-9d8f145ffa8dcfcc: crates/examples-app/../../examples/fsp_wildcard.rs

crates/examples-app/../../examples/fsp_wildcard.rs:
