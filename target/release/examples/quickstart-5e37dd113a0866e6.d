/root/repo/target/release/examples/quickstart-5e37dd113a0866e6.d: crates/examples-app/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5e37dd113a0866e6: crates/examples-app/../../examples/quickstart.rs

crates/examples-app/../../examples/quickstart.rs:
