/root/repo/target/release/examples/paxos_local_state-ea2f917e590bbd57.d: crates/examples-app/../../examples/paxos_local_state.rs

/root/repo/target/release/examples/paxos_local_state-ea2f917e590bbd57: crates/examples-app/../../examples/paxos_local_state.rs

crates/examples-app/../../examples/paxos_local_state.rs:
