/root/repo/target/release/examples/annotations_tour-d194f36f78db8f94.d: crates/examples-app/../../examples/annotations_tour.rs

/root/repo/target/release/examples/annotations_tour-d194f36f78db8f94: crates/examples-app/../../examples/annotations_tour.rs

crates/examples-app/../../examples/annotations_tour.rs:
