/root/repo/target/release/examples/session_trojans-340ab7cce79154fa.d: crates/examples-app/../../examples/session_trojans.rs

/root/repo/target/release/examples/session_trojans-340ab7cce79154fa: crates/examples-app/../../examples/session_trojans.rs

crates/examples-app/../../examples/session_trojans.rs:
