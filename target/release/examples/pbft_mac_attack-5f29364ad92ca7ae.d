/root/repo/target/release/examples/pbft_mac_attack-5f29364ad92ca7ae.d: crates/examples-app/../../examples/pbft_mac_attack.rs

/root/repo/target/release/examples/pbft_mac_attack-5f29364ad92ca7ae: crates/examples-app/../../examples/pbft_mac_attack.rs

crates/examples-app/../../examples/pbft_mac_attack.rs:
