/root/repo/target/debug/examples/pbft_mac_attack-3f85fc9ec858128e.d: crates/examples-app/../../examples/pbft_mac_attack.rs

/root/repo/target/debug/examples/libpbft_mac_attack-3f85fc9ec858128e.rmeta: crates/examples-app/../../examples/pbft_mac_attack.rs

crates/examples-app/../../examples/pbft_mac_attack.rs:
