/root/repo/target/debug/examples/session_trojans-ee2b73570a41b03d.d: crates/examples-app/../../examples/session_trojans.rs Cargo.toml

/root/repo/target/debug/examples/libsession_trojans-ee2b73570a41b03d.rmeta: crates/examples-app/../../examples/session_trojans.rs Cargo.toml

crates/examples-app/../../examples/session_trojans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
