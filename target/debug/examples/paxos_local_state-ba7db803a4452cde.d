/root/repo/target/debug/examples/paxos_local_state-ba7db803a4452cde.d: crates/examples-app/../../examples/paxos_local_state.rs

/root/repo/target/debug/examples/paxos_local_state-ba7db803a4452cde: crates/examples-app/../../examples/paxos_local_state.rs

crates/examples-app/../../examples/paxos_local_state.rs:
