/root/repo/target/debug/examples/quickstart-11721fefd2e9301e.d: crates/examples-app/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-11721fefd2e9301e: crates/examples-app/../../examples/quickstart.rs

crates/examples-app/../../examples/quickstart.rs:
