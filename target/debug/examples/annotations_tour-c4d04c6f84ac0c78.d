/root/repo/target/debug/examples/annotations_tour-c4d04c6f84ac0c78.d: crates/examples-app/../../examples/annotations_tour.rs

/root/repo/target/debug/examples/annotations_tour-c4d04c6f84ac0c78: crates/examples-app/../../examples/annotations_tour.rs

crates/examples-app/../../examples/annotations_tour.rs:
