/root/repo/target/debug/examples/session_trojans-1a70b9e127bee365.d: crates/examples-app/../../examples/session_trojans.rs

/root/repo/target/debug/examples/session_trojans-1a70b9e127bee365: crates/examples-app/../../examples/session_trojans.rs

crates/examples-app/../../examples/session_trojans.rs:
