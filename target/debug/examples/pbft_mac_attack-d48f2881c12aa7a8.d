/root/repo/target/debug/examples/pbft_mac_attack-d48f2881c12aa7a8.d: crates/examples-app/../../examples/pbft_mac_attack.rs

/root/repo/target/debug/examples/pbft_mac_attack-d48f2881c12aa7a8: crates/examples-app/../../examples/pbft_mac_attack.rs

crates/examples-app/../../examples/pbft_mac_attack.rs:
