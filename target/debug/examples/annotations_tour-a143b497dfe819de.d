/root/repo/target/debug/examples/annotations_tour-a143b497dfe819de.d: crates/examples-app/../../examples/annotations_tour.rs

/root/repo/target/debug/examples/libannotations_tour-a143b497dfe819de.rmeta: crates/examples-app/../../examples/annotations_tour.rs

crates/examples-app/../../examples/annotations_tour.rs:
