/root/repo/target/debug/examples/quickstart-1193d6f17b811da8.d: crates/examples-app/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-1193d6f17b811da8.rmeta: crates/examples-app/../../examples/quickstart.rs Cargo.toml

crates/examples-app/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
