/root/repo/target/debug/examples/quickstart-55b63f0f395428a4.d: crates/examples-app/../../examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-55b63f0f395428a4.rmeta: crates/examples-app/../../examples/quickstart.rs

crates/examples-app/../../examples/quickstart.rs:
