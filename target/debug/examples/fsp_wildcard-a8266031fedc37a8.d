/root/repo/target/debug/examples/fsp_wildcard-a8266031fedc37a8.d: crates/examples-app/../../examples/fsp_wildcard.rs

/root/repo/target/debug/examples/libfsp_wildcard-a8266031fedc37a8.rmeta: crates/examples-app/../../examples/fsp_wildcard.rs

crates/examples-app/../../examples/fsp_wildcard.rs:
