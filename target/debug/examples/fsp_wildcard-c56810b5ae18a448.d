/root/repo/target/debug/examples/fsp_wildcard-c56810b5ae18a448.d: crates/examples-app/../../examples/fsp_wildcard.rs

/root/repo/target/debug/examples/fsp_wildcard-c56810b5ae18a448: crates/examples-app/../../examples/fsp_wildcard.rs

crates/examples-app/../../examples/fsp_wildcard.rs:
