/root/repo/target/debug/examples/fsp_wildcard-05d3fb5290859c30.d: crates/examples-app/../../examples/fsp_wildcard.rs Cargo.toml

/root/repo/target/debug/examples/libfsp_wildcard-05d3fb5290859c30.rmeta: crates/examples-app/../../examples/fsp_wildcard.rs Cargo.toml

crates/examples-app/../../examples/fsp_wildcard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
