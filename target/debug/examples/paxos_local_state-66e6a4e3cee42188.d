/root/repo/target/debug/examples/paxos_local_state-66e6a4e3cee42188.d: crates/examples-app/../../examples/paxos_local_state.rs Cargo.toml

/root/repo/target/debug/examples/libpaxos_local_state-66e6a4e3cee42188.rmeta: crates/examples-app/../../examples/paxos_local_state.rs Cargo.toml

crates/examples-app/../../examples/paxos_local_state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
