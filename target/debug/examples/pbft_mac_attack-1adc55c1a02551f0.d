/root/repo/target/debug/examples/pbft_mac_attack-1adc55c1a02551f0.d: crates/examples-app/../../examples/pbft_mac_attack.rs Cargo.toml

/root/repo/target/debug/examples/libpbft_mac_attack-1adc55c1a02551f0.rmeta: crates/examples-app/../../examples/pbft_mac_attack.rs Cargo.toml

crates/examples-app/../../examples/pbft_mac_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
