/root/repo/target/debug/examples/annotations_tour-14669a9031538b2c.d: crates/examples-app/../../examples/annotations_tour.rs Cargo.toml

/root/repo/target/debug/examples/libannotations_tour-14669a9031538b2c.rmeta: crates/examples-app/../../examples/annotations_tour.rs Cargo.toml

crates/examples-app/../../examples/annotations_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
