/root/repo/target/debug/examples/session_trojans-76ec89743be25c08.d: crates/examples-app/../../examples/session_trojans.rs

/root/repo/target/debug/examples/libsession_trojans-76ec89743be25c08.rmeta: crates/examples-app/../../examples/session_trojans.rs

crates/examples-app/../../examples/session_trojans.rs:
