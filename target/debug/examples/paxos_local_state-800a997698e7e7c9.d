/root/repo/target/debug/examples/paxos_local_state-800a997698e7e7c9.d: crates/examples-app/../../examples/paxos_local_state.rs

/root/repo/target/debug/examples/libpaxos_local_state-800a997698e7e7c9.rmeta: crates/examples-app/../../examples/paxos_local_state.rs

crates/examples-app/../../examples/paxos_local_state.rs:
