/root/repo/target/debug/libproptest.rlib: /root/repo/crates/vendor/proptest/src/lib.rs
