/root/repo/target/debug/libcriterion.rlib: /root/repo/crates/vendor/criterion/src/lib.rs
