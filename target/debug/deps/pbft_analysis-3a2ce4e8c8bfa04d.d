/root/repo/target/debug/deps/pbft_analysis-3a2ce4e8c8bfa04d.d: crates/bench/benches/pbft_analysis.rs

/root/repo/target/debug/deps/libpbft_analysis-3a2ce4e8c8bfa04d.rmeta: crates/bench/benches/pbft_analysis.rs

crates/bench/benches/pbft_analysis.rs:
