/root/repo/target/debug/deps/achilles_bench-14b1345a2b369f66.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libachilles_bench-14b1345a2b369f66.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
