/root/repo/target/debug/deps/achilles_netsim-9e7b77083b86015f.d: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_netsim-9e7b77083b86015f.rmeta: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/bytes.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/fs.rs:
crates/netsim/src/net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
