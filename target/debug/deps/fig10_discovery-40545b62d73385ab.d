/root/repo/target/debug/deps/fig10_discovery-40545b62d73385ab.d: crates/bench/src/bin/fig10_discovery.rs

/root/repo/target/debug/deps/libfig10_discovery-40545b62d73385ab.rmeta: crates/bench/src/bin/fig10_discovery.rs

crates/bench/src/bin/fig10_discovery.rs:
