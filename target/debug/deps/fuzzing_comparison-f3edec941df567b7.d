/root/repo/target/debug/deps/fuzzing_comparison-f3edec941df567b7.d: crates/bench/src/bin/fuzzing_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfuzzing_comparison-f3edec941df567b7.rmeta: crates/bench/src/bin/fuzzing_comparison.rs Cargo.toml

crates/bench/src/bin/fuzzing_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
