/root/repo/target/debug/deps/achilles_paxos-9db4318b34b83080.d: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

/root/repo/target/debug/deps/libachilles_paxos-9db4318b34b83080.rmeta: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

crates/paxos/src/lib.rs:
crates/paxos/src/engine.rs:
crates/paxos/src/programs.rs:
