/root/repo/target/debug/deps/props-84f2ebfc70eace98.d: crates/symvm/tests/props.rs

/root/repo/target/debug/deps/props-84f2ebfc70eace98: crates/symvm/tests/props.rs

crates/symvm/tests/props.rs:
