/root/repo/target/debug/deps/achilles-583745950134b422.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/diff_matrix.rs crates/core/src/export.rs crates/core/src/negate.rs crates/core/src/pipeline.rs crates/core/src/predicate.rs crates/core/src/refine.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sequence.rs

/root/repo/target/debug/deps/libachilles-583745950134b422.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/diff_matrix.rs crates/core/src/export.rs crates/core/src/negate.rs crates/core/src/pipeline.rs crates/core/src/predicate.rs crates/core/src/refine.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sequence.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/diff_matrix.rs:
crates/core/src/export.rs:
crates/core/src/negate.rs:
crates/core/src/pipeline.rs:
crates/core/src/predicate.rs:
crates/core/src/refine.rs:
crates/core/src/report.rs:
crates/core/src/search.rs:
crates/core/src/sequence.rs:
