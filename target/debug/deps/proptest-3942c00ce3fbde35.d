/root/repo/target/debug/deps/proptest-3942c00ce3fbde35.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-3942c00ce3fbde35: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
