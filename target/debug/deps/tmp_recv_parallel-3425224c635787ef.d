/root/repo/target/debug/deps/tmp_recv_parallel-3425224c635787ef.d: crates/symvm/tests/tmp_recv_parallel.rs

/root/repo/target/debug/deps/tmp_recv_parallel-3425224c635787ef: crates/symvm/tests/tmp_recv_parallel.rs

crates/symvm/tests/tmp_recv_parallel.rs:
