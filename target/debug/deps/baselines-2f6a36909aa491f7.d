/root/repo/target/debug/deps/baselines-2f6a36909aa491f7.d: crates/xtests/../../tests/baselines.rs

/root/repo/target/debug/deps/baselines-2f6a36909aa491f7: crates/xtests/../../tests/baselines.rs

crates/xtests/../../tests/baselines.rs:
