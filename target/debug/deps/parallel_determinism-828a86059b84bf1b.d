/root/repo/target/debug/deps/parallel_determinism-828a86059b84bf1b.d: crates/xtests/../../tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-828a86059b84bf1b.rmeta: crates/xtests/../../tests/parallel_determinism.rs Cargo.toml

crates/xtests/../../tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
