/root/repo/target/debug/deps/fig11_matching-d4b249cdc437fec7.d: crates/bench/src/bin/fig11_matching.rs

/root/repo/target/debug/deps/fig11_matching-d4b249cdc437fec7: crates/bench/src/bin/fig11_matching.rs

crates/bench/src/bin/fig11_matching.rs:
