/root/repo/target/debug/deps/parallel_determinism-2854a37f730fd410.d: crates/xtests/../../tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-2854a37f730fd410: crates/xtests/../../tests/parallel_determinism.rs

crates/xtests/../../tests/parallel_determinism.rs:
