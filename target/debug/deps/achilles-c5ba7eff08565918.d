/root/repo/target/debug/deps/achilles-c5ba7eff08565918.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/diff_matrix.rs crates/core/src/export.rs crates/core/src/negate.rs crates/core/src/pipeline.rs crates/core/src/predicate.rs crates/core/src/refine.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sequence.rs

/root/repo/target/debug/deps/libachilles-c5ba7eff08565918.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/diff_matrix.rs crates/core/src/export.rs crates/core/src/negate.rs crates/core/src/pipeline.rs crates/core/src/predicate.rs crates/core/src/refine.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sequence.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/diff_matrix.rs:
crates/core/src/export.rs:
crates/core/src/negate.rs:
crates/core/src/pipeline.rs:
crates/core/src/predicate.rs:
crates/core/src/refine.rs:
crates/core/src/report.rs:
crates/core/src/search.rs:
crates/core/src/sequence.rs:
