/root/repo/target/debug/deps/achilles_fuzz-b495bae8a838495c.d: crates/fuzz/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_fuzz-b495bae8a838495c.rmeta: crates/fuzz/src/lib.rs Cargo.toml

crates/fuzz/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
