/root/repo/target/debug/deps/baselines-c7ffa218c4aa2fc7.d: crates/xtests/../../tests/baselines.rs

/root/repo/target/debug/deps/libbaselines-c7ffa218c4aa2fc7.rmeta: crates/xtests/../../tests/baselines.rs

crates/xtests/../../tests/baselines.rs:
