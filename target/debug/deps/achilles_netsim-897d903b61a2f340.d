/root/repo/target/debug/deps/achilles_netsim-897d903b61a2f340.d: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

/root/repo/target/debug/deps/libachilles_netsim-897d903b61a2f340.rlib: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

/root/repo/target/debug/deps/libachilles_netsim-897d903b61a2f340.rmeta: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

crates/netsim/src/lib.rs:
crates/netsim/src/bytes.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/fs.rs:
crates/netsim/src/net.rs:
