/root/repo/target/debug/deps/table1_accuracy-8c771c805631d919.d: crates/bench/benches/table1_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_accuracy-8c771c805631d919.rmeta: crates/bench/benches/table1_accuracy.rs Cargo.toml

crates/bench/benches/table1_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
