/root/repo/target/debug/deps/achilles_pbft-1a5662b2a21b291a.d: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

/root/repo/target/debug/deps/libachilles_pbft-1a5662b2a21b291a.rmeta: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

crates/pbft/src/lib.rs:
crates/pbft/src/analysis.rs:
crates/pbft/src/client.rs:
crates/pbft/src/cluster.rs:
crates/pbft/src/mac.rs:
crates/pbft/src/protocol.rs:
crates/pbft/src/replica.rs:
