/root/repo/target/debug/deps/pipeline_quickstart-94f2d634f4b07908.d: crates/xtests/../../tests/pipeline_quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_quickstart-94f2d634f4b07908.rmeta: crates/xtests/../../tests/pipeline_quickstart.rs Cargo.toml

crates/xtests/../../tests/pipeline_quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
