/root/repo/target/debug/deps/achilles_examples-9128a78fd2789bd1.d: crates/examples-app/src/lib.rs

/root/repo/target/debug/deps/achilles_examples-9128a78fd2789bd1: crates/examples-app/src/lib.rs

crates/examples-app/src/lib.rs:
