/root/repo/target/debug/deps/achilles_bench-0bd3c9a31b52ff8b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libachilles_bench-0bd3c9a31b52ff8b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libachilles_bench-0bd3c9a31b52ff8b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
