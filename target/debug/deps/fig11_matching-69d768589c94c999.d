/root/repo/target/debug/deps/fig11_matching-69d768589c94c999.d: crates/bench/src/bin/fig11_matching.rs

/root/repo/target/debug/deps/libfig11_matching-69d768589c94c999.rmeta: crates/bench/src/bin/fig11_matching.rs

crates/bench/src/bin/fig11_matching.rs:
