/root/repo/target/debug/deps/ablation_optimizations-6dc8ab80390b7607.d: crates/bench/src/bin/ablation_optimizations.rs

/root/repo/target/debug/deps/libablation_optimizations-6dc8ab80390b7607.rmeta: crates/bench/src/bin/ablation_optimizations.rs

crates/bench/src/bin/ablation_optimizations.rs:
