/root/repo/target/debug/deps/fig10_discovery-4502ac10a21a4206.d: crates/bench/benches/fig10_discovery.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_discovery-4502ac10a21a4206.rmeta: crates/bench/benches/fig10_discovery.rs Cargo.toml

crates/bench/benches/fig10_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
