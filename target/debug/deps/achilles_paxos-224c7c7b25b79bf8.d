/root/repo/target/debug/deps/achilles_paxos-224c7c7b25b79bf8.d: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

/root/repo/target/debug/deps/libachilles_paxos-224c7c7b25b79bf8.rmeta: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

crates/paxos/src/lib.rs:
crates/paxos/src/engine.rs:
crates/paxos/src/programs.rs:
