/root/repo/target/debug/deps/achilles_paxos-265b749db3658698.d: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

/root/repo/target/debug/deps/achilles_paxos-265b749db3658698: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

crates/paxos/src/lib.rs:
crates/paxos/src/engine.rs:
crates/paxos/src/programs.rs:
