/root/repo/target/debug/deps/achilles_fsp-eb847706df1ddbab.d: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs

/root/repo/target/debug/deps/libachilles_fsp-eb847706df1ddbab.rmeta: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs

crates/fsp/src/lib.rs:
crates/fsp/src/analysis.rs:
crates/fsp/src/client.rs:
crates/fsp/src/oracle.rs:
crates/fsp/src/protocol.rs:
crates/fsp/src/runtime.rs:
crates/fsp/src/server.rs:
