/root/repo/target/debug/deps/local_state_modes-a41c596ea83c58da.d: crates/xtests/../../tests/local_state_modes.rs

/root/repo/target/debug/deps/liblocal_state_modes-a41c596ea83c58da.rmeta: crates/xtests/../../tests/local_state_modes.rs

crates/xtests/../../tests/local_state_modes.rs:
