/root/repo/target/debug/deps/achilles_fuzz-858ca2f24eec0743.d: crates/fuzz/src/lib.rs

/root/repo/target/debug/deps/libachilles_fuzz-858ca2f24eec0743.rmeta: crates/fuzz/src/lib.rs

crates/fuzz/src/lib.rs:
