/root/repo/target/debug/deps/achilles_bench-72347941cb40cc6b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/achilles_bench-72347941cb40cc6b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
