/root/repo/target/debug/deps/table1_accuracy-435d6ed362214968.d: crates/bench/src/bin/table1_accuracy.rs

/root/repo/target/debug/deps/libtable1_accuracy-435d6ed362214968.rmeta: crates/bench/src/bin/table1_accuracy.rs

crates/bench/src/bin/table1_accuracy.rs:
