/root/repo/target/debug/deps/fuzzing_comparison-1757e1f9c7d35152.d: crates/bench/src/bin/fuzzing_comparison.rs

/root/repo/target/debug/deps/fuzzing_comparison-1757e1f9c7d35152: crates/bench/src/bin/fuzzing_comparison.rs

crates/bench/src/bin/fuzzing_comparison.rs:
