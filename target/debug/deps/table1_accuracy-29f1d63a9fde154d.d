/root/repo/target/debug/deps/table1_accuracy-29f1d63a9fde154d.d: crates/bench/src/bin/table1_accuracy.rs

/root/repo/target/debug/deps/libtable1_accuracy-29f1d63a9fde154d.rmeta: crates/bench/src/bin/table1_accuracy.rs

crates/bench/src/bin/table1_accuracy.rs:
