/root/repo/target/debug/deps/cross_crate_props-551e136183a22bda.d: crates/xtests/../../tests/cross_crate_props.rs

/root/repo/target/debug/deps/cross_crate_props-551e136183a22bda: crates/xtests/../../tests/cross_crate_props.rs

crates/xtests/../../tests/cross_crate_props.rs:
