/root/repo/target/debug/deps/pipeline_quickstart-013d9e10bdc8547a.d: crates/xtests/../../tests/pipeline_quickstart.rs

/root/repo/target/debug/deps/libpipeline_quickstart-013d9e10bdc8547a.rmeta: crates/xtests/../../tests/pipeline_quickstart.rs

crates/xtests/../../tests/pipeline_quickstart.rs:
