/root/repo/target/debug/deps/pbft_analysis-cf69cd60ccc03ead.d: crates/bench/src/bin/pbft_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libpbft_analysis-cf69cd60ccc03ead.rmeta: crates/bench/src/bin/pbft_analysis.rs Cargo.toml

crates/bench/src/bin/pbft_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
