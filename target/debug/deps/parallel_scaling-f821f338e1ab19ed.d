/root/repo/target/debug/deps/parallel_scaling-f821f338e1ab19ed.d: crates/bench/src/bin/parallel_scaling.rs

/root/repo/target/debug/deps/parallel_scaling-f821f338e1ab19ed: crates/bench/src/bin/parallel_scaling.rs

crates/bench/src/bin/parallel_scaling.rs:
