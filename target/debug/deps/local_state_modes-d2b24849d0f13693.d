/root/repo/target/debug/deps/local_state_modes-d2b24849d0f13693.d: crates/xtests/../../tests/local_state_modes.rs

/root/repo/target/debug/deps/local_state_modes-d2b24849d0f13693: crates/xtests/../../tests/local_state_modes.rs

crates/xtests/../../tests/local_state_modes.rs:
