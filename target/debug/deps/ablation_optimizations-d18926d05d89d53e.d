/root/repo/target/debug/deps/ablation_optimizations-d18926d05d89d53e.d: crates/bench/src/bin/ablation_optimizations.rs

/root/repo/target/debug/deps/libablation_optimizations-d18926d05d89d53e.rmeta: crates/bench/src/bin/ablation_optimizations.rs

crates/bench/src/bin/ablation_optimizations.rs:
