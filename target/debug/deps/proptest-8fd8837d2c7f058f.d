/root/repo/target/debug/deps/proptest-8fd8837d2c7f058f.d: crates/vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-8fd8837d2c7f058f.rmeta: crates/vendor/proptest/src/lib.rs Cargo.toml

crates/vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
