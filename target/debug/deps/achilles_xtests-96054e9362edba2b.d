/root/repo/target/debug/deps/achilles_xtests-96054e9362edba2b.d: crates/xtests/src/lib.rs

/root/repo/target/debug/deps/achilles_xtests-96054e9362edba2b: crates/xtests/src/lib.rs

crates/xtests/src/lib.rs:
