/root/repo/target/debug/deps/achilles_netsim-8cc76a5f36f37d5c.d: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

/root/repo/target/debug/deps/achilles_netsim-8cc76a5f36f37d5c: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

crates/netsim/src/lib.rs:
crates/netsim/src/bytes.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/fs.rs:
crates/netsim/src/net.rs:
