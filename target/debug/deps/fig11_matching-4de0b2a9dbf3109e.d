/root/repo/target/debug/deps/fig11_matching-4de0b2a9dbf3109e.d: crates/bench/benches/fig11_matching.rs

/root/repo/target/debug/deps/libfig11_matching-4de0b2a9dbf3109e.rmeta: crates/bench/benches/fig11_matching.rs

crates/bench/benches/fig11_matching.rs:
