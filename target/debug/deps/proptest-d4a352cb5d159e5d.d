/root/repo/target/debug/deps/proptest-d4a352cb5d159e5d.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d4a352cb5d159e5d.rmeta: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
