/root/repo/target/debug/deps/props-f7e656b9f6a39ebf.d: crates/solver/tests/props.rs

/root/repo/target/debug/deps/libprops-f7e656b9f6a39ebf.rmeta: crates/solver/tests/props.rs

crates/solver/tests/props.rs:
