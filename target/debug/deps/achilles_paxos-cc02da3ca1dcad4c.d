/root/repo/target/debug/deps/achilles_paxos-cc02da3ca1dcad4c.d: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_paxos-cc02da3ca1dcad4c.rmeta: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs Cargo.toml

crates/paxos/src/lib.rs:
crates/paxos/src/engine.rs:
crates/paxos/src/programs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
