/root/repo/target/debug/deps/pbft_end_to_end-1764dc28a3a75216.d: crates/xtests/../../tests/pbft_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libpbft_end_to_end-1764dc28a3a75216.rmeta: crates/xtests/../../tests/pbft_end_to_end.rs Cargo.toml

crates/xtests/../../tests/pbft_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
