/root/repo/target/debug/deps/achilles_symvm-a8c6f078ad97ce3d.d: crates/symvm/src/lib.rs crates/symvm/src/env.rs crates/symvm/src/executor.rs crates/symvm/src/message.rs crates/symvm/src/observer.rs crates/symvm/src/parallel.rs crates/symvm/src/program.rs crates/symvm/src/record.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_symvm-a8c6f078ad97ce3d.rmeta: crates/symvm/src/lib.rs crates/symvm/src/env.rs crates/symvm/src/executor.rs crates/symvm/src/message.rs crates/symvm/src/observer.rs crates/symvm/src/parallel.rs crates/symvm/src/program.rs crates/symvm/src/record.rs Cargo.toml

crates/symvm/src/lib.rs:
crates/symvm/src/env.rs:
crates/symvm/src/executor.rs:
crates/symvm/src/message.rs:
crates/symvm/src/observer.rs:
crates/symvm/src/parallel.rs:
crates/symvm/src/program.rs:
crates/symvm/src/record.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
