/root/repo/target/debug/deps/table1_accuracy-8f7b3cce3539e90c.d: crates/bench/src/bin/table1_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_accuracy-8f7b3cce3539e90c.rmeta: crates/bench/src/bin/table1_accuracy.rs Cargo.toml

crates/bench/src/bin/table1_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
