/root/repo/target/debug/deps/pbft_analysis-88574f68164cebac.d: crates/bench/src/bin/pbft_analysis.rs

/root/repo/target/debug/deps/libpbft_analysis-88574f68164cebac.rmeta: crates/bench/src/bin/pbft_analysis.rs

crates/bench/src/bin/pbft_analysis.rs:
