/root/repo/target/debug/deps/achilles_bench-cf35ae09e31a223e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_bench-cf35ae09e31a223e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
