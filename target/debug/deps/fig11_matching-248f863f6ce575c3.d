/root/repo/target/debug/deps/fig11_matching-248f863f6ce575c3.d: crates/bench/benches/fig11_matching.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_matching-248f863f6ce575c3.rmeta: crates/bench/benches/fig11_matching.rs Cargo.toml

crates/bench/benches/fig11_matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
