/root/repo/target/debug/deps/achilles_fsp-869659aeaf3c1de5.d: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_fsp-869659aeaf3c1de5.rmeta: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs Cargo.toml

crates/fsp/src/lib.rs:
crates/fsp/src/analysis.rs:
crates/fsp/src/client.rs:
crates/fsp/src/oracle.rs:
crates/fsp/src/protocol.rs:
crates/fsp/src/runtime.rs:
crates/fsp/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
