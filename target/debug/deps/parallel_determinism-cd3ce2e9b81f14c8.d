/root/repo/target/debug/deps/parallel_determinism-cd3ce2e9b81f14c8.d: crates/xtests/../../tests/parallel_determinism.rs

/root/repo/target/debug/deps/libparallel_determinism-cd3ce2e9b81f14c8.rmeta: crates/xtests/../../tests/parallel_determinism.rs

crates/xtests/../../tests/parallel_determinism.rs:
