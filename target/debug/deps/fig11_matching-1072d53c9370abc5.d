/root/repo/target/debug/deps/fig11_matching-1072d53c9370abc5.d: crates/bench/src/bin/fig11_matching.rs

/root/repo/target/debug/deps/libfig11_matching-1072d53c9370abc5.rmeta: crates/bench/src/bin/fig11_matching.rs

crates/bench/src/bin/fig11_matching.rs:
