/root/repo/target/debug/deps/fig10_discovery-f51d6c3b5c0378d6.d: crates/bench/src/bin/fig10_discovery.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_discovery-f51d6c3b5c0378d6.rmeta: crates/bench/src/bin/fig10_discovery.rs Cargo.toml

crates/bench/src/bin/fig10_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
