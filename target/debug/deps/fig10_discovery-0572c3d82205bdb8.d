/root/repo/target/debug/deps/fig10_discovery-0572c3d82205bdb8.d: crates/bench/src/bin/fig10_discovery.rs

/root/repo/target/debug/deps/libfig10_discovery-0572c3d82205bdb8.rmeta: crates/bench/src/bin/fig10_discovery.rs

crates/bench/src/bin/fig10_discovery.rs:
