/root/repo/target/debug/deps/table1_accuracy-a396f7f5da78df26.d: crates/bench/src/bin/table1_accuracy.rs

/root/repo/target/debug/deps/table1_accuracy-a396f7f5da78df26: crates/bench/src/bin/table1_accuracy.rs

crates/bench/src/bin/table1_accuracy.rs:
