/root/repo/target/debug/deps/fig10_discovery-d0b8772f1697ad3c.d: crates/bench/src/bin/fig10_discovery.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_discovery-d0b8772f1697ad3c.rmeta: crates/bench/src/bin/fig10_discovery.rs Cargo.toml

crates/bench/src/bin/fig10_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
