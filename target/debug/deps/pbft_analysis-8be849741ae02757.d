/root/repo/target/debug/deps/pbft_analysis-8be849741ae02757.d: crates/bench/src/bin/pbft_analysis.rs

/root/repo/target/debug/deps/pbft_analysis-8be849741ae02757: crates/bench/src/bin/pbft_analysis.rs

crates/bench/src/bin/pbft_analysis.rs:
