/root/repo/target/debug/deps/achilles_solver-c82e2baad470fa24.d: crates/solver/src/lib.rs crates/solver/src/atom.rs crates/solver/src/cache.rs crates/solver/src/interval.rs crates/solver/src/model.rs crates/solver/src/pretty.rs crates/solver/src/scoped.rs crates/solver/src/search.rs crates/solver/src/smtlib.rs crates/solver/src/solver.rs crates/solver/src/term.rs crates/solver/src/width.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_solver-c82e2baad470fa24.rmeta: crates/solver/src/lib.rs crates/solver/src/atom.rs crates/solver/src/cache.rs crates/solver/src/interval.rs crates/solver/src/model.rs crates/solver/src/pretty.rs crates/solver/src/scoped.rs crates/solver/src/search.rs crates/solver/src/smtlib.rs crates/solver/src/solver.rs crates/solver/src/term.rs crates/solver/src/width.rs Cargo.toml

crates/solver/src/lib.rs:
crates/solver/src/atom.rs:
crates/solver/src/cache.rs:
crates/solver/src/interval.rs:
crates/solver/src/model.rs:
crates/solver/src/pretty.rs:
crates/solver/src/scoped.rs:
crates/solver/src/search.rs:
crates/solver/src/smtlib.rs:
crates/solver/src/solver.rs:
crates/solver/src/term.rs:
crates/solver/src/width.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
