/root/repo/target/debug/deps/pipeline_quickstart-97023eb5bc19a52f.d: crates/xtests/../../tests/pipeline_quickstart.rs

/root/repo/target/debug/deps/pipeline_quickstart-97023eb5bc19a52f: crates/xtests/../../tests/pipeline_quickstart.rs

crates/xtests/../../tests/pipeline_quickstart.rs:
