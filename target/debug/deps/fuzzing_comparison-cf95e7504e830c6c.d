/root/repo/target/debug/deps/fuzzing_comparison-cf95e7504e830c6c.d: crates/bench/src/bin/fuzzing_comparison.rs

/root/repo/target/debug/deps/libfuzzing_comparison-cf95e7504e830c6c.rmeta: crates/bench/src/bin/fuzzing_comparison.rs

crates/bench/src/bin/fuzzing_comparison.rs:
