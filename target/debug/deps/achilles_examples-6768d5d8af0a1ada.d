/root/repo/target/debug/deps/achilles_examples-6768d5d8af0a1ada.d: crates/examples-app/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_examples-6768d5d8af0a1ada.rmeta: crates/examples-app/src/lib.rs Cargo.toml

crates/examples-app/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
