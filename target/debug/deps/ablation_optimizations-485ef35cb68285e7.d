/root/repo/target/debug/deps/ablation_optimizations-485ef35cb68285e7.d: crates/bench/src/bin/ablation_optimizations.rs

/root/repo/target/debug/deps/ablation_optimizations-485ef35cb68285e7: crates/bench/src/bin/ablation_optimizations.rs

crates/bench/src/bin/ablation_optimizations.rs:
