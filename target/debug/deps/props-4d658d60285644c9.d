/root/repo/target/debug/deps/props-4d658d60285644c9.d: crates/symvm/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-4d658d60285644c9.rmeta: crates/symvm/tests/props.rs Cargo.toml

crates/symvm/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
