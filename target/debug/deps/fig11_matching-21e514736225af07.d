/root/repo/target/debug/deps/fig11_matching-21e514736225af07.d: crates/bench/src/bin/fig11_matching.rs

/root/repo/target/debug/deps/fig11_matching-21e514736225af07: crates/bench/src/bin/fig11_matching.rs

crates/bench/src/bin/fig11_matching.rs:
