/root/repo/target/debug/deps/local_state_modes-e401b4406d256a22.d: crates/xtests/../../tests/local_state_modes.rs Cargo.toml

/root/repo/target/debug/deps/liblocal_state_modes-e401b4406d256a22.rmeta: crates/xtests/../../tests/local_state_modes.rs Cargo.toml

crates/xtests/../../tests/local_state_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
