/root/repo/target/debug/deps/table1_accuracy-0b9d3d5e523d0a06.d: crates/bench/benches/table1_accuracy.rs

/root/repo/target/debug/deps/libtable1_accuracy-0b9d3d5e523d0a06.rmeta: crates/bench/benches/table1_accuracy.rs

crates/bench/benches/table1_accuracy.rs:
