/root/repo/target/debug/deps/fuzzing_comparison-4dc5203e61f08643.d: crates/bench/benches/fuzzing_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfuzzing_comparison-4dc5203e61f08643.rmeta: crates/bench/benches/fuzzing_comparison.rs Cargo.toml

crates/bench/benches/fuzzing_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
