/root/repo/target/debug/deps/fsp_end_to_end-06dacd350d44a548.d: crates/xtests/../../tests/fsp_end_to_end.rs

/root/repo/target/debug/deps/libfsp_end_to_end-06dacd350d44a548.rmeta: crates/xtests/../../tests/fsp_end_to_end.rs

crates/xtests/../../tests/fsp_end_to_end.rs:
