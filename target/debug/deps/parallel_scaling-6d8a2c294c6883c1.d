/root/repo/target/debug/deps/parallel_scaling-6d8a2c294c6883c1.d: crates/bench/src/bin/parallel_scaling.rs

/root/repo/target/debug/deps/libparallel_scaling-6d8a2c294c6883c1.rmeta: crates/bench/src/bin/parallel_scaling.rs

crates/bench/src/bin/parallel_scaling.rs:
