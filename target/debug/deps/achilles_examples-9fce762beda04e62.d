/root/repo/target/debug/deps/achilles_examples-9fce762beda04e62.d: crates/examples-app/src/lib.rs

/root/repo/target/debug/deps/libachilles_examples-9fce762beda04e62.rmeta: crates/examples-app/src/lib.rs

crates/examples-app/src/lib.rs:
