/root/repo/target/debug/deps/achilles_fsp-f01ede5166c85ee5.d: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs

/root/repo/target/debug/deps/libachilles_fsp-f01ede5166c85ee5.rlib: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs

/root/repo/target/debug/deps/libachilles_fsp-f01ede5166c85ee5.rmeta: crates/fsp/src/lib.rs crates/fsp/src/analysis.rs crates/fsp/src/client.rs crates/fsp/src/oracle.rs crates/fsp/src/protocol.rs crates/fsp/src/runtime.rs crates/fsp/src/server.rs

crates/fsp/src/lib.rs:
crates/fsp/src/analysis.rs:
crates/fsp/src/client.rs:
crates/fsp/src/oracle.rs:
crates/fsp/src/protocol.rs:
crates/fsp/src/runtime.rs:
crates/fsp/src/server.rs:
