/root/repo/target/debug/deps/achilles_fuzz-f61aa8f64012daab.d: crates/fuzz/src/lib.rs

/root/repo/target/debug/deps/libachilles_fuzz-f61aa8f64012daab.rlib: crates/fuzz/src/lib.rs

/root/repo/target/debug/deps/libachilles_fuzz-f61aa8f64012daab.rmeta: crates/fuzz/src/lib.rs

crates/fuzz/src/lib.rs:
