/root/repo/target/debug/deps/achilles_fuzz-148cb1955c0e9fa2.d: crates/fuzz/src/lib.rs

/root/repo/target/debug/deps/libachilles_fuzz-148cb1955c0e9fa2.rmeta: crates/fuzz/src/lib.rs

crates/fuzz/src/lib.rs:
