/root/repo/target/debug/deps/achilles_solver-17b205b82b595fc6.d: crates/solver/src/lib.rs crates/solver/src/atom.rs crates/solver/src/cache.rs crates/solver/src/interval.rs crates/solver/src/model.rs crates/solver/src/pretty.rs crates/solver/src/scoped.rs crates/solver/src/search.rs crates/solver/src/smtlib.rs crates/solver/src/solver.rs crates/solver/src/term.rs crates/solver/src/width.rs

/root/repo/target/debug/deps/libachilles_solver-17b205b82b595fc6.rmeta: crates/solver/src/lib.rs crates/solver/src/atom.rs crates/solver/src/cache.rs crates/solver/src/interval.rs crates/solver/src/model.rs crates/solver/src/pretty.rs crates/solver/src/scoped.rs crates/solver/src/search.rs crates/solver/src/smtlib.rs crates/solver/src/solver.rs crates/solver/src/term.rs crates/solver/src/width.rs

crates/solver/src/lib.rs:
crates/solver/src/atom.rs:
crates/solver/src/cache.rs:
crates/solver/src/interval.rs:
crates/solver/src/model.rs:
crates/solver/src/pretty.rs:
crates/solver/src/scoped.rs:
crates/solver/src/search.rs:
crates/solver/src/smtlib.rs:
crates/solver/src/solver.rs:
crates/solver/src/term.rs:
crates/solver/src/width.rs:
