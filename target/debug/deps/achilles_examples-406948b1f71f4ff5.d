/root/repo/target/debug/deps/achilles_examples-406948b1f71f4ff5.d: crates/examples-app/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_examples-406948b1f71f4ff5.rmeta: crates/examples-app/src/lib.rs Cargo.toml

crates/examples-app/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
