/root/repo/target/debug/deps/achilles_pbft-d72285d00b85b144.d: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

/root/repo/target/debug/deps/achilles_pbft-d72285d00b85b144: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

crates/pbft/src/lib.rs:
crates/pbft/src/analysis.rs:
crates/pbft/src/client.rs:
crates/pbft/src/cluster.rs:
crates/pbft/src/mac.rs:
crates/pbft/src/protocol.rs:
crates/pbft/src/replica.rs:
