/root/repo/target/debug/deps/cross_crate_props-2eca14fef8a62981.d: crates/xtests/../../tests/cross_crate_props.rs

/root/repo/target/debug/deps/libcross_crate_props-2eca14fef8a62981.rmeta: crates/xtests/../../tests/cross_crate_props.rs

crates/xtests/../../tests/cross_crate_props.rs:
