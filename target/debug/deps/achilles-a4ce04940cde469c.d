/root/repo/target/debug/deps/achilles-a4ce04940cde469c.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/diff_matrix.rs crates/core/src/export.rs crates/core/src/negate.rs crates/core/src/pipeline.rs crates/core/src/predicate.rs crates/core/src/refine.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sequence.rs Cargo.toml

/root/repo/target/debug/deps/libachilles-a4ce04940cde469c.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/diff_matrix.rs crates/core/src/export.rs crates/core/src/negate.rs crates/core/src/pipeline.rs crates/core/src/predicate.rs crates/core/src/refine.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sequence.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/diff_matrix.rs:
crates/core/src/export.rs:
crates/core/src/negate.rs:
crates/core/src/pipeline.rs:
crates/core/src/predicate.rs:
crates/core/src/refine.rs:
crates/core/src/report.rs:
crates/core/src/search.rs:
crates/core/src/sequence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
