/root/repo/target/debug/deps/achilles_examples-86d7befb5479d942.d: crates/examples-app/src/lib.rs

/root/repo/target/debug/deps/libachilles_examples-86d7befb5479d942.rlib: crates/examples-app/src/lib.rs

/root/repo/target/debug/deps/libachilles_examples-86d7befb5479d942.rmeta: crates/examples-app/src/lib.rs

crates/examples-app/src/lib.rs:
