/root/repo/target/debug/deps/pbft_end_to_end-feb559188cb077cb.d: crates/xtests/../../tests/pbft_end_to_end.rs

/root/repo/target/debug/deps/libpbft_end_to_end-feb559188cb077cb.rmeta: crates/xtests/../../tests/pbft_end_to_end.rs

crates/xtests/../../tests/pbft_end_to_end.rs:
