/root/repo/target/debug/deps/achilles_netsim-4e53f1e35688b0e3.d: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

/root/repo/target/debug/deps/libachilles_netsim-4e53f1e35688b0e3.rmeta: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

crates/netsim/src/lib.rs:
crates/netsim/src/bytes.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/fs.rs:
crates/netsim/src/net.rs:
