/root/repo/target/debug/deps/achilles_pbft-9890f0d7bfd0d0c0.d: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_pbft-9890f0d7bfd0d0c0.rmeta: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs Cargo.toml

crates/pbft/src/lib.rs:
crates/pbft/src/analysis.rs:
crates/pbft/src/client.rs:
crates/pbft/src/cluster.rs:
crates/pbft/src/mac.rs:
crates/pbft/src/protocol.rs:
crates/pbft/src/replica.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
