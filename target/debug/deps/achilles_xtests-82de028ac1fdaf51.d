/root/repo/target/debug/deps/achilles_xtests-82de028ac1fdaf51.d: crates/xtests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_xtests-82de028ac1fdaf51.rmeta: crates/xtests/src/lib.rs Cargo.toml

crates/xtests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
