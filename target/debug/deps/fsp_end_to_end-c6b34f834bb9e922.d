/root/repo/target/debug/deps/fsp_end_to_end-c6b34f834bb9e922.d: crates/xtests/../../tests/fsp_end_to_end.rs

/root/repo/target/debug/deps/fsp_end_to_end-c6b34f834bb9e922: crates/xtests/../../tests/fsp_end_to_end.rs

crates/xtests/../../tests/fsp_end_to_end.rs:
