/root/repo/target/debug/deps/pbft_analysis-7428da5ed4c05c70.d: crates/bench/benches/pbft_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libpbft_analysis-7428da5ed4c05c70.rmeta: crates/bench/benches/pbft_analysis.rs Cargo.toml

crates/bench/benches/pbft_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
