/root/repo/target/debug/deps/solver-ffe1ed00df0c9edb.d: crates/bench/benches/solver.rs Cargo.toml

/root/repo/target/debug/deps/libsolver-ffe1ed00df0c9edb.rmeta: crates/bench/benches/solver.rs Cargo.toml

crates/bench/benches/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
