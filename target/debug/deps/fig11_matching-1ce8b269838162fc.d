/root/repo/target/debug/deps/fig11_matching-1ce8b269838162fc.d: crates/bench/src/bin/fig11_matching.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_matching-1ce8b269838162fc.rmeta: crates/bench/src/bin/fig11_matching.rs Cargo.toml

crates/bench/src/bin/fig11_matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
