/root/repo/target/debug/deps/pbft_analysis-d140c61bbc28a91f.d: crates/bench/src/bin/pbft_analysis.rs

/root/repo/target/debug/deps/pbft_analysis-d140c61bbc28a91f: crates/bench/src/bin/pbft_analysis.rs

crates/bench/src/bin/pbft_analysis.rs:
