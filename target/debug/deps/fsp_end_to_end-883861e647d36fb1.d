/root/repo/target/debug/deps/fsp_end_to_end-883861e647d36fb1.d: crates/xtests/../../tests/fsp_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libfsp_end_to_end-883861e647d36fb1.rmeta: crates/xtests/../../tests/fsp_end_to_end.rs Cargo.toml

crates/xtests/../../tests/fsp_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
