/root/repo/target/debug/deps/parallel_scaling-936dea313e61dd27.d: crates/bench/src/bin/parallel_scaling.rs

/root/repo/target/debug/deps/libparallel_scaling-936dea313e61dd27.rmeta: crates/bench/src/bin/parallel_scaling.rs

crates/bench/src/bin/parallel_scaling.rs:
