/root/repo/target/debug/deps/props-588ea76b5a9e6d89.d: crates/solver/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-588ea76b5a9e6d89.rmeta: crates/solver/tests/props.rs Cargo.toml

crates/solver/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
