/root/repo/target/debug/deps/ablation_optimizations-50016e082b769841.d: crates/bench/benches/ablation_optimizations.rs

/root/repo/target/debug/deps/libablation_optimizations-50016e082b769841.rmeta: crates/bench/benches/ablation_optimizations.rs

crates/bench/benches/ablation_optimizations.rs:
