/root/repo/target/debug/deps/ablation_optimizations-7924569a69fc4aa2.d: crates/bench/src/bin/ablation_optimizations.rs

/root/repo/target/debug/deps/ablation_optimizations-7924569a69fc4aa2: crates/bench/src/bin/ablation_optimizations.rs

crates/bench/src/bin/ablation_optimizations.rs:
