/root/repo/target/debug/deps/fig10_discovery-de7bdd03bdfb5c73.d: crates/bench/src/bin/fig10_discovery.rs

/root/repo/target/debug/deps/fig10_discovery-de7bdd03bdfb5c73: crates/bench/src/bin/fig10_discovery.rs

crates/bench/src/bin/fig10_discovery.rs:
