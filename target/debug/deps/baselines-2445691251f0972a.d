/root/repo/target/debug/deps/baselines-2445691251f0972a.d: crates/xtests/../../tests/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-2445691251f0972a.rmeta: crates/xtests/../../tests/baselines.rs Cargo.toml

crates/xtests/../../tests/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
