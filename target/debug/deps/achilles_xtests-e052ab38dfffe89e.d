/root/repo/target/debug/deps/achilles_xtests-e052ab38dfffe89e.d: crates/xtests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_xtests-e052ab38dfffe89e.rmeta: crates/xtests/src/lib.rs Cargo.toml

crates/xtests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
