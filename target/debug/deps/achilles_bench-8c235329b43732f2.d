/root/repo/target/debug/deps/achilles_bench-8c235329b43732f2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libachilles_bench-8c235329b43732f2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
