/root/repo/target/debug/deps/pbft_analysis-a98bbf5544777d8f.d: crates/bench/src/bin/pbft_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libpbft_analysis-a98bbf5544777d8f.rmeta: crates/bench/src/bin/pbft_analysis.rs Cargo.toml

crates/bench/src/bin/pbft_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
