/root/repo/target/debug/deps/achilles_xtests-25d444db724d1b2a.d: crates/xtests/src/lib.rs

/root/repo/target/debug/deps/libachilles_xtests-25d444db724d1b2a.rmeta: crates/xtests/src/lib.rs

crates/xtests/src/lib.rs:
