/root/repo/target/debug/deps/props-f385d3add31d22fd.d: crates/symvm/tests/props.rs

/root/repo/target/debug/deps/libprops-f385d3add31d22fd.rmeta: crates/symvm/tests/props.rs

crates/symvm/tests/props.rs:
