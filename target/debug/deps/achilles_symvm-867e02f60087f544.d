/root/repo/target/debug/deps/achilles_symvm-867e02f60087f544.d: crates/symvm/src/lib.rs crates/symvm/src/env.rs crates/symvm/src/executor.rs crates/symvm/src/message.rs crates/symvm/src/observer.rs crates/symvm/src/parallel.rs crates/symvm/src/program.rs crates/symvm/src/record.rs

/root/repo/target/debug/deps/libachilles_symvm-867e02f60087f544.rlib: crates/symvm/src/lib.rs crates/symvm/src/env.rs crates/symvm/src/executor.rs crates/symvm/src/message.rs crates/symvm/src/observer.rs crates/symvm/src/parallel.rs crates/symvm/src/program.rs crates/symvm/src/record.rs

/root/repo/target/debug/deps/libachilles_symvm-867e02f60087f544.rmeta: crates/symvm/src/lib.rs crates/symvm/src/env.rs crates/symvm/src/executor.rs crates/symvm/src/message.rs crates/symvm/src/observer.rs crates/symvm/src/parallel.rs crates/symvm/src/program.rs crates/symvm/src/record.rs

crates/symvm/src/lib.rs:
crates/symvm/src/env.rs:
crates/symvm/src/executor.rs:
crates/symvm/src/message.rs:
crates/symvm/src/observer.rs:
crates/symvm/src/parallel.rs:
crates/symvm/src/program.rs:
crates/symvm/src/record.rs:
