/root/repo/target/debug/deps/fuzzing_comparison-cd1fb2048adbee3a.d: crates/bench/benches/fuzzing_comparison.rs

/root/repo/target/debug/deps/libfuzzing_comparison-cd1fb2048adbee3a.rmeta: crates/bench/benches/fuzzing_comparison.rs

crates/bench/benches/fuzzing_comparison.rs:
