/root/repo/target/debug/deps/achilles_xtests-e27d2ce3e6513ece.d: crates/xtests/src/lib.rs

/root/repo/target/debug/deps/libachilles_xtests-e27d2ce3e6513ece.rlib: crates/xtests/src/lib.rs

/root/repo/target/debug/deps/libachilles_xtests-e27d2ce3e6513ece.rmeta: crates/xtests/src/lib.rs

crates/xtests/src/lib.rs:
