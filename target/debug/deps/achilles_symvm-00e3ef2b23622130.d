/root/repo/target/debug/deps/achilles_symvm-00e3ef2b23622130.d: crates/symvm/src/lib.rs crates/symvm/src/env.rs crates/symvm/src/executor.rs crates/symvm/src/message.rs crates/symvm/src/observer.rs crates/symvm/src/parallel.rs crates/symvm/src/program.rs crates/symvm/src/record.rs

/root/repo/target/debug/deps/libachilles_symvm-00e3ef2b23622130.rmeta: crates/symvm/src/lib.rs crates/symvm/src/env.rs crates/symvm/src/executor.rs crates/symvm/src/message.rs crates/symvm/src/observer.rs crates/symvm/src/parallel.rs crates/symvm/src/program.rs crates/symvm/src/record.rs

crates/symvm/src/lib.rs:
crates/symvm/src/env.rs:
crates/symvm/src/executor.rs:
crates/symvm/src/message.rs:
crates/symvm/src/observer.rs:
crates/symvm/src/parallel.rs:
crates/symvm/src/program.rs:
crates/symvm/src/record.rs:
