/root/repo/target/debug/deps/props-08eaa0bd70f6057f.d: crates/solver/tests/props.rs

/root/repo/target/debug/deps/props-08eaa0bd70f6057f: crates/solver/tests/props.rs

crates/solver/tests/props.rs:
