/root/repo/target/debug/deps/ablation_optimizations-5e66e030fecc86f6.d: crates/bench/src/bin/ablation_optimizations.rs Cargo.toml

/root/repo/target/debug/deps/libablation_optimizations-5e66e030fecc86f6.rmeta: crates/bench/src/bin/ablation_optimizations.rs Cargo.toml

crates/bench/src/bin/ablation_optimizations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
