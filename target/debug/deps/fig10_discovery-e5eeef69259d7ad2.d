/root/repo/target/debug/deps/fig10_discovery-e5eeef69259d7ad2.d: crates/bench/src/bin/fig10_discovery.rs

/root/repo/target/debug/deps/fig10_discovery-e5eeef69259d7ad2: crates/bench/src/bin/fig10_discovery.rs

crates/bench/src/bin/fig10_discovery.rs:
