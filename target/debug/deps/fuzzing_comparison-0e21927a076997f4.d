/root/repo/target/debug/deps/fuzzing_comparison-0e21927a076997f4.d: crates/bench/src/bin/fuzzing_comparison.rs

/root/repo/target/debug/deps/libfuzzing_comparison-0e21927a076997f4.rmeta: crates/bench/src/bin/fuzzing_comparison.rs

crates/bench/src/bin/fuzzing_comparison.rs:
