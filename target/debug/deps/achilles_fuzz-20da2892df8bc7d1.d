/root/repo/target/debug/deps/achilles_fuzz-20da2892df8bc7d1.d: crates/fuzz/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libachilles_fuzz-20da2892df8bc7d1.rmeta: crates/fuzz/src/lib.rs Cargo.toml

crates/fuzz/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
