/root/repo/target/debug/deps/proptest-eed8312ee960c62a.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-eed8312ee960c62a.rlib: crates/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-eed8312ee960c62a.rmeta: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
