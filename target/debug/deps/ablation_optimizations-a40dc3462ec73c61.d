/root/repo/target/debug/deps/ablation_optimizations-a40dc3462ec73c61.d: crates/bench/benches/ablation_optimizations.rs Cargo.toml

/root/repo/target/debug/deps/libablation_optimizations-a40dc3462ec73c61.rmeta: crates/bench/benches/ablation_optimizations.rs Cargo.toml

crates/bench/benches/ablation_optimizations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
