/root/repo/target/debug/deps/achilles_fuzz-427690268933dc44.d: crates/fuzz/src/lib.rs

/root/repo/target/debug/deps/achilles_fuzz-427690268933dc44: crates/fuzz/src/lib.rs

crates/fuzz/src/lib.rs:
