/root/repo/target/debug/deps/cross_crate_props-81efe37b3a62de31.d: crates/xtests/../../tests/cross_crate_props.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate_props-81efe37b3a62de31.rmeta: crates/xtests/../../tests/cross_crate_props.rs Cargo.toml

crates/xtests/../../tests/cross_crate_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
