/root/repo/target/debug/deps/achilles_examples-1d45f85eb51c6269.d: crates/examples-app/src/lib.rs

/root/repo/target/debug/deps/libachilles_examples-1d45f85eb51c6269.rmeta: crates/examples-app/src/lib.rs

crates/examples-app/src/lib.rs:
