/root/repo/target/debug/deps/proptest-f4ebbd54e3c101fb.d: crates/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f4ebbd54e3c101fb.rmeta: crates/vendor/proptest/src/lib.rs

crates/vendor/proptest/src/lib.rs:
