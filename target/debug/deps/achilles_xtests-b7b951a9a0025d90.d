/root/repo/target/debug/deps/achilles_xtests-b7b951a9a0025d90.d: crates/xtests/src/lib.rs

/root/repo/target/debug/deps/libachilles_xtests-b7b951a9a0025d90.rmeta: crates/xtests/src/lib.rs

crates/xtests/src/lib.rs:
