/root/repo/target/debug/deps/parallel_scaling-3fb53234886c1f66.d: crates/bench/src/bin/parallel_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_scaling-3fb53234886c1f66.rmeta: crates/bench/src/bin/parallel_scaling.rs Cargo.toml

crates/bench/src/bin/parallel_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
