/root/repo/target/debug/deps/achilles_paxos-474bb48d7155ad34.d: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

/root/repo/target/debug/deps/libachilles_paxos-474bb48d7155ad34.rlib: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

/root/repo/target/debug/deps/libachilles_paxos-474bb48d7155ad34.rmeta: crates/paxos/src/lib.rs crates/paxos/src/engine.rs crates/paxos/src/programs.rs

crates/paxos/src/lib.rs:
crates/paxos/src/engine.rs:
crates/paxos/src/programs.rs:
