/root/repo/target/debug/deps/pbft_end_to_end-812a6c4aa23d184a.d: crates/xtests/../../tests/pbft_end_to_end.rs

/root/repo/target/debug/deps/pbft_end_to_end-812a6c4aa23d184a: crates/xtests/../../tests/pbft_end_to_end.rs

crates/xtests/../../tests/pbft_end_to_end.rs:
