/root/repo/target/debug/deps/achilles_netsim-de3427f38b6428b3.d: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

/root/repo/target/debug/deps/libachilles_netsim-de3427f38b6428b3.rmeta: crates/netsim/src/lib.rs crates/netsim/src/bytes.rs crates/netsim/src/clock.rs crates/netsim/src/fs.rs crates/netsim/src/net.rs

crates/netsim/src/lib.rs:
crates/netsim/src/bytes.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/fs.rs:
crates/netsim/src/net.rs:
