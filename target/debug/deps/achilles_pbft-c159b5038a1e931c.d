/root/repo/target/debug/deps/achilles_pbft-c159b5038a1e931c.d: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

/root/repo/target/debug/deps/libachilles_pbft-c159b5038a1e931c.rlib: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

/root/repo/target/debug/deps/libachilles_pbft-c159b5038a1e931c.rmeta: crates/pbft/src/lib.rs crates/pbft/src/analysis.rs crates/pbft/src/client.rs crates/pbft/src/cluster.rs crates/pbft/src/mac.rs crates/pbft/src/protocol.rs crates/pbft/src/replica.rs

crates/pbft/src/lib.rs:
crates/pbft/src/analysis.rs:
crates/pbft/src/client.rs:
crates/pbft/src/cluster.rs:
crates/pbft/src/mac.rs:
crates/pbft/src/protocol.rs:
crates/pbft/src/replica.rs:
