/root/repo/target/debug/deps/fuzzing_comparison-72ff0093f8edb4b8.d: crates/bench/src/bin/fuzzing_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfuzzing_comparison-72ff0093f8edb4b8.rmeta: crates/bench/src/bin/fuzzing_comparison.rs Cargo.toml

crates/bench/src/bin/fuzzing_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
