/root/repo/target/debug/deps/fuzzing_comparison-44aaeabc10934bf3.d: crates/bench/src/bin/fuzzing_comparison.rs

/root/repo/target/debug/deps/fuzzing_comparison-44aaeabc10934bf3: crates/bench/src/bin/fuzzing_comparison.rs

crates/bench/src/bin/fuzzing_comparison.rs:
