/root/repo/target/debug/deps/pbft_analysis-4cc218b02fc9c287.d: crates/bench/src/bin/pbft_analysis.rs

/root/repo/target/debug/deps/libpbft_analysis-4cc218b02fc9c287.rmeta: crates/bench/src/bin/pbft_analysis.rs

crates/bench/src/bin/pbft_analysis.rs:
