/root/repo/target/debug/deps/table1_accuracy-59effa79d83e4988.d: crates/bench/src/bin/table1_accuracy.rs

/root/repo/target/debug/deps/table1_accuracy-59effa79d83e4988: crates/bench/src/bin/table1_accuracy.rs

crates/bench/src/bin/table1_accuracy.rs:
