/root/repo/target/debug/deps/fig10_discovery-0fc2e79f0074cd1b.d: crates/bench/benches/fig10_discovery.rs

/root/repo/target/debug/deps/libfig10_discovery-0fc2e79f0074cd1b.rmeta: crates/bench/benches/fig10_discovery.rs

crates/bench/benches/fig10_discovery.rs:
