/root/repo/target/debug/deps/executor-abd263439328c7e4.d: crates/bench/benches/executor.rs

/root/repo/target/debug/deps/libexecutor-abd263439328c7e4.rmeta: crates/bench/benches/executor.rs

crates/bench/benches/executor.rs:
