/root/repo/target/debug/deps/solver-f6c33f7bb00cd214.d: crates/bench/benches/solver.rs

/root/repo/target/debug/deps/libsolver-f6c33f7bb00cd214.rmeta: crates/bench/benches/solver.rs

crates/bench/benches/solver.rs:
