/root/repo/target/debug/libachilles_xtests.rlib: /root/repo/crates/xtests/src/lib.rs
