/root/repo/target/debug/librand.rlib: /root/repo/crates/vendor/rand/src/lib.rs
