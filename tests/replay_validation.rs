//! Replay validation properties: every Trojan the symbolic pipeline
//! discovers on FSP, PBFT, and Paxos must replay to its predicted oracle
//! verdict against the concrete runtime, byte-identically across
//! `workers ∈ {1, 4}` and across two runs of the same configuration; the
//! minimizer must strictly shrink multi-field witnesses while preserving
//! their crash signature.

use achilles_fsp::{
    is_trojan, run_analysis as run_fsp, Command, FspAnalysisConfig, FspMessage, FspServerConfig,
    FspTarget,
};
use achilles_paxos::{analyze_local_state, AcceptorMode, PaxosTarget, ProposerMode};
use achilles_pbft::run_analysis as run_pbft;
use achilles_pbft::{PbftAnalysisConfig, PbftTarget};
use achilles_replay::{
    minimize, replay, validate_trojans, FaultPlan, ReplayCorpus, ReplayTarget, ReplayVerdict,
    ValidateConfig,
};

/// Replay key for byte-level comparison: fields, wire, verdict, signature.
type ReplayKey = (Vec<u64>, Vec<u8>, ReplayVerdict, String);

fn replay_keys(
    target: &dyn ReplayTarget,
    trojans: &[achilles::TrojanReport],
    workers: usize,
) -> Vec<ReplayKey> {
    let mut corpus = ReplayCorpus::new();
    let summary = validate_trojans(
        target,
        trojans,
        &mut corpus,
        &ValidateConfig::default().with_workers(workers),
    );
    summary
        .results
        .iter()
        .map(|r| {
            (
                r.witness.fields.clone(),
                r.witness.wire.clone(),
                r.verdict,
                r.signature.to_line(),
            )
        })
        .collect()
}

#[test]
fn fsp_trojans_replay_to_predicted_verdicts_deterministically() {
    let config = FspAnalysisConfig::accuracy().with_commands(2);
    let result = run_fsp(&config);
    assert!(!result.trojans.is_empty());
    let target = FspTarget::new(config.server.clone(), config.client.glob_expansion);

    let keys1 = replay_keys(&target, &result.trojans, 1);
    // Every witness confirms, and the concrete oracle agrees.
    for (fields, _, verdict, _) in &keys1 {
        assert_eq!(*verdict, ReplayVerdict::ConfirmedTrojan);
        let msg = FspMessage::from_field_values(fields);
        // The runtime speaks the full protocol (Install added), so mirror
        // its effective configuration for the oracle.
        let mut effective = config.server.clone();
        effective.commands.push(Command::Install);
        assert!(
            is_trojan(&msg, &effective, config.client.glob_expansion),
            "oracle agrees the witness is Trojan: {fields:?}"
        );
    }
    // Byte-identical across worker counts and across runs.
    assert_eq!(keys1, replay_keys(&target, &result.trojans, 4));
    let rerun = run_fsp(&config);
    assert_eq!(keys1, replay_keys(&target, &rerun.trojans, 1));
}

#[test]
fn wildcard_mode_confirms_and_dedups_by_signature() {
    let config = FspAnalysisConfig::wildcard().with_commands(1);
    let result = run_fsp(&config);
    let target = FspTarget::new(config.server.clone(), config.client.glob_expansion);
    let mut corpus = ReplayCorpus::new();
    let summary = validate_trojans(
        &target,
        &result.trojans,
        &mut corpus,
        &ValidateConfig::default(),
    );
    assert_eq!(summary.confirmed, result.trojans.len(), "100% confirm");
    // The four wildcard witnesses (one per exact length) share signatures
    // beyond length: dedup strictly compresses.
    assert!(
        corpus.distinct_signatures() < result.trojans.len(),
        "{} signatures for {} witnesses",
        corpus.distinct_signatures(),
        result.trojans.len()
    );
}

#[test]
fn pbft_trojans_replay_to_recovery() {
    let result = run_pbft(&PbftAnalysisConfig::paper());
    assert_eq!(result.trojans.len(), 2);
    let target = PbftTarget::default();
    let keys1 = replay_keys(&target, &result.trojans, 1);
    for (_, _, verdict, sig) in &keys1 {
        assert_eq!(*verdict, ReplayVerdict::ConfirmedTrojan);
        assert!(sig.contains("outcome:recovered"), "{sig}");
    }
    assert_eq!(keys1, replay_keys(&target, &result.trojans, 4));
    // Both accepting paths map to the single MAC-attack bug class.
    let mut corpus = ReplayCorpus::new();
    validate_trojans(
        &target,
        &result.trojans,
        &mut corpus,
        &ValidateConfig::default(),
    );
    assert_eq!(corpus.distinct_signatures(), 1);
}

#[test]
fn paxos_trojan_replays_against_the_engine() {
    let (_pool, trojans) =
        analyze_local_state(ProposerMode::Concrete(5, 7), AcceptorMode::Concrete(5), 1);
    assert_eq!(trojans.len(), 1);
    let target = PaxosTarget::new(5, ProposerMode::Concrete(5, 7));
    let keys1 = replay_keys(&target, &trojans, 1);
    assert_eq!(keys1[0].2, ReplayVerdict::ConfirmedTrojan);
    assert_eq!(keys1, replay_keys(&target, &trojans, 4));
}

#[test]
fn minimizer_strictly_shrinks_and_preserves_signature() {
    // Multi-field witness: reported length 4, real length 1, junk beyond
    // the NUL — the length and NUL position matter, the junk does not.
    let target = FspTarget::new(FspServerConfig::default(), false);
    let mut msg = FspMessage::request(Command::Stat, b"a");
    msg.bb_len = 4;
    msg.buf = [b'a', 0, b'X', b'Y'];
    let witness = achilles_replay::ConcreteWitness {
        index: 0,
        server_path_id: 0,
        fields: msg.field_values(),
        wire: msg.to_wire(),
    };
    let full = replay(&target, &witness, &FaultPlan::none());
    assert_eq!(full.verdict, ReplayVerdict::ConfirmedTrojan);
    let min = minimize(&target, &witness, &FaultPlan::none(), &full.signature);
    assert!(
        min.strictly_shrunk(),
        "{} of {} fields essential",
        min.essential.len(),
        min.original_delta.len()
    );
    // The minimized witness reproduces the signature exactly.
    let again = replay(&target, &min.witness, &FaultPlan::none());
    assert_eq!(again.signature, full.signature);
    assert_eq!(again.verdict, ReplayVerdict::ConfirmedTrojan);
}

#[test]
fn corpus_makes_revalidation_incremental_across_save_load() {
    let config = FspAnalysisConfig::accuracy().with_commands(1);
    let result = run_fsp(&config);
    let target = FspTarget::new(config.server.clone(), false);
    let mut corpus = ReplayCorpus::new();
    let first = validate_trojans(
        &target,
        &result.trojans,
        &mut corpus,
        &ValidateConfig::default(),
    );
    assert_eq!(first.skipped_known, 0);
    assert_eq!(first.confirmed, result.trojans.len());

    // Round-trip the corpus through its serialized form (as a CI cache
    // would) and re-validate: nothing replays.
    let mut reloaded =
        ReplayCorpus::from_text(&corpus.to_text()).expect("a saved corpus parses back");
    assert_eq!(reloaded.len(), corpus.len());
    let second = validate_trojans(
        &target,
        &result.trojans,
        &mut reloaded,
        &ValidateConfig::default(),
    );
    assert_eq!(second.replayed, 0);
    assert_eq!(second.skipped_known, result.trojans.len());
}
