//! Parallel determinism: `workers = 1` and `workers = 4` must produce
//! identical Trojan sets, path counts, and witnesses on the quickstart, FSP,
//! and PBFT scenarios.
//!
//! Why this holds by construction: the executor schedules paths as decision
//! prefixes and re-executes from the program start, so a path's constraint
//! *structure* is a function of its prefix alone — not of which worker runs
//! it. Workers explore in forks of the base pool, results are re-interned
//! into the base pool and sorted into canonical depth-first order, and every
//! per-path solver query is deterministic given its (structural) assertion
//! set. Only wall-clock-derived statistics may differ between runs.
//!
//! The guarantee is scoped to explorations that run to completion: when a
//! `max_paths`/`max_runs` budget stops a parallel search early, the stop is
//! a raced signal and the surviving path set is scheduling-dependent (see
//! `ExploreConfig::workers`). Every scenario below explores exhaustively.

use std::sync::Arc;

use achilles::{Achilles, AchillesConfig, TrojanReport};
use achilles_fsp::{run_analysis, FspAnalysisConfig};
use achilles_pbft::{run_analysis as run_pbft, PbftAnalysisConfig};
use achilles_solver::Width;
use achilles_symvm::{ExploreConfig, MessageLayout, PathResult, SymEnv, SymMessage};

/// Key of a Trojan report for set comparison: the concrete witness plus the
/// path it was found on (timestamps excluded on purpose).
type ReportKey = (usize, Vec<u64>, usize, bool, Vec<String>);

fn report_key(r: &TrojanReport) -> ReportKey {
    (
        r.server_path_id,
        r.witness_fields.clone(),
        r.active_clients,
        r.verified,
        r.notes.clone(),
    )
}

fn report_keys(reports: &[TrojanReport]) -> Vec<ReportKey> {
    reports.iter().map(report_key).collect()
}

// ---------------------------------------------------------------------------
// Quickstart (the paper's §2 working example)
// ---------------------------------------------------------------------------

fn quickstart_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("msg")
        .field("request", Width::W8)
        .field("address", Width::W32)
        .build()
}

fn quickstart_client(env: &mut SymEnv<'_>) -> PathResult<()> {
    let addr = env.sym("address", Width::W32);
    let hundred = env.constant(100, Width::W32);
    let zero = env.constant(0, Width::W32);
    if !env.if_slt(addr, hundred)? {
        return Ok(());
    }
    if env.if_slt(addr, zero)? {
        return Ok(());
    }
    let read = env.constant(1, Width::W8);
    env.send(SymMessage::new(quickstart_layout(), vec![read, addr]));
    Ok(())
}

fn quickstart_server(env: &mut SymEnv<'_>) -> PathResult<()> {
    let msg = env.recv(&quickstart_layout())?;
    let one = env.constant(1, Width::W8);
    if !env.if_eq(msg.field("request"), one)? {
        return Ok(());
    }
    let hundred = env.constant(100, Width::W32);
    if !env.if_slt(msg.field("address"), hundred)? {
        return Ok(());
    }
    env.mark_accept();
    Ok(())
}

fn run_quickstart(workers: usize) -> achilles::AchillesReport {
    let mut achilles = Achilles::new();
    let config = AchillesConfig {
        server_explore: ExploreConfig {
            workers,
            ..ExploreConfig::default()
        },
        ..AchillesConfig::verified()
    };
    achilles.run(
        &quickstart_client,
        &quickstart_server,
        &quickstart_layout(),
        &config,
    )
}

#[test]
fn quickstart_is_worker_count_invariant() {
    let seq = run_quickstart(1);
    let par = run_quickstart(4);
    assert_eq!(seq.server_paths, par.server_paths, "path counts");
    assert_eq!(
        report_keys(&seq.trojans),
        report_keys(&par.trojans),
        "trojan sets + witnesses"
    );
    assert_eq!(par.server_workers.len(), 4);
    assert_eq!(seq.server_workers.len(), 1);
    // The witness is the paper's negative-address READ in both runs.
    let addr = Width::W32.to_signed(par.trojans[0].witness_fields[1]);
    assert!(addr < 0, "addr = {addr}");
}

// ---------------------------------------------------------------------------
// FSP (§6.2 accuracy workload, scaled to two utilities)
// ---------------------------------------------------------------------------

#[test]
fn fsp_is_worker_count_invariant() {
    let seq = run_analysis(&FspAnalysisConfig::accuracy().with_commands(2));
    let par = run_analysis(
        &FspAnalysisConfig::accuracy()
            .with_commands(2)
            .with_workers(4),
    );
    assert_eq!(seq.server_paths, par.server_paths, "path counts");
    assert_eq!(seq.trojans.len(), par.trojans.len());
    assert_eq!(
        report_keys(&seq.trojans),
        report_keys(&par.trojans),
        "trojan sets + witnesses"
    );
    assert_eq!(seq.families, par.families);
    assert_eq!(par.explore_stats.workers, 4);
    assert_eq!(par.worker_stats.len(), 4);
    // The parallel run exercised the machinery it claims to: all work still
    // happened (runs are scheduling-invariant).
    assert_eq!(seq.explore_stats.runs, par.explore_stats.runs);
}

// ---------------------------------------------------------------------------
// PBFT (the MAC attack)
// ---------------------------------------------------------------------------

#[test]
fn pbft_is_worker_count_invariant() {
    let seq = run_pbft(&PbftAnalysisConfig::paper());
    let par = run_pbft(&PbftAnalysisConfig::paper().with_workers(4));
    assert_eq!(
        seq.explore_stats.completed, par.explore_stats.completed,
        "path counts"
    );
    assert_eq!(
        report_keys(&seq.trojans),
        report_keys(&par.trojans),
        "trojan sets + witnesses"
    );
    assert_eq!(seq.mac_attacks(), par.mac_attacks());
    assert_eq!(par.worker_stats.len(), 4);
}

// ---------------------------------------------------------------------------
// Paxos local-state modes
// ---------------------------------------------------------------------------

#[test]
fn paxos_is_worker_count_invariant() {
    use achilles_paxos::{analyze_local_state, AcceptorMode, ProposerMode};
    let (_p1, seq) =
        analyze_local_state(ProposerMode::Constructed(5), AcceptorMode::Concrete(5), 1);
    let (_p2, par) =
        analyze_local_state(ProposerMode::Constructed(5), AcceptorMode::Concrete(5), 4);
    assert_eq!(report_keys(&seq), report_keys(&par));
}

// ---------------------------------------------------------------------------
// Repeatability of the parallel path itself
// ---------------------------------------------------------------------------

#[test]
fn parallel_runs_are_repeatable() {
    let a = run_analysis(
        &FspAnalysisConfig::accuracy()
            .with_commands(1)
            .with_workers(4),
    );
    let b = run_analysis(
        &FspAnalysisConfig::accuracy()
            .with_commands(1)
            .with_workers(4),
    );
    assert_eq!(report_keys(&a.trojans), report_keys(&b.trojans));
    assert_eq!(a.server_paths, b.server_paths);
}

// ---------------------------------------------------------------------------
// Unscripted recv() across pool forks
// ---------------------------------------------------------------------------

#[test]
fn unscripted_recv_is_fork_invariant() {
    // `recv()` past the receive script auto-creates the message. Those
    // variables must be interned by (recv index, field, width) — not minted
    // with the pool's fork nonce — or parallel workers each create a
    // distinct copy of the "same" field and merged cross-path reasoning
    // treats them as unrelated. Two differently-forked pools running the
    // same program must therefore produce structurally identical
    // constraints (equal shared-cache keys).
    use achilles_solver::{SharedCache, Solver, TermPool};
    use achilles_symvm::Executor;

    fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&quickstart_layout())?;
        let one = env.constant(1, Width::W8);
        if !env.if_eq(msg.field("request"), one)? {
            return Ok(());
        }
        let hundred = env.constant(100, Width::W32);
        if !env.if_slt(msg.field("address"), hundred)? {
            return Ok(());
        }
        env.mark_accept();
        Ok(())
    }

    let base = TermPool::new();
    let keys_for = |nonce: u64| -> Vec<Box<[u128]>> {
        let mut pool = base.fork(nonce);
        let mut solver = Solver::new();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&server);
        assert!(!result.paths.is_empty());
        result
            .paths
            .iter()
            .map(|p| SharedCache::key_of(&pool, &p.constraints))
            .collect()
    };
    assert_eq!(
        keys_for(1),
        keys_for(2),
        "recv-created variables must not depend on the fork nonce"
    );
}
