//! Parallel determinism: `workers = 1` and `workers = 4` must produce
//! identical Trojan sets, path counts, and witnesses on the quickstart, FSP,
//! and PBFT scenarios.
//!
//! Why this holds by construction: the executor schedules paths as decision
//! prefixes and re-executes from the program start, so a path's constraint
//! *structure* is a function of its prefix alone — not of which worker runs
//! it. Workers explore in forks of the base pool, results are re-interned
//! into the base pool and sorted into canonical depth-first order, and every
//! per-path solver query is deterministic given its (structural) assertion
//! set. Only wall-clock-derived statistics may differ between runs.
//!
//! The guarantee covers capped runs too: a binding `max_paths`/`max_runs`
//! budget truncates the completed set to the canonical depth-first prefix
//! (in-flight items finish, the merge cuts at the sequential bound), so
//! capped parallel runs are bit-identical to capped sequential runs — the
//! capped-budget cases below pin exactly that.

use std::sync::Arc;

use achilles::{Achilles, AchillesConfig, TrojanReport};
use achilles_fsp::{run_analysis, FspAnalysisConfig};
use achilles_pbft::{run_analysis as run_pbft, PbftAnalysisConfig};
use achilles_solver::Width;
use achilles_symvm::{ExploreConfig, MessageLayout, PathResult, SymEnv, SymMessage};

/// Key of a Trojan report for set comparison: the concrete witness plus the
/// path it was found on (timestamps excluded on purpose).
type ReportKey = (usize, Vec<u64>, usize, bool, Vec<String>);

fn report_key(r: &TrojanReport) -> ReportKey {
    (
        r.server_path_id,
        r.witness_fields.clone(),
        r.active_clients,
        r.verified,
        r.notes.clone(),
    )
}

fn report_keys(reports: &[TrojanReport]) -> Vec<ReportKey> {
    reports.iter().map(report_key).collect()
}

// ---------------------------------------------------------------------------
// Quickstart (the paper's §2 working example)
// ---------------------------------------------------------------------------

fn quickstart_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("msg")
        .field("request", Width::W8)
        .field("address", Width::W32)
        .build()
}

fn quickstart_client(env: &mut SymEnv<'_>) -> PathResult<()> {
    let addr = env.sym("address", Width::W32);
    let hundred = env.constant(100, Width::W32);
    let zero = env.constant(0, Width::W32);
    if !env.if_slt(addr, hundred)? {
        return Ok(());
    }
    if env.if_slt(addr, zero)? {
        return Ok(());
    }
    let read = env.constant(1, Width::W8);
    env.send(SymMessage::new(quickstart_layout(), vec![read, addr]));
    Ok(())
}

fn quickstart_server(env: &mut SymEnv<'_>) -> PathResult<()> {
    let msg = env.recv(&quickstart_layout())?;
    let one = env.constant(1, Width::W8);
    if !env.if_eq(msg.field("request"), one)? {
        return Ok(());
    }
    let hundred = env.constant(100, Width::W32);
    if !env.if_slt(msg.field("address"), hundred)? {
        return Ok(());
    }
    env.mark_accept();
    Ok(())
}

fn run_quickstart(workers: usize) -> achilles::AchillesReport {
    let mut achilles = Achilles::new();
    let config = AchillesConfig {
        server_explore: ExploreConfig {
            workers,
            ..ExploreConfig::default()
        },
        ..AchillesConfig::verified()
    };
    achilles.run(
        &quickstart_client,
        &quickstart_server,
        &quickstart_layout(),
        &config,
    )
}

#[test]
fn quickstart_is_worker_count_invariant() {
    let seq = run_quickstart(1);
    let par = run_quickstart(4);
    assert_eq!(seq.server_paths, par.server_paths, "path counts");
    assert_eq!(
        report_keys(&seq.trojans),
        report_keys(&par.trojans),
        "trojan sets + witnesses"
    );
    assert_eq!(par.server_workers.len(), 4);
    assert_eq!(seq.server_workers.len(), 1);
    // The witness is the paper's negative-address READ in both runs.
    let addr = Width::W32.to_signed(par.trojans[0].witness_fields[1]);
    assert!(addr < 0, "addr = {addr}");
}

// ---------------------------------------------------------------------------
// FSP (§6.2 accuracy workload, scaled to two utilities)
// ---------------------------------------------------------------------------

#[test]
fn fsp_is_worker_count_invariant() {
    let seq = run_analysis(&FspAnalysisConfig::accuracy().with_commands(2));
    let par = run_analysis(
        &FspAnalysisConfig::accuracy()
            .with_commands(2)
            .with_workers(4),
    );
    assert_eq!(seq.server_paths, par.server_paths, "path counts");
    assert_eq!(seq.trojans.len(), par.trojans.len());
    assert_eq!(
        report_keys(&seq.trojans),
        report_keys(&par.trojans),
        "trojan sets + witnesses"
    );
    assert_eq!(seq.families, par.families);
    assert_eq!(par.explore_stats.workers, 4);
    assert_eq!(par.worker_stats.len(), 4);
    // The parallel run exercised the machinery it claims to: all work still
    // happened (runs are scheduling-invariant).
    assert_eq!(seq.explore_stats.runs, par.explore_stats.runs);
}

// ---------------------------------------------------------------------------
// PBFT (the MAC attack)
// ---------------------------------------------------------------------------

#[test]
fn pbft_is_worker_count_invariant() {
    let seq = run_pbft(&PbftAnalysisConfig::paper());
    let par = run_pbft(&PbftAnalysisConfig::paper().with_workers(4));
    assert_eq!(
        seq.explore_stats.completed, par.explore_stats.completed,
        "path counts"
    );
    assert_eq!(
        report_keys(&seq.trojans),
        report_keys(&par.trojans),
        "trojan sets + witnesses"
    );
    assert_eq!(seq.mac_attacks(), par.mac_attacks());
    assert_eq!(par.worker_stats.len(), 4);
}

// ---------------------------------------------------------------------------
// Paxos local-state modes
// ---------------------------------------------------------------------------

#[test]
fn paxos_is_worker_count_invariant() {
    use achilles_paxos::{analyze_local_state, AcceptorMode, ProposerMode};
    let (_p1, seq) =
        analyze_local_state(ProposerMode::Constructed(5), AcceptorMode::Concrete(5), 1);
    let (_p2, par) =
        analyze_local_state(ProposerMode::Constructed(5), AcceptorMode::Concrete(5), 4);
    assert_eq!(report_keys(&seq), report_keys(&par));
}

// ---------------------------------------------------------------------------
// Repeatability of the parallel path itself
// ---------------------------------------------------------------------------

#[test]
fn parallel_runs_are_repeatable() {
    let a = run_analysis(
        &FspAnalysisConfig::accuracy()
            .with_commands(1)
            .with_workers(4),
    );
    let b = run_analysis(
        &FspAnalysisConfig::accuracy()
            .with_commands(1)
            .with_workers(4),
    );
    assert_eq!(report_keys(&a.trojans), report_keys(&b.trojans));
    assert_eq!(a.server_paths, b.server_paths);
}

// ---------------------------------------------------------------------------
// Unscripted recv() across pool forks
// ---------------------------------------------------------------------------

#[test]
fn unscripted_recv_is_fork_invariant() {
    // `recv()` past the receive script auto-creates the message. Those
    // variables must be interned by (recv index, field, width) — not minted
    // with the pool's fork nonce — or parallel workers each create a
    // distinct copy of the "same" field and merged cross-path reasoning
    // treats them as unrelated. Two differently-forked pools running the
    // same program must therefore produce structurally identical
    // constraints (equal shared-cache keys).
    use achilles_solver::{SharedCache, Solver, TermPool};
    use achilles_symvm::Executor;

    fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&quickstart_layout())?;
        let one = env.constant(1, Width::W8);
        if !env.if_eq(msg.field("request"), one)? {
            return Ok(());
        }
        let hundred = env.constant(100, Width::W32);
        if !env.if_slt(msg.field("address"), hundred)? {
            return Ok(());
        }
        env.mark_accept();
        Ok(())
    }

    let base = TermPool::new();
    let keys_for = |nonce: u64| -> Vec<Box<[u128]>> {
        let mut pool = base.fork(nonce);
        let mut solver = Solver::new();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&server);
        assert!(!result.paths.is_empty());
        result
            .paths
            .iter()
            .map(|p| SharedCache::key_of(&pool, &p.constraints))
            .collect()
    };
    assert_eq!(
        keys_for(1),
        keys_for(2),
        "recv-created variables must not depend on the fork nonce"
    );
}

// ---------------------------------------------------------------------------
// Parallel pre-processing (the negation loop)
// ---------------------------------------------------------------------------

#[test]
fn prepare_client_is_worker_count_invariant() {
    // The per-path negation fan-out must not perturb anything downstream:
    // the full FSP pipeline with parallel preprocessing (workers flows into
    // `prepare_client_workers`) produces the identical Trojan set, and the
    // negation clauses themselves are structurally equal across worker
    // counts because the existential λ' copies are interned by
    // deterministic tags.
    use achilles::{prepare_client_workers, FieldMask, Optimizations};
    use achilles_fsp::extract_client_predicate;
    use achilles_solver::{SharedCache, Solver, TermPool};

    let prep_keys = |workers: usize| -> Vec<Vec<Box<[u128]>>> {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let client = extract_client_predicate(
            &mut pool,
            &mut solver,
            &achilles_fsp::Command::ANALYSIS_SET[..2],
            &achilles_fsp::FspClientConfig::default(),
            &ExploreConfig::default(),
        );
        let server_msg = SymMessage::fresh(&mut pool, &achilles_fsp::layout(), "msg");
        let prepared = prepare_client_workers(
            &mut pool,
            &mut solver,
            client,
            server_msg,
            FieldMask::none(),
            Optimizations::default(),
            workers,
        );
        prepared
            .negations
            .iter()
            .map(|n| {
                n.field_clauses
                    .iter()
                    .map(|&(_, c)| SharedCache::key_of(&pool, &[c]))
                    .collect()
            })
            .collect()
    };
    assert_eq!(
        prep_keys(1),
        prep_keys(4),
        "negation clauses must be fingerprint-identical across worker counts"
    );
}

// ---------------------------------------------------------------------------
// The a-posteriori baseline's differencing loop
// ---------------------------------------------------------------------------

#[test]
fn a_posteriori_diff_is_worker_count_invariant() {
    // The §6.4 baseline fans both its phases out over
    // `ExploreConfig::workers`: the server exploration on the
    // work-stealing pool, the differencing loop over `parallel_map_with`
    // with a forked pool + private solver per worker. Every differencing
    // query is over terms interned before the fan-out, so the Trojan set
    // and witnesses must be identical for every worker count.
    use achilles::{a_posteriori_diff, prepare_client, FieldMask, Optimizations};
    use achilles_fsp::{extract_client_predicate, FspServer};
    use achilles_solver::{Solver, TermPool};

    let run = |workers: usize| {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let client = extract_client_predicate(
            &mut pool,
            &mut solver,
            &achilles_fsp::Command::ANALYSIS_SET[..2],
            &achilles_fsp::FspClientConfig::default(),
            &ExploreConfig::default(),
        );
        let server_msg = SymMessage::fresh(&mut pool, &achilles_fsp::layout(), "msg");
        let prepared = prepare_client(
            &mut pool,
            &mut solver,
            client,
            server_msg,
            FieldMask::none(),
            Optimizations::none(),
        );
        let server_config = achilles_fsp::FspServerConfig {
            commands: achilles_fsp::Command::ANALYSIS_SET[..2].to_vec(),
            ..achilles_fsp::FspServerConfig::default()
        };
        let result = a_posteriori_diff(
            &mut pool,
            &mut solver,
            &FspServer::new(server_config),
            &prepared,
            &ExploreConfig {
                workers,
                ..ExploreConfig::default()
            },
        );
        (
            report_keys(&result.trojans),
            result.accepting_paths,
            result.total_paths,
        )
    };
    let (seq_keys, seq_accepting, seq_total) = run(1);
    let (par_keys, par_accepting, par_total) = run(4);
    assert!(!seq_keys.is_empty(), "the baseline finds the Trojans");
    assert_eq!(seq_keys, par_keys, "trojan sets + witnesses");
    assert_eq!(seq_accepting, par_accepting, "accepting paths");
    assert_eq!(seq_total, par_total, "total paths");
}

// ---------------------------------------------------------------------------
// Capped budgets (canonical truncation)
// ---------------------------------------------------------------------------

#[test]
fn capped_max_paths_pipeline_is_worker_count_invariant() {
    // A binding `max_paths` on the server exploration used to leave a
    // scheduling-dependent Trojan set (raced stop signal); the canonical
    // truncation makes capped runs bit-identical for every worker count.
    let run = |workers: usize, max_paths: usize| {
        let mut achilles = Achilles::new();
        let config = AchillesConfig {
            server_explore: ExploreConfig {
                workers,
                max_paths,
                ..ExploreConfig::default()
            },
            ..AchillesConfig::verified()
        };
        let spec = achilles_fsp::FspSpec::accuracy();
        use achilles::TargetSpec;
        let client = spec.clients().remove(0);
        let server = spec.server();
        let report = achilles.run(&*client, &*server, &achilles_fsp::layout(), &config);
        (report_keys(&report.trojans), report.server_paths)
    };
    for max_paths in [5usize, 17, 40] {
        let (seq_keys, seq_paths) = run(1, max_paths);
        let (par_keys, par_paths) = run(4, max_paths);
        assert_eq!(seq_paths, par_paths, "max_paths={max_paths}: path counts");
        assert!(seq_paths <= max_paths, "the cap binds or bounds");
        assert_eq!(
            seq_keys, par_keys,
            "max_paths={max_paths}: capped Trojan sets + witnesses"
        );
    }
}

#[test]
fn bfs_downgrade_is_surfaced_not_silent() {
    // BFS-ordered explorations run sequentially regardless of the worker
    // request; `workers_effective` must say so.
    use achilles_solver::{Solver, TermPool};
    use achilles_symvm::{Executor, ExploreOrder};

    fn program(env: &mut SymEnv<'_>) -> PathResult<()> {
        for i in 0..3 {
            let b = env.sym(&format!("b{i}"), Width::BOOL);
            let _ = env.branch(b)?;
        }
        env.mark_accept();
        Ok(())
    }

    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    let config = ExploreConfig {
        workers: 4,
        order: ExploreOrder::Bfs,
        ..ExploreConfig::default()
    };
    let mut exec = Executor::new(&mut pool, &mut solver, config);
    let result = exec.explore_multi(&program);
    assert_eq!(result.stats.workers, 4, "the request is echoed");
    assert_eq!(
        result.stats.workers_effective, 1,
        "…but the downgrade to sequential is explicit"
    );

    // The DFS parallel path reports what it actually used.
    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    let config = ExploreConfig {
        workers: 4,
        ..ExploreConfig::default()
    };
    let mut exec = Executor::new(&mut pool, &mut solver, config);
    let result = exec.explore_multi(&program);
    assert_eq!(result.stats.workers_effective, 4);
}

// ---------------------------------------------------------------------------
// Session (multi-message) search
// ---------------------------------------------------------------------------

#[test]
fn registry_session_trojans_are_worker_count_invariant() {
    // Session Trojans through the `TargetSpec` surface: every spec that
    // declares sessions must produce the identical session report for
    // workers 1 and 4 — including under a binding `max_paths` cap.
    use achilles::{AchillesSession, SessionReport};
    use achilles_targets::builtin_registry;

    let registry = builtin_registry();
    let mut specs_with_sessions = 0usize;
    for spec in registry.iter() {
        if spec.sessions().is_empty() {
            continue;
        }
        specs_with_sessions += 1;
        let key = |reports: &[SessionReport]| {
            reports
                .iter()
                .map(|r| {
                    (
                        r.session.clone(),
                        r.server_paths,
                        report_keys(&r.trojans),
                        r.trojan_slots.clone(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let run = |workers: usize, max_paths: usize| {
            let mut session = AchillesSession::new(&**spec).workers(workers);
            session.config_mut().server_explore.max_paths = max_paths;
            key(&session.run_sessions())
        };
        let name = spec.name();
        let seq = run(1, usize::MAX >> 1);
        assert!(!seq.is_empty(), "{name}: declared sessions analyzed");
        assert_eq!(
            seq,
            run(4, usize::MAX >> 1),
            "{name}: uncapped bit-identity"
        );
        // A binding cap truncates canonically for both worker counts.
        let capped_seq = run(1, 7);
        assert_eq!(capped_seq, run(4, 7), "{name}: capped bit-identity");
    }
    assert!(specs_with_sessions >= 2, "fsp and twopc declare sessions");
}

#[test]
fn session_search_is_worker_count_invariant() {
    use achilles::{analyze_sequence, prepare_client, ClientPredicate, FieldMask, Optimizations};
    use achilles_solver::{Solver, TermPool};
    use achilles_symvm::Executor;
    use std::sync::Arc;

    fn hs_layout() -> Arc<MessageLayout> {
        MessageLayout::builder("hs")
            .field("token", Width::W16)
            .build()
    }
    fn hs_client(env: &mut SymEnv<'_>) -> PathResult<()> {
        let token = env.sym("token", Width::W16);
        let cap = env.constant(100, Width::W16);
        if !env.if_ult(token, cap)? {
            return Ok(());
        }
        env.send(SymMessage::new(hs_layout(), vec![token]));
        Ok(())
    }
    fn session_server(env: &mut SymEnv<'_>) -> PathResult<()> {
        let hs = env.recv(&hs_layout())?;
        let tcap = env.constant(200, Width::W16);
        if !env.if_ult(hs.field("token"), tcap)? {
            return Ok(());
        }
        let cmd = env.recv(&quickstart_layout())?;
        let one = env.constant(1, Width::W8);
        if !env.if_eq(cmd.field("request"), one)? {
            return Ok(());
        }
        env.mark_accept();
        Ok(())
    }

    let run = |workers: usize| {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let hs_pred = {
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            ClientPredicate::from_exploration(&exec.explore(&hs_client))
        };
        let cmd_pred = {
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            ClientPredicate::from_exploration(&exec.explore(&quickstart_client))
        };
        let hs_msg = SymMessage::fresh(&mut pool, &hs_layout(), "hs");
        let cmd_msg = SymMessage::fresh(&mut pool, &quickstart_layout(), "cmd");
        let hs_prep = prepare_client(
            &mut pool,
            &mut solver,
            hs_pred,
            hs_msg,
            FieldMask::none(),
            Optimizations::default(),
        );
        let cmd_prep = prepare_client(
            &mut pool,
            &mut solver,
            cmd_pred,
            cmd_msg,
            FieldMask::none(),
            Optimizations::default(),
        );
        let (reports, slots, paths) = analyze_sequence(
            &mut pool,
            &mut solver,
            &session_server,
            vec![&hs_prep, &cmd_prep],
            Optimizations::default(),
            workers,
        );
        (report_keys(&reports), slots, paths)
    };
    let (seq_keys, seq_slots, seq_paths) = run(1);
    let (par_keys, par_slots, par_paths) = run(4);
    assert!(!seq_keys.is_empty(), "the lax handshake hosts a Trojan");
    assert_eq!(seq_keys, par_keys, "session Trojan sets + witnesses");
    assert_eq!(seq_slots, par_slots, "Trojan slot attribution");
    assert_eq!(seq_paths, par_paths, "completed server paths");
}

// ---------------------------------------------------------------------------
// Fault-schedule sweeps
// ---------------------------------------------------------------------------

#[test]
fn sweep_classification_is_worker_count_invariant() {
    // The sweep campaign promises a bit-identical sensitivity matrix for
    // every worker count: replay is a pure function of the (witness,
    // schedule) pair and the parallel_map fan-out is order-preserving.
    // Pinned for every session-bearing spec in the built-in registry.
    use achilles_sweep::{run_campaign, schedule_token, CampaignConfig, SessionSweep, SweepCache};
    use achilles_targets::builtin_registry;

    fn key(sweeps: &[SessionSweep]) -> Vec<Vec<Vec<(String, String, String)>>> {
        sweeps
            .iter()
            .map(|s| {
                s.matrices
                    .iter()
                    .map(|m| {
                        m.cells
                            .iter()
                            .map(|c| {
                                (
                                    schedule_token(&c.schedule),
                                    c.class.to_string(),
                                    c.signature.to_line(),
                                )
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    let registry = builtin_registry();
    let mut swept = 0usize;
    for spec in registry.iter() {
        if spec.sessions().is_empty() {
            continue;
        }
        swept += 1;
        let name = spec.name();
        let seq = run_campaign(&**spec, &CampaignConfig::default(), &mut SweepCache::new());
        let par = run_campaign(
            &**spec,
            &CampaignConfig::default().with_workers(4),
            &mut SweepCache::new(),
        );
        assert_eq!(
            key(&seq),
            key(&par),
            "{name}: every (witness, schedule) classification is bit-identical \
             for workers 1 and 4"
        );
        assert!(
            seq.iter().all(|s| s.confirmed_fault_free == s.discovered),
            "{name}: fault-free baselines all confirm"
        );
    }
    assert!(swept >= 3, "fsp, twopc, and gossip declare sessions");
}

#[test]
fn sweep_campaigns_are_repeatable() {
    // Same campaign twice (fresh caches): identical cells — nothing in the
    // sweep depends on wall clock or scheduling.
    use achilles_gossip::GossipSpec;
    use achilles_sweep::{run_campaign, CampaignConfig, SweepCache};

    let spec = GossipSpec::default();
    let a = run_campaign(&spec, &CampaignConfig::default(), &mut SweepCache::new());
    let b = run_campaign(&spec, &CampaignConfig::default(), &mut SweepCache::new());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cells, y.cells);
        assert_eq!(x.armed, y.armed);
        assert_eq!(x.diverged, y.diverged);
        assert_eq!(x.disarmed, y.disarmed);
        assert_eq!(x.masked, y.masked);
        assert_eq!(x.new_signature, y.new_signature);
        for (ma, mb) in x.matrices.iter().zip(&y.matrices) {
            assert_eq!(ma.cells, mb.cells);
        }
    }
}

#[test]
fn cross_phase_cache_reuse_never_perturbs_session_results() {
    // The engine-persistent shared cache lets run_sessions() re-use
    // queries run() paid for (the session clients overlap the
    // single-message clients); the reports must match a fresh engine's.
    use achilles::AchillesSession;
    use achilles_targets::builtin_registry;

    let registry = builtin_registry();
    let spec = registry.get("twopc").expect("registered");

    // Warm engine: single-message run first, then sessions.
    let mut warm = AchillesSession::new(&**spec).workers(4);
    let _ = warm.run();
    let warm_reports = warm.run_sessions();
    let warm_cross = warm.engine().shared_cache().stats().cross_epoch_hits;

    // Cold engine: sessions only.
    let cold_reports = AchillesSession::new(&**spec).workers(4).run_sessions();

    assert!(
        warm_cross > 0,
        "re-exploring the shared participant program hits the cache \
         entries the single-message run published"
    );
    assert_eq!(warm_reports.len(), cold_reports.len());
    for (w, c) in warm_reports.iter().zip(&cold_reports) {
        assert_eq!(report_keys(&w.trojans), report_keys(&c.trojans));
        assert_eq!(w.trojan_slots, c.trojan_slots);
        assert_eq!(w.server_paths, c.server_paths);
    }
}

#[test]
fn core_subsumption_never_perturbs_session_results() {
    // The shared cache's unsat-core subsumption index answers superset
    // queries from previously proven cores. Like every reuse tier it is a
    // pure answer cache: for every worker count, reports with the index on
    // must be bit-identical to reports with it off — and on a target whose
    // sessions generate superset queries, the index must actually answer
    // some of them.
    use achilles::AchillesSession;
    use achilles_targets::builtin_registry;

    let registry = builtin_registry();
    let spec = registry.get("fsp").expect("registered");

    for workers in [1usize, 4] {
        let mut on = AchillesSession::new(&**spec).workers(workers);
        on.engine().shared_cache().set_subsumption(true);
        let on_reports = on.run_sessions();
        let on_stats = on.engine().shared_cache().stats();

        let mut off = AchillesSession::new(&**spec).workers(workers);
        off.engine().shared_cache().set_subsumption(false);
        let off_reports = off.run_sessions();
        let off_stats = off.engine().shared_cache().stats();

        assert!(
            on_stats.core_subsumption_hits > 0,
            "fsp session discovery at {workers} worker(s) generates superset \
             queries the core index answers"
        );
        assert_eq!(
            off_stats.core_subsumption_hits, 0,
            "a disabled index answers nothing"
        );
        assert!(
            on_stats.certified_unsat > 0 && off_stats.certified_unsat > 0,
            "both runs certify unsat verdicts"
        );
        assert_eq!(on_reports.len(), off_reports.len());
        for (a, b) in on_reports.iter().zip(&off_reports) {
            assert_eq!(
                report_keys(&a.trojans),
                report_keys(&b.trojans),
                "subsumption on/off drift at {workers} worker(s)"
            );
            assert_eq!(a.trojan_slots, b.trojan_slots);
            assert_eq!(a.server_paths, b.server_paths);
        }
    }
}

// ---------------------------------------------------------------------------
// Observer effect (span tracing)
// ---------------------------------------------------------------------------

#[test]
fn tracing_never_perturbs_results() {
    // `achilles-obs` tracing is observation-only by contract: arming it
    // must change no discovery or sweep answer. Full fsp session
    // discovery + fault-schedule sweep, tracing off vs on, at workers
    // {1, 4} — reports, witness sets, slot attribution, and every
    // (schedule, class, signature) matrix cell must be bit-identical.
    use achilles::AchillesSession;
    use achilles_sweep::{run_campaign, schedule_token, CampaignConfig, SweepCache};
    use achilles_targets::builtin_registry;

    let registry = builtin_registry();
    let spec = registry.get("fsp").expect("registered");

    let run = |workers: usize| {
        let reports = AchillesSession::new(&**spec)
            .workers(workers)
            .run_sessions();
        let discovery_key: Vec<_> = reports
            .iter()
            .map(|r| {
                (
                    r.session.clone(),
                    r.server_paths,
                    report_keys(&r.trojans),
                    r.trojan_slots.clone(),
                )
            })
            .collect();
        let sweeps = run_campaign(
            &**spec,
            &CampaignConfig::default().with_workers(workers),
            &mut SweepCache::new(),
        );
        let sweep_key: Vec<_> = sweeps
            .iter()
            .map(|s| {
                (
                    (s.armed, s.diverged, s.disarmed, s.masked, s.new_signature),
                    s.matrices
                        .iter()
                        .map(|m| {
                            m.cells
                                .iter()
                                .map(|c| {
                                    (
                                        schedule_token(&c.schedule),
                                        c.class.to_string(),
                                        c.signature.to_line(),
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        (discovery_key, sweep_key)
    };

    for workers in [1usize, 4] {
        achilles_obs::set_tracing(false);
        let off = run(workers);
        achilles_obs::set_tracing(true);
        let on = run(workers);
        achilles_obs::drain_thread();
        let traced = achilles_obs::chrome_trace_json();
        achilles_obs::set_tracing(false);
        achilles_obs::clear_trace();
        assert!(
            traced.contains("session:run") && traced.contains("sweep:witness"),
            "the traced run recorded discovery and sweep spans"
        );
        assert_eq!(
            off, on,
            "tracing on/off drift at {workers} worker(s): the observer \
             changed the observation"
        );
    }
}
