//! Integration: the three §3.4 local-state modes, both through the Paxos
//! programs and through the pipeline's `LocalState::Constructed` seeding.

use achilles::{Achilles, AchillesConfig, FieldMask, LocalState, Optimizations};
use achilles_paxos::{analyze_local_state, AcceptorMode, ProposerMode, MAX_PROPOSABLE_VALUE};
use achilles_solver::Width;
use achilles_symvm::{ExploreConfig, MessageLayout, PathResult, SymEnv, SymMessage};
use std::sync::Arc;

fn analyze_paxos(proposer: ProposerMode, acceptor: AcceptorMode) -> Vec<achilles::TrojanReport> {
    analyze_local_state(proposer, acceptor, 1).1
}

#[test]
fn concrete_state_mode() {
    let reports = analyze_paxos(ProposerMode::Concrete(5, 7), AcceptorMode::Concrete(5));
    assert_eq!(reports.len(), 1);
    let w = &reports[0].witness_fields;
    assert!(
        w[1] != 5 || w[2] != 7,
        "anything but the scenario's Accept is Trojan"
    );
    assert!(reports[0].verified);
}

#[test]
fn constructed_state_mode_generalizes() {
    let reports = analyze_paxos(ProposerMode::Constructed(5), AcceptorMode::Concrete(5));
    assert_eq!(reports.len(), 1);
    let w = &reports[0].witness_fields;
    assert!(
        w[2] > MAX_PROPOSABLE_VALUE || w[1] != 5,
        "one analysis covers every proposable value"
    );
}

#[test]
fn over_approximate_state_mode() {
    let reports = analyze_paxos(
        ProposerMode::Constructed(5),
        AcceptorMode::OverApproximate { max: 20 },
    );
    assert_eq!(reports.len(), 1);
}

// ---------------------------------------------------------------------
// Pipeline-level constructed state: seeding constraints into the server.
// ---------------------------------------------------------------------

fn kv_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("kv")
        .field("op", Width::W8)
        .field("slot", Width::W16)
        .build()
}

fn kv_client(env: &mut SymEnv<'_>) -> PathResult<()> {
    let slot = env.sym("slot", Width::W16);
    let cap = env.constant(64, Width::W16);
    if !env.if_ult(slot, cap)? {
        return Ok(());
    }
    let op = env.constant(1, Width::W8);
    env.send(SymMessage::new(kv_layout(), vec![op, slot]));
    Ok(())
}

fn kv_server(env: &mut SymEnv<'_>) -> PathResult<()> {
    let msg = env.recv(&kv_layout())?;
    let one = env.constant(1, Width::W8);
    if !env.if_eq(msg.field("op"), one)? {
        return Ok(());
    }
    let cap = env.constant(256, Width::W16); // bug: 4× the client's bound
    if !env.if_ult(msg.field("slot"), cap)? {
        return Ok(());
    }
    env.mark_accept();
    Ok(())
}

#[test]
fn pipeline_constructed_state_narrows_the_window() {
    let mut achilles = Achilles::new();
    let (pred, _) = achilles.extract_client_predicate(&kv_client, &ExploreConfig::default());
    let prepared = achilles.prepare(
        pred,
        &kv_layout(),
        FieldMask::none(),
        Optimizations::default(),
    );
    // The deployment scenario pins the server's view: slots above 100 were
    // never provisioned, so prior protocol steps imply slot < 100.
    let slot = prepared.server_msg.field("slot");
    let hundred = achilles.pool.constant(100, Width::W16);
    let seeded = achilles.pool.ult(slot, hundred);
    let config = AchillesConfig {
        verify_witnesses: true,
        local_state: LocalState::Constructed {
            constraints: vec![seeded],
        },
        ..AchillesConfig::default()
    };
    let outcome = achilles.analyze_server(&kv_server, &prepared, &config);
    assert_eq!(outcome.reports.len(), 1);
    let w = outcome.reports[0].witness_fields[1];
    assert!(
        (64..100).contains(&w),
        "the witness respects both the bug window and the scenario: {w}"
    );
}
