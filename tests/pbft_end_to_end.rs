//! Integration: the PBFT MAC-attack finding transfers from the symbolic
//! analysis to the concrete cluster simulation.

use achilles_pbft::{
    run_analysis, ClusterConfig, PbftAnalysisConfig, PbftCluster, PbftRequest, PbftTrojanFamily,
    SubmitOutcome, DIGEST_PLACEHOLDER, MAC_PLACEHOLDER, N_REPLICAS,
};

#[test]
fn analysis_finds_exactly_the_mac_attack() {
    let result = run_analysis(&PbftAnalysisConfig::paper());
    assert_eq!(result.distinct_families(), 1);
    assert!(result
        .families
        .iter()
        .all(|f| *f == PbftTrojanFamily::MacAttack));
    assert!(result.trojans.iter().all(|t| t.verified));
    // Both accepting paths (read-only and agreement) carry the same Trojan
    // type — "the Trojan message discovered by Achilles appears on all
    // execution paths in the server".
    let mut notes: Vec<String> = result
        .trojans
        .iter()
        .flat_map(|t| t.notes.clone())
        .collect();
    notes.sort();
    assert!(notes.contains(&"pre_prepare".to_string()));
    assert!(notes.contains(&"read-only execute".to_string()));
}

#[test]
fn witness_analogue_triggers_recovery_in_the_cluster() {
    // The symbolic analysis runs with placeholder MACs; its witness says
    // "an authenticator differing from what the client computes is
    // accepted". The concrete analogue: a request whose real MAC is
    // corrupted. Submit it: the vulnerable primary forwards it and the
    // cluster pays the recovery cost.
    let result = run_analysis(&PbftAnalysisConfig::paper());
    let witness = PbftRequest::from_field_values(&result.trojans[0].witness_fields);
    assert!(witness
        .macs
        .iter()
        .any(|&m| u64::from(m) != MAC_PLACEHOLDER));
    assert_eq!(
        witness.od, DIGEST_PLACEHOLDER,
        "everything else is well-formed"
    );

    let mut cluster = PbftCluster::new(ClusterConfig::default());
    let concrete =
        PbftRequest::correct(witness.cid, witness.rid.max(1), *b"op__").with_corrupted_mac(1);
    assert_eq!(
        cluster.submit(&concrete),
        SubmitOutcome::RecoveredThenExecuted
    );
    assert_eq!(cluster.stats().recoveries, 1);
}

#[test]
fn patched_replica_closes_the_hole_and_the_cluster_survives() {
    use achilles_pbft::PbftReplicaConfig;
    let config = PbftAnalysisConfig {
        replica: PbftReplicaConfig { verify_macs: true },
        ..PbftAnalysisConfig::paper()
    };
    let result = run_analysis(&config);
    assert_eq!(result.trojans.len(), 0);

    let cluster_config = ClusterConfig {
        primary_verifies_macs: true,
        ..ClusterConfig::default()
    };
    let mut cluster = PbftCluster::new(cluster_config);
    let bad = PbftRequest::correct(1, 1, *b"op__").with_corrupted_mac(2);
    assert_eq!(cluster.submit(&bad), SubmitOutcome::DroppedByPrimary);
    assert_eq!(cluster.stats().recoveries, 0);
}

#[test]
fn recovery_cost_dominates_at_scale() {
    let healthy = achilles_pbft::run_workload(ClusterConfig::default(), 5_000, 0);
    let attacked = achilles_pbft::run_workload(ClusterConfig::default(), 5_000, 20);
    // 5% corruption with a 200× recovery cost → ~11× slowdown.
    let ratio = healthy.throughput() / attacked.throughput();
    assert!(ratio > 5.0, "ratio {ratio}");
    // Every submitted request still executed (progress is guaranteed,
    // §6.3: recovery is expensive, not fatal).
    assert_eq!(attacked.executed().len(), 5_000);
    let _ = N_REPLICAS;
}
