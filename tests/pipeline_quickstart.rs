//! Integration: the paper's §2 working example through the public pipeline
//! API, with checks on predicate structure, report quality, and
//! reproducibility.

use std::sync::Arc;

use achilles::{Achilles, AchillesConfig, FieldMask};
use achilles_solver::Width;
use achilles_symvm::{MessageLayout, PathResult, SymEnv, SymMessage};

const DATASIZE: u64 = 100;

fn layout() -> Arc<MessageLayout> {
    MessageLayout::builder("msg")
        .field("request", Width::W8)
        .field("address", Width::W32)
        .field("value", Width::W32)
        .build()
}

fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
    let op = env.sym("operationType", Width::W8);
    let addr = env.sym("address", Width::W32);
    let datasize = env.constant(DATASIZE, Width::W32);
    if !env.if_slt(addr, datasize)? {
        return Ok(());
    }
    let zero = env.constant(0, Width::W32);
    if env.if_slt(addr, zero)? {
        return Ok(());
    }
    let read = env.constant(1, Width::W8);
    if env.if_eq(op, read)? {
        let req = env.constant(1, Width::W8);
        let value = env.sym("uninit", Width::W32);
        env.send(SymMessage::new(layout(), vec![req, addr, value]));
    } else {
        let req = env.constant(2, Width::W8);
        let value = env.sym("value", Width::W32);
        env.send(SymMessage::new(layout(), vec![req, addr, value]));
    }
    Ok(())
}

fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
    let msg = env.recv(&layout())?;
    let datasize = env.constant(DATASIZE, Width::W32);
    let read = env.constant(1, Width::W8);
    let write = env.constant(2, Width::W8);
    if env.if_eq(msg.field("request"), read)? {
        if !env.if_slt(msg.field("address"), datasize)? {
            return Ok(());
        }
        env.note("READ");
        env.mark_accept();
        return Ok(());
    }
    if env.if_eq(msg.field("request"), write)? {
        if !env.if_slt(msg.field("address"), datasize)? {
            return Ok(());
        }
        let zero = env.constant(0, Width::W32);
        if env.if_slt(msg.field("address"), zero)? {
            return Ok(());
        }
        env.note("WRITE");
        env.mark_accept();
        return Ok(());
    }
    Ok(())
}

#[test]
fn working_example_full_pipeline() {
    let mut achilles = Achilles::new();
    let report = achilles.run(&client, &server, &layout(), &AchillesConfig::verified());

    // Figure 5: two client path predicates (READ and WRITE).
    assert_eq!(report.client.len(), 2);
    let requests: Vec<Option<u64>> = report
        .client
        .paths
        .iter()
        .map(|p| achilles.pool.as_const(p.message.field("request")))
        .collect();
    assert!(requests.contains(&Some(1)) && requests.contains(&Some(2)));

    // Exactly one Trojan: READ with a negative address.
    assert_eq!(report.trojans.len(), 1);
    let t = &report.trojans[0];
    assert!(t.verified);
    assert!(t.notes.contains(&"READ".to_string()));
    assert_eq!(t.witness_fields[0], 1);
    assert!(Width::W32.to_signed(t.witness_fields[1]) < 0);

    // Pipeline metadata is populated.
    assert!(report.server_paths >= 2);
    assert!(!report.samples.is_empty());
    assert!(report.search_stats.trojan_checks > 0);
}

#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let mut achilles = Achilles::new();
        let report = achilles.run(&client, &server, &layout(), &AchillesConfig::verified());
        (
            report.client.len(),
            report.trojans.len(),
            report.trojans[0].witness_fields.clone(),
            report.server_paths,
        )
    };
    assert_eq!(run(), run(), "identical inputs must give identical reports");
}

#[test]
fn patched_server_has_no_trojans() {
    fn patched(env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&layout())?;
        let datasize = env.constant(DATASIZE, Width::W32);
        let read = env.constant(1, Width::W8);
        let write = env.constant(2, Width::W8);
        let zero = env.constant(0, Width::W32);
        let is_read = env.if_eq(msg.field("request"), read)?;
        let is_write = if is_read {
            false
        } else {
            env.if_eq(msg.field("request"), write)?
        };
        if !is_read && !is_write {
            return Ok(());
        }
        if !env.if_slt(msg.field("address"), datasize)? {
            return Ok(());
        }
        if env.if_slt(msg.field("address"), zero)? {
            return Ok(()); // the fix: both handlers check the lower bound
        }
        env.mark_accept();
        Ok(())
    }
    let mut achilles = Achilles::new();
    let report = achilles.run(&client, &patched, &layout(), &AchillesConfig::verified());
    assert_eq!(
        report.trojans.len(),
        0,
        "defensive server accepts exactly C"
    );
}

#[test]
fn masked_fields_do_not_generate_reports() {
    // Masking `address` hides the Trojan window entirely.
    let mut achilles = Achilles::new();
    let l = layout();
    let config = AchillesConfig {
        mask: FieldMask::by_names(&l, &["address", "value"]),
        ..AchillesConfig::verified()
    };
    let report = achilles.run(&client, &server, &l, &config);
    assert_eq!(report.trojans.len(), 0);
}
