//! Property tests spanning crates: the concrete oracles, the symbolic node
//! programs, and the wire codecs must agree with each other on random
//! inputs — this is what makes the baseline comparisons trustworthy.

use achilles_fsp::{
    client_can_generate, server_accepts, Command, FspMessage, FspServer, FspServerConfig, MAX_PATH,
};
use achilles_pbft::PbftRequest;
use achilles_solver::{Solver, TermPool};
use achilles_symvm::{Executor, ExploreConfig, Verdict};
use proptest::prelude::*;

/// Random FSP messages, biased so framing-valid messages are common.
fn fsp_message() -> impl Strategy<Value = FspMessage> {
    (
        any::<u8>(),
        prop::bool::ANY,
        any::<u16>(),
        prop::array::uniform4(any::<u8>()),
        0u16..=6,
    )
        .prop_map(|(cmd_raw, use_valid_cmd, len_raw, buf, len_small)| {
            let cmd = if use_valid_cmd {
                Command::ANALYSIS_SET[(cmd_raw % 8) as usize].code()
            } else {
                cmd_raw
            };
            // Half the messages get a small (often valid) length.
            let bb_len = if len_raw % 2 == 0 { len_small } else { len_raw };
            FspMessage {
                cmd,
                sum: 0,
                bb_key: 0,
                bb_seq: 0,
                bb_len,
                bb_pos: 0,
                buf,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fast concrete oracle and the symbolic server program agree on
    /// every concrete message.
    #[test]
    fn oracle_matches_symbolic_server(msg in fsp_message()) {
        let config = FspServerConfig::default();
        let oracle_says = server_accepts(&msg, &config);

        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let sym = msg.to_sym(&mut pool);
        let explore = ExploreConfig { recv_script: vec![sym], ..Default::default() };
        let mut exec = Executor::new(&mut pool, &mut solver, explore);
        let result = exec.run_concrete(&FspServer::new(config));
        let program_says = result.paths[0].verdict == Verdict::Accept;
        prop_assert_eq!(oracle_says, program_says, "message {:?}", msg);
    }

    /// Patched-server oracles agree with the patched symbolic server.
    #[test]
    fn patched_oracle_matches_patched_server(msg in fsp_message()) {
        let config = FspServerConfig {
            check_actual_length: true,
            reject_wildcards: true,
            ..FspServerConfig::default()
        };
        let oracle_says = server_accepts(&msg, &config);
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let sym = msg.to_sym(&mut pool);
        let explore = ExploreConfig { recv_script: vec![sym], ..Default::default() };
        let mut exec = Executor::new(&mut pool, &mut solver, explore);
        let result = exec.run_concrete(&FspServer::new(config));
        let program_says = result.paths[0].verdict == Verdict::Accept;
        prop_assert_eq!(oracle_says, program_says);
    }

    /// FSP wire encoding round-trips.
    #[test]
    fn fsp_wire_round_trip(msg in fsp_message()) {
        let wire = msg.to_wire();
        let back = FspMessage::from_wire(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Messages built by `FspMessage::request` are never Trojan: the
    /// constructor is a correct client.
    #[test]
    fn request_constructor_is_a_correct_client(
        cmd_idx in 0usize..8,
        path in prop::collection::vec(33u8..=126, 1..=MAX_PATH),
    ) {
        let msg = FspMessage::request(Command::ANALYSIS_SET[cmd_idx], &path);
        prop_assert!(server_accepts(&msg, &FspServerConfig::default()));
        prop_assert!(client_can_generate(&msg, false));
    }

    /// Any understated length turns a valid request into a Trojan.
    #[test]
    fn understated_length_is_always_trojan(
        cmd_idx in 0usize..8,
        path in prop::collection::vec(33u8..=126, 2..=MAX_PATH),
        cut in 0usize..=2,
    ) {
        let cut = cut.min(path.len() - 1);
        let mut msg = FspMessage::request(Command::ANALYSIS_SET[cmd_idx], &path);
        // Keep bb_len but terminate the path early.
        msg.buf[cut] = 0;
        prop_assert!(server_accepts(&msg, &FspServerConfig::default()));
        prop_assert!(!client_can_generate(&msg, false));
    }

    /// PBFT wire encoding round-trips and MAC corruption is always detected
    /// by the victim replica (and only by it).
    #[test]
    fn pbft_wire_and_mac_properties(
        cid in 0u16..8,
        rid in 1u16..1000,
        command in prop::array::uniform4(any::<u8>()),
        victim in 0usize..4,
    ) {
        let req = PbftRequest::correct(cid, rid, command);
        let back = PbftRequest::from_wire(&req.to_wire()).unwrap();
        prop_assert_eq!(&back, &req);
        for r in 0..4 {
            prop_assert!(req.mac_valid_for(r));
        }
        let corrupted = req.with_corrupted_mac(victim);
        for r in 0..4 {
            prop_assert_eq!(corrupted.mac_valid_for(r), r != victim);
        }
    }
}
