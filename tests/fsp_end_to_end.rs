//! Integration: FSP analysis results are injectable — symbolic findings
//! hold on the concretely deployed server, and the counting matches the
//! paper's arithmetic.

use achilles_fsp::{
    expected_length_mismatch_trojans, expected_wildcard_trojans, is_trojan, run_analysis,
    server_accepts, FspAnalysisConfig, FspMessage, FspServerConfig, FspServerRuntime, TrojanFamily,
    MAX_PATH,
};
use achilles_netsim::{Addr, SimFs};

#[test]
fn scaled_accuracy_counts_match_the_arithmetic() {
    for n_commands in [1, 2, 3] {
        let config = FspAnalysisConfig::accuracy().with_commands(n_commands);
        let result = run_analysis(&config);
        assert_eq!(
            result.trojans.len(),
            expected_length_mismatch_trojans(n_commands),
            "{n_commands} commands"
        );
        assert_eq!(result.unverified(), 0);
        assert_eq!(result.others(), 0);
    }
}

#[test]
fn wildcard_mode_finds_both_families() {
    let config = FspAnalysisConfig::wildcard().with_commands(2);
    let result = run_analysis(&config);
    assert_eq!(
        result.length_mismatches(),
        expected_length_mismatch_trojans(2)
    );
    assert_eq!(result.wildcards(), expected_wildcard_trojans(2));
    assert_eq!(result.unverified(), 0);
}

#[test]
fn every_witness_is_injectable() {
    // Each reported witness, turned into wire bytes, must be accepted by a
    // concretely deployed server and classified Trojan by the oracle.
    let config = FspAnalysisConfig::accuracy().with_commands(2);
    let result = run_analysis(&config);
    let mut server = FspServerRuntime::new(
        Addr::new("fspd"),
        SimFs::new(),
        FspServerConfig {
            commands: config.commands.clone(),
            ..FspServerConfig::default()
        },
    );
    for t in &result.trojans {
        let msg = FspMessage::from_field_values(&t.witness_fields);
        assert!(
            is_trojan(&msg, &config.server, config.client.glob_expansion),
            "oracle agrees the witness is Trojan: {msg:?}"
        );
        let before = server.accepted;
        let _ = server.handle(&msg.to_wire());
        assert_eq!(
            server.accepted,
            before + 1,
            "deployed server accepted the witness"
        );
    }
}

#[test]
fn witnesses_carry_smuggled_payload_capability() {
    // §6.3 mismatched lengths: for every reported length-mismatch Trojan,
    // the bytes after the NUL are attacker-controlled payload. Check there
    // exists a witness with a non-zero smuggled byte.
    let config = FspAnalysisConfig::accuracy().with_commands(2);
    let result = run_analysis(&config);
    let mut found_capacity = false;
    for (_t, f) in result.trojans.iter().zip(&result.families) {
        if let TrojanFamily::LengthMismatch {
            reported, actual, ..
        } = f
        {
            assert!(actual < reported);
            if reported - actual > 1 {
                found_capacity = true;
            }
        }
    }
    assert!(found_capacity, "some Trojans have room for extra payload");
}

#[test]
fn fully_patched_server_rejects_all_witnesses() {
    let config = FspAnalysisConfig::wildcard().with_commands(1);
    let result = run_analysis(&config);
    let patched = FspServerConfig {
        check_actual_length: true,
        reject_wildcards: true,
        ..FspServerConfig::default()
    };
    for t in &result.trojans {
        let msg = FspMessage::from_field_values(&t.witness_fields);
        assert!(
            !server_accepts(&msg, &patched),
            "patched server must reject the witness {msg:?}"
        );
    }
}

#[test]
fn trojan_reports_cover_every_length_combination() {
    // The 1-command accuracy run must produce one report per
    // (reported, actual) pair with actual < reported — all Σ L = 10 classes.
    let config = FspAnalysisConfig::accuracy().with_commands(1);
    let result = run_analysis(&config);
    let mut classes: Vec<(usize, usize)> = result
        .families
        .iter()
        .filter_map(|f| match f {
            TrojanFamily::LengthMismatch {
                reported, actual, ..
            } => Some((*reported, *actual)),
            _ => None,
        })
        .collect();
    classes.sort_unstable();
    classes.dedup();
    let mut expected = Vec::new();
    for reported in 1..=MAX_PATH {
        for actual in 0..reported {
            expected.push((reported, actual));
        }
    }
    assert_eq!(classes, expected);
}

#[test]
fn refinement_confirms_fsp_witnesses() {
    // §4.1 future work, implemented: take Achilles' FSP witnesses back to
    // the client *programs* under fresh exploration bounds — every witness
    // must be confirmed (no utility can emit it).
    use achilles::{refine_witness, FieldMask};
    use achilles_fsp::{FspClient, FspClientConfig};
    use achilles_solver::{Solver, TermPool};
    use achilles_symvm::ExploreConfig;

    let config = FspAnalysisConfig::accuracy().with_commands(2);
    let result = run_analysis(&config);
    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    for t in result.trojans.iter().take(8) {
        for &cmd in &config.commands {
            let client = FspClient::new(cmd, FspClientConfig::default());
            let r = refine_witness(
                &mut pool,
                &mut solver,
                &client,
                &t.witness_fields,
                &FieldMask::none(),
                &ExploreConfig::default(),
            );
            assert!(
                r.is_confirmed(),
                "utility {:?} must not generate the witness: {r:?}",
                cmd
            );
        }
    }
}

#[test]
fn refinement_refutes_valid_messages() {
    use achilles::{refine_witness, FieldMask, Refinement};
    use achilles_fsp::{Command, FspClient, FspClientConfig};
    use achilles_solver::{Solver, TermPool};
    use achilles_symvm::ExploreConfig;

    // A perfectly ordinary frm command is refuted immediately.
    let msg = FspMessage::request(Command::DelFile, b"ab");
    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    let client = FspClient::new(Command::DelFile, FspClientConfig::default());
    let r = refine_witness(
        &mut pool,
        &mut solver,
        &client,
        &msg.field_values(),
        &FieldMask::none(),
        &ExploreConfig::default(),
    );
    assert!(matches!(r, Refinement::Refuted { .. }), "{r:?}");
}

#[test]
fn a_single_bit_flip_arms_the_wildcard_trojan() {
    // The paper's §6.3 remark made concrete: "a single bit flip can convert
    // the ASCII 'j' character into '*'". A correct client sends `frm filj`;
    // one flipped bit in flight turns it into `frm fil*` — a message no
    // correct (globbing) client would ever emit, which the server happily
    // acts on.
    use achilles_fsp::{client_can_generate, Command};
    use achilles_netsim::flip_bit;

    let honest = FspMessage::request(Command::DelFile, b"filj");
    assert!(server_accepts(&honest, &FspServerConfig::default()));
    assert!(client_can_generate(&honest, true));
    assert!(!is_trojan(&honest, &FspServerConfig::default(), true));

    // Find the bit position of 'j''s 0x40 bit within the wire image.
    let wire = honest.to_wire();
    let byte_idx = wire.iter().rposition(|&b| b == b'j').unwrap();
    let corrupted_wire = flip_bit(&wire, byte_idx * 8 + 6);
    let corrupted = FspMessage::from_wire(&corrupted_wire).unwrap();
    assert_eq!(corrupted.path_as_server_sees_it(), b"fil*");
    assert!(server_accepts(&corrupted, &FspServerConfig::default()));
    assert!(!client_can_generate(&corrupted, true));
    assert!(is_trojan(&corrupted, &FspServerConfig::default(), true));
}
