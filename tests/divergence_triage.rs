//! The divergence-triage suite: multi-node targets whose replicas can
//! split silently must triage that split deterministically, shed
//! incidental witness fields without losing it, and serve it through
//! fleetd exactly as the batch campaign computes it.
//!
//! All three tests drive the `shardexec` family — three shard executors
//! applying client writes, where a forged sender identity routes a write
//! past the ownership check and leaves the shards disagreeing without any
//! crash — but only through the registry: nothing here names a
//! shardexec-specific type, so any future root-reporting target is
//! covered by pointing `TARGET` elsewhere.

use achilles::export::session_witness_record;
use achilles::{AchillesSession, SessionReport, TargetRegistry, TargetSpec};
use achilles_fleetd::{Fleetd, FleetdConfig};
use achilles_replay::{
    minimize_session_divergence, replay_session, session_from_report, FaultSchedule, ReplayVerdict,
};
use achilles_sweep::{sweep_report, CampaignConfig, ScheduleClass, SweepCache, SweepConfig};
use achilles_targets::builtin_registry;
use std::sync::Arc;

const TARGET: &str = "shardexec";

fn shardexec_spec() -> (TargetRegistry, Arc<dyn TargetSpec>) {
    let registry = builtin_registry();
    let spec = registry.get(TARGET).expect("shardexec is built in").clone();
    (registry, spec)
}

fn discover(spec: &dyn TargetSpec) -> Vec<SessionReport> {
    let reports = AchillesSession::new(spec).run_sessions();
    assert!(
        reports.iter().any(|r| !r.trojans.is_empty()),
        "shardexec discovery yields session trojans"
    );
    reports
}

/// Diverged triage is a pure function of (witness, schedule): sweeping the
/// same reports cold, forked, and at different worker counts must produce
/// bit-identical matrices — including every `diverged` row — and every
/// mode must find the silent split.
#[test]
fn diverged_matrices_are_bit_identical_across_execution_modes() {
    let (_, spec) = shardexec_spec();
    let base = CampaignConfig {
        sweep: SweepConfig::default(),
        ..CampaignConfig::default()
    };
    let mut split_seen = false;
    for report in discover(&*spec) {
        if report.trojans.is_empty() {
            continue;
        }
        let sname = format!("{TARGET}/{}", report.session);
        let cold = sweep_report(
            &*spec,
            &report,
            &base.clone().without_fork(),
            &mut SweepCache::new(),
        );
        split_seen |= cold.diverged >= 1;
        let cold_text: Vec<String> = cold.matrices.iter().map(|m| m.to_text()).collect();
        for workers in [1usize, 4] {
            let forked = sweep_report(
                &*spec,
                &report,
                &base.clone().with_workers(workers),
                &mut SweepCache::new(),
            );
            let forked_text: Vec<String> = forked.matrices.iter().map(|m| m.to_text()).collect();
            assert_eq!(
                cold_text, forked_text,
                "{sname}: diverged matrices must be bit-identical cold vs \
                 forked at workers={workers}"
            );
            assert_eq!(
                cold.diverged, forked.diverged,
                "{sname}: diverged totals match at workers={workers}"
            );
        }
    }
    assert!(
        split_seen,
        "at least one shardexec sweep classifies a schedule as Diverged"
    );
}

/// Divergence-preserving minimization: ddmin over the witness delta with
/// the split-structure oracle must shed fields, keep a field on an
/// attributed arming slot, and leave a witness that still confirms and
/// still splits the replicas along the same partition.
#[test]
fn session_minimization_preserves_the_split() {
    let (_, spec) = shardexec_spec();
    let mut minimized_any = false;
    for report in discover(&*spec) {
        for (i, trojan) in report.trojans.iter().enumerate() {
            let sname = format!("{TARGET}/{} witness {i}", report.session);
            let witness = session_from_report(&report.layouts, i, trojan)
                .expect("session layouts are wire-encodable");
            let target = spec.session_replay_target(&report.session);
            let schedule = FaultSchedule::none();
            let full = replay_session(&*target, &witness, &schedule);
            assert_eq!(full.verdict, ReplayVerdict::ConfirmedTrojan, "{sname}");
            let divergence = full
                .signature
                .divergence()
                .unwrap_or_else(|| panic!("{sname}: a confirmed shardexec trojan splits replicas"));

            let minimized = minimize_session_divergence(&*target, &witness, &schedule, &divergence);
            minimized_any = true;
            assert!(
                !minimized.essential.is_empty(),
                "{sname}: something must stay essential"
            );
            assert!(
                minimized.essential.len() <= minimized.original_delta.len(),
                "{sname}: minimization never grows the delta"
            );
            assert!(
                minimized
                    .essential
                    .iter()
                    .any(|(slot, _)| report.trojan_slots[i].contains(slot)),
                "{sname}: an essential field lives on an attributed arming \
                 slot ({:?} vs slots {:?})",
                minimized.essential,
                report.trojan_slots[i]
            );
            let kept = minimized
                .signature
                .divergence()
                .unwrap_or_else(|| panic!("{sname}: the minimized witness must still diverge"));
            assert!(
                kept.same_split(&divergence),
                "{sname}: minimization preserves the split structure \
                 ({kept:?} vs {divergence:?})"
            );
            let replayed = replay_session(&*target, &minimized.witness, &schedule);
            assert_eq!(
                replayed.verdict,
                ReplayVerdict::ConfirmedTrojan,
                "{sname}: the minimized witness still confirms"
            );
        }
    }
    assert!(minimized_any, "discovery produced at least one witness");
}

/// The resident service answers divergence queries exactly as the batch
/// campaign computes them: a full `QUERY` is bit-identical to the batch
/// matrices, and `QUERY <target> * diverged` returns precisely the
/// `diverged` cell rows — at least one, and nothing else.
#[test]
fn fleetd_serves_diverged_rows_bit_identical_to_batch() {
    let (registry, spec) = shardexec_spec();
    let discovered = discover(&*spec);

    // Batch side: full-config sweep, matrices in ingest order.
    let config = CampaignConfig::default();
    let mut cache = SweepCache::new();
    let mut batch_lines: Vec<String> = Vec::new();
    let mut batch_diverged: Vec<String> = Vec::new();
    for report in &discovered {
        let sweep = sweep_report(&*spec, report, &config, &mut cache);
        for matrix in &sweep.matrices {
            for line in matrix.to_text().lines() {
                batch_lines.push(line.to_string());
                if line.split('|').nth(1) == Some(ScheduleClass::Diverged.as_str()) {
                    batch_diverged.push(line.to_string());
                }
            }
        }
    }
    assert!(
        !batch_diverged.is_empty(),
        "the batch campaign finds diverged cells to serve"
    );

    let service = Fleetd::start(registry, FleetdConfig::default()).expect("service starts");
    assert!(service
        .handle_line(&format!("REGISTER {TARGET}"))
        .starts_with("OK "));
    for report in &discovered {
        for (i, trojan) in report.trojans.iter().enumerate() {
            let witness = session_from_report(&report.layouts, i, trojan)
                .expect("session layouts are wire-encodable");
            let record = session_witness_record(&witness.fields);
            let reply =
                service.handle_line(&format!("INGEST {TARGET}/{} {record}", report.session));
            assert!(reply.starts_with("OK "), "{reply}");
        }
    }
    assert_eq!(service.handle_line("DRAIN"), "OK drained");

    let full = service.handle_line(&format!("QUERY {TARGET}"));
    let mut full_lines = full.lines().map(str::to_string);
    assert!(full_lines.next().expect("status").starts_with("OK "));
    assert_eq!(
        full_lines.collect::<Vec<_>>(),
        batch_lines,
        "full QUERY is bit-identical to the batch matrices"
    );

    let filtered = service.handle_line(&format!("QUERY {TARGET} * diverged"));
    let mut rows = filtered.lines().map(str::to_string);
    assert!(rows.next().expect("status").starts_with("OK "));
    let cells: Vec<String> = rows
        .filter(|line| !line.starts_with("witness ") && !line.starts_with("baseline "))
        .collect();
    assert_eq!(
        cells, batch_diverged,
        "the diverged filter returns exactly the batch's diverged rows"
    );
}
