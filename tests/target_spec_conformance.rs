//! The `TargetSpec` conformance suite: every protocol in the built-in
//! registry must clear the same bar, with no protocol-specific code in
//! this file.
//!
//! For each registered spec, the contract is:
//!
//! 1. **Discovery** — an [`AchillesSession`] under the spec's default
//!    configuration discovers at least one Trojan (and exactly
//!    [`TargetSpec::expected_trojans`] when the spec declares the count),
//!    with every witness verified against the client predicate.
//! 2. **Concrete confirmation** — 100% of the discovered Trojans replay to
//!    [`ReplayVerdict::ConfirmedTrojan`] against the spec's
//!    [`replay_target`](achilles::TargetSpec::replay_target) deployment.
//! 3. **Corpus round-trip** — the confirmed witnesses survive
//!    serialization: reloading the corpus text reproduces the entries and
//!    makes re-validation fully incremental (everything skipped).
//! 4. **Codec coherence** — every witness encodes to wire bytes and
//!    decodes back to the same field values through the spec's codec
//!    hooks, and spec/target metadata agree.
//!
//! Specs that declare [`TargetSpec::sessions`] additionally clear the
//! session contract: ≥ 1 session Trojan discovered through
//! [`AchillesSession::run_sessions`] (exact when the session declares a
//! count), slot attribution present, 100% concrete confirmation under
//! [`FaultSchedule::none`], a session corpus round-trip with fully
//! incremental re-validation — and a **fault-schedule sensitivity
//! contract**: sweeping the witness's schedule space must find at least
//! one arming and one disarming schedule, and every schedule that drops
//! an arming slot must classify as `Disarmed` (dropping the message that
//! carries the poison defuses the Trojan, by construction).
//!
//! Session targets that **report state roots**
//! ([`ReplayTarget::reports_state_roots`](achilles::ReplayTarget::reports_state_roots))
//! additionally clear the divergence contract: the all-benign fault-free
//! session leaves every node's root in agreement (`root:agree:` in the
//! effects), sweeping a confirmed Trojan finds at least one `Diverged`
//! schedule, and every schedule that drops an arming slot restores
//! agreement — removing the poison removes the split.
//!
//! Specs whose replay targets are **snapshottable**
//! ([`ReplayTarget::boot_fork`](achilles::ReplayTarget::boot_fork)) also
//! clear the snapshot contract: snapshot → mutate via one delivery →
//! restore → re-deliver must yield the identical outcome and
//! [`CrashSignature`] as a fresh boot — the law the sweep fork-server's
//! correctness rests on.
//!
//! Adding a protocol crate + one registry registration automatically puts
//! it under this contract — that is the point of the API.

use achilles::{fields_to_wire, AchillesSession, InjectionOutcome, TargetSpec};
use achilles_replay::{
    replay, replay_session, validate_spec, validate_spec_sessions, ConcreteWitness, CrashSignature,
    FaultPlan, FaultSchedule, ReplayCorpus, ReplayVerdict, SessionValidateConfig, SessionWitness,
    ValidateConfig,
};
use achilles_targets::builtin_registry;

#[test]
fn registry_contains_the_shipped_protocols() {
    let registry = builtin_registry();
    for expected in ["fsp", "pbft", "paxos", "twopc", "gossip", "shardexec"] {
        assert!(
            registry.get(expected).is_some(),
            "{expected} missing from the built-in registry"
        );
    }
}

#[test]
fn every_registered_spec_meets_the_conformance_contract() {
    let registry = builtin_registry();
    assert!(!registry.is_empty());
    for spec in registry.iter() {
        conformance(&**spec);
    }
}

#[test]
fn every_declared_session_meets_the_session_contract() {
    let registry = builtin_registry();
    let mut specs_with_sessions = 0usize;
    for spec in registry.iter() {
        if spec.sessions().is_empty() {
            continue;
        }
        specs_with_sessions += 1;
        session_conformance(&**spec);
    }
    assert!(
        specs_with_sessions >= 2,
        "fsp and twopc both declare sessions"
    );
}

#[test]
fn every_snapshottable_target_honors_the_snapshot_contract() {
    // Snapshot → mutate via one delivery → restore → re-deliver must be
    // indistinguishable from a fresh boot, for outcome and signature
    // alike. The benign message doubles as the probe witness so the
    // contract costs no symbolic discovery.
    let registry = builtin_registry();
    let mut snapshottable = 0usize;
    for spec in registry.iter() {
        let name = spec.name();
        let target = spec.replay_target();
        let Some(mut session) = target.boot_fork() else {
            continue;
        };
        snapshottable += 1;
        let fields = target.benign_fields();
        let wire = fields_to_wire(&target.layout(), &fields)
            .unwrap_or_else(|e| panic!("{name}: benign message encodes: {e:?}"));
        let witness = ConcreteWitness {
            index: 0,
            server_path_id: 0,
            fields,
            wire: wire.clone(),
        };
        let fresh = replay(&*target, &witness, &FaultPlan::none());

        let snap = session.snapshot();
        let mut scratch = InjectionOutcome::default();
        session.deliver(&(wire.clone(), true), &mut scratch);
        session.finish(&mut scratch);
        session.restore(&snap);
        let mut outcome = InjectionOutcome::default();
        session.deliver(&(wire, true), &mut outcome);
        session.finish(&mut outcome);
        assert_eq!(
            outcome, fresh.outcome,
            "{name}: restored delivery must match a fresh boot's outcome"
        );
        assert_eq!(
            CrashSignature::new(target.name(), fresh.verdict, outcome.effects.clone()),
            fresh.signature,
            "{name}: restored delivery must reproduce the fresh signature"
        );
    }
    assert!(
        snapshottable >= 6,
        "all six shipped protocols expose snapshottable replay targets \
         (found {snapshottable})"
    );
}

#[test]
fn every_snapshottable_session_target_honors_the_snapshot_contract() {
    // The session form of the contract: per-slot benign messages stand in
    // for the witness, compared against replay_session under the
    // fault-free schedule.
    let registry = builtin_registry();
    let mut snapshottable = 0usize;
    for spec in registry.iter() {
        let name = spec.name();
        for declared in spec.sessions() {
            let sname = format!("{name}/{}", declared.name);
            let target = spec.session_replay_target(&declared.name);
            let Some(mut session) = target.boot_fork() else {
                continue;
            };
            snapshottable += 1;
            let layouts = target.slot_layouts();
            let fields: Vec<Vec<u64>> = (0..layouts.len())
                .map(|slot| target.slot_benign_fields(slot))
                .collect();
            let wire: Vec<Vec<u8>> = fields
                .iter()
                .zip(&layouts)
                .map(|(f, layout)| {
                    fields_to_wire(layout, f)
                        .unwrap_or_else(|e| panic!("{sname}: benign slot encodes: {e:?}"))
                })
                .collect();
            let witness = SessionWitness {
                index: 0,
                server_path_id: 0,
                fields,
                wire: wire.clone(),
            };
            let fresh = replay_session(&*target, &witness, &FaultSchedule::none());

            // Mutate the booted session through the whole benign
            // sequence, then restore to boot state and replay it for
            // real.
            let snap = session.snapshot();
            let mut scratch = InjectionOutcome::default();
            for slot_wire in &wire {
                session.deliver(&(slot_wire.clone(), true), &mut scratch);
            }
            session.finish(&mut scratch);
            session.restore(&snap);
            let mut outcome = InjectionOutcome::default();
            for slot_wire in &wire {
                session.deliver(&(slot_wire.clone(), true), &mut outcome);
            }
            session.finish(&mut outcome);
            assert_eq!(
                outcome, fresh.outcome,
                "{sname}: restored session must match a fresh boot's outcome"
            );
            let mut effects = outcome.effects.clone();
            effects.extend(
                fresh
                    .trojan_slots
                    .iter()
                    .map(|s| format!("trojan-slot:{s}")),
            );
            assert_eq!(
                CrashSignature::for_session(target.name(), fresh.verdict, witness.slots(), effects),
                fresh.signature,
                "{sname}: restored session must reproduce the fresh signature"
            );
        }
    }
    assert!(
        snapshottable >= 3,
        "fsp, twopc, and shardexec session targets are snapshottable \
         (found {snapshottable})"
    );
}

#[test]
fn every_root_reporting_session_target_honors_the_divergence_contract() {
    // Multi-node deployments that observe per-node state roots must
    // (a) agree on the all-benign fault-free session, (b) split under at
    // least one fault schedule of a confirmed Trojan sweep, and (c) return
    // to agreement on every schedule that drops an arming slot — the
    // poison, not the fault machinery, is what divides the replicas.
    let registry = builtin_registry();
    let mut root_reporting = 0usize;
    for spec in registry.iter() {
        let name = spec.name();
        let reporting: Vec<String> = spec
            .sessions()
            .iter()
            .filter(|d| spec.session_replay_target(&d.name).reports_state_roots())
            .map(|d| d.name.clone())
            .collect();
        if reporting.is_empty() {
            continue;
        }
        root_reporting += 1;

        // --- (a) Fault-free benign agreement. ------------------------------
        for session in &reporting {
            let sname = format!("{name}/{session}");
            let target = spec.session_replay_target(session);
            let layouts = target.slot_layouts();
            let fields: Vec<Vec<u64>> = (0..layouts.len())
                .map(|slot| target.slot_benign_fields(slot))
                .collect();
            let wire: Vec<Vec<u8>> = fields
                .iter()
                .zip(&layouts)
                .map(|(f, layout)| {
                    fields_to_wire(layout, f)
                        .unwrap_or_else(|e| panic!("{sname}: benign slot encodes: {e:?}"))
                })
                .collect();
            let witness = SessionWitness {
                index: 0,
                server_path_id: 0,
                fields,
                wire,
            };
            let benign = replay_session(&*target, &witness, &FaultSchedule::none());
            assert!(
                !benign.signature.diverged(),
                "{sname}: the all-benign fault-free session must not diverge"
            );
            assert!(
                benign
                    .outcome
                    .effects
                    .iter()
                    .any(|e| e.starts_with("root:agree:")),
                "{sname}: a root-reporting target must report agreement \
                 explicitly (effects: {:?})",
                benign.outcome.effects
            );
        }

        // --- (b) + (c): sweep a real Trojan. -------------------------------
        let sweeps = achilles_sweep::run_campaign(
            &**spec,
            &achilles_sweep::CampaignConfig::default(),
            &mut achilles_sweep::SweepCache::new(),
        );
        for sweep in &sweeps {
            if !reporting.contains(&sweep.session) {
                continue;
            }
            let sname = format!("{name}/{}", sweep.session);
            assert!(
                sweep.diverged >= 1,
                "{sname}: at least one schedule must leave the replicas \
                 silently split (Diverged)"
            );
            assert!(
                sweep
                    .matrices
                    .iter()
                    .any(|m| m.baseline_signature.diverged()),
                "{sname}: a confirmed Trojan's fault-free baseline records \
                 the split it causes"
            );
            for matrix in &sweep.matrices {
                for cell in &matrix.cells {
                    let drops_arming_slot =
                        cell.schedule.slots.iter().enumerate().any(|(slot, fault)| {
                            fault.drop && matrix.baseline_trojan_slots.contains(&slot)
                        });
                    if drops_arming_slot {
                        assert!(
                            !cell.signature.diverged(),
                            "{sname}: dropping the arming slot must restore \
                             replica agreement (schedule {:?})",
                            achilles_sweep::schedule_token(&cell.schedule),
                        );
                    }
                }
            }
        }
    }
    assert!(
        root_reporting >= 1,
        "shardexec reports state roots (found {root_reporting})"
    );
}

fn session_conformance(spec: &dyn TargetSpec) {
    let name = spec.name();
    let declared = spec.sessions();
    let reports = AchillesSession::new(spec).run_sessions();
    assert_eq!(reports.len(), declared.len(), "{name}: one report/session");
    for (session, report) in declared.iter().zip(&reports) {
        let sname = format!("{name}/{}", session.name);
        assert_eq!(report.session, session.name, "{sname}: provenance");
        assert!(
            !report.trojans.is_empty(),
            "{sname}: every declared session must host at least one Trojan"
        );
        if let Some(expected) = session.expected_trojans {
            assert_eq!(report.trojans.len(), expected, "{sname}: expected count");
        }
        assert_eq!(
            report.trojans.len(),
            report.trojan_slots.len(),
            "{sname}: slot attribution present for every report"
        );
        assert!(
            report.trojan_slots.iter().all(|s| !s.is_empty()),
            "{sname}: every report names its Trojan slots"
        );

        // --- Concrete confirmation under the fault-free schedule. ----------
        let mut corpus = ReplayCorpus::new();
        let summary = validate_spec_sessions(
            spec,
            report,
            &mut corpus,
            &SessionValidateConfig {
                schedule: FaultSchedule::none(),
                ..SessionValidateConfig::default()
            },
        );
        assert_eq!(
            summary.replayed,
            report.trojans.len(),
            "{sname}: all replay"
        );
        assert_eq!(
            summary.confirmed,
            report.trojans.len(),
            "{sname}: 100% of session Trojans must confirm concretely"
        );
        assert!(summary
            .results
            .iter()
            .all(|r| r.verdict == ReplayVerdict::ConfirmedTrojan));
        // The concrete slot attribution overlaps the symbolic one.
        for (result, slots) in summary.results.iter().zip(&report.trojan_slots) {
            assert!(
                result.trojan_slots.iter().any(|s| slots.contains(s)),
                "{sname}: concrete and symbolic slot attribution agree on \
                 at least one slot ({:?} vs {:?})",
                result.trojan_slots,
                slots
            );
        }

        // --- Session corpus round-trip + incremental re-validation. --------
        let mut reloaded =
            ReplayCorpus::from_text(&corpus.to_text()).expect("a saved corpus parses back");
        assert_eq!(
            reloaded.entries(),
            corpus.entries(),
            "{sname}: session corpus text round-trip"
        );
        let second = validate_spec_sessions(
            spec,
            report,
            &mut reloaded,
            &SessionValidateConfig::default(),
        );
        assert_eq!(second.replayed, 0, "{sname}: reloaded corpus skips all");
        assert_eq!(
            second.skipped_known,
            report.trojans.len(),
            "{sname}: incremental session re-validation"
        );
    }

    // --- Fault-schedule sensitivity contract. -------------------------------
    let sweeps = achilles_sweep::run_campaign(
        spec,
        &achilles_sweep::CampaignConfig::default(),
        &mut achilles_sweep::SweepCache::new(),
    );
    assert_eq!(sweeps.len(), declared.len(), "{name}: one sweep/session");
    for sweep in &sweeps {
        let sname = format!("{name}/{}", sweep.session);
        assert_eq!(
            sweep.confirmed_fault_free, sweep.discovered,
            "{sname}: every session Trojan confirms under the fault-free baseline"
        );
        assert!(
            sweep.armed + sweep.diverged >= 1,
            "{sname}: some schedule must leave the Trojan armed (or armed \
             and diverging, for root-reporting targets)"
        );
        assert!(
            sweep.disarmed >= 1,
            "{sname}: some schedule must disarm the Trojan"
        );
        for matrix in &sweep.matrices {
            for cell in &matrix.cells {
                // Drop-the-arming-slot disarms: a schedule whose only
                // faults are drops, at least one of them on a slot the
                // baseline attributes the Trojan to, removes the poison
                // from the wire and must classify as Disarmed.
                let drops_arming_slot =
                    cell.schedule.slots.iter().enumerate().any(|(slot, fault)| {
                        fault.drop && matrix.baseline_trojan_slots.contains(&slot)
                    });
                if drops_arming_slot {
                    assert_eq!(
                        cell.class,
                        achilles_sweep::ScheduleClass::Disarmed,
                        "{sname}: dropping the arming slot must disarm \
                         (schedule {:?})",
                        achilles_sweep::schedule_token(&cell.schedule),
                    );
                }
            }
        }
    }
}

fn conformance(spec: &dyn TargetSpec) {
    let name = spec.name();

    // --- Metadata sanity. --------------------------------------------------
    assert!(!name.is_empty());
    assert!(!spec.local_state_modes().is_empty(), "{name}: no modes");
    assert!(!spec.clients().is_empty(), "{name}: no client programs");
    let target = spec.replay_target();
    assert_eq!(target.name(), name, "{name}: spec/target name mismatch");
    assert_eq!(
        target.layout().fields().len(),
        spec.layout().fields().len(),
        "{name}: spec/target layout mismatch"
    );
    assert!(
        target.client_generable(&target.benign_fields()),
        "{name}: the benign message must be client-generable"
    );

    // --- 1. Discovery. -----------------------------------------------------
    let report = AchillesSession::new(spec).run();
    assert!(
        !report.trojans.is_empty(),
        "{name}: every registered target must host at least one Trojan"
    );
    if let Some(expected) = spec.expected_trojans() {
        assert_eq!(report.trojans.len(), expected, "{name}: expected count");
    }
    for t in &report.trojans {
        assert!(t.verified, "{name}: unverified witness (false positive?)");
        assert!(!spec.classify(t).is_empty(), "{name}: unclassifiable");
    }

    // --- 4. Codec coherence (checked before replay mutates anything). ------
    for t in &report.trojans {
        let wire = spec
            .encode(&t.witness_fields)
            .unwrap_or_else(|e| panic!("{name}: witness must encode: {e:?}"));
        let back = spec
            .decode(&wire)
            .unwrap_or_else(|e| panic!("{name}: wire must decode: {e:?}"));
        assert_eq!(back, t.witness_fields, "{name}: codec round-trip");
    }

    // --- 2. Concrete confirmation. -----------------------------------------
    let mut corpus = ReplayCorpus::new();
    let summary = validate_spec(
        spec,
        &report.trojans,
        &mut corpus,
        &ValidateConfig::default(),
    );
    assert_eq!(summary.replayed, report.trojans.len(), "{name}: all replay");
    assert_eq!(
        summary.confirmed,
        report.trojans.len(),
        "{name}: 100% of symbolic Trojans must confirm concretely"
    );
    assert!(summary
        .results
        .iter()
        .all(|r| r.verdict == ReplayVerdict::ConfirmedTrojan));
    assert!(corpus.distinct_signatures() >= 1, "{name}: no signatures");

    // --- 3. Corpus round-trip. ---------------------------------------------
    let mut reloaded =
        ReplayCorpus::from_text(&corpus.to_text()).expect("a saved corpus parses back");
    assert_eq!(
        reloaded.entries(),
        corpus.entries(),
        "{name}: corpus text round-trip"
    );
    let second = validate_spec(
        spec,
        &report.trojans,
        &mut reloaded,
        &ValidateConfig::default(),
    );
    assert_eq!(second.replayed, 0, "{name}: reloaded corpus skips all");
    assert_eq!(
        second.skipped_known,
        report.trojans.len(),
        "{name}: incremental re-validation"
    );
}
