//! The `TargetSpec` conformance suite: every protocol in the built-in
//! registry must clear the same bar, with no protocol-specific code in
//! this file.
//!
//! For each registered spec, the contract is:
//!
//! 1. **Discovery** — an [`AchillesSession`] under the spec's default
//!    configuration discovers at least one Trojan (and exactly
//!    [`TargetSpec::expected_trojans`] when the spec declares the count),
//!    with every witness verified against the client predicate.
//! 2. **Concrete confirmation** — 100% of the discovered Trojans replay to
//!    [`ReplayVerdict::ConfirmedTrojan`] against the spec's
//!    [`replay_target`](achilles::TargetSpec::replay_target) deployment.
//! 3. **Corpus round-trip** — the confirmed witnesses survive
//!    serialization: reloading the corpus text reproduces the entries and
//!    makes re-validation fully incremental (everything skipped).
//! 4. **Codec coherence** — every witness encodes to wire bytes and
//!    decodes back to the same field values through the spec's codec
//!    hooks, and spec/target metadata agree.
//!
//! Adding a protocol crate + one registry registration automatically puts
//! it under this contract — that is the point of the API.

use achilles::{AchillesSession, TargetSpec};
use achilles_replay::{validate_spec, ReplayCorpus, ReplayVerdict, ValidateConfig};
use achilles_targets::builtin_registry;

#[test]
fn registry_contains_the_shipped_protocols() {
    let registry = builtin_registry();
    for expected in ["fsp", "pbft", "paxos", "twopc"] {
        assert!(
            registry.get(expected).is_some(),
            "{expected} missing from the built-in registry"
        );
    }
}

#[test]
fn every_registered_spec_meets_the_conformance_contract() {
    let registry = builtin_registry();
    assert!(!registry.is_empty());
    for spec in registry.iter() {
        conformance(&**spec);
    }
}

fn conformance(spec: &dyn TargetSpec) {
    let name = spec.name();

    // --- Metadata sanity. --------------------------------------------------
    assert!(!name.is_empty());
    assert!(!spec.local_state_modes().is_empty(), "{name}: no modes");
    assert!(!spec.clients().is_empty(), "{name}: no client programs");
    let target = spec.replay_target();
    assert_eq!(target.name(), name, "{name}: spec/target name mismatch");
    assert_eq!(
        target.layout().fields().len(),
        spec.layout().fields().len(),
        "{name}: spec/target layout mismatch"
    );
    assert!(
        target.client_generable(&target.benign_fields()),
        "{name}: the benign message must be client-generable"
    );

    // --- 1. Discovery. -----------------------------------------------------
    let report = AchillesSession::new(spec).run();
    assert!(
        !report.trojans.is_empty(),
        "{name}: every registered target must host at least one Trojan"
    );
    if let Some(expected) = spec.expected_trojans() {
        assert_eq!(report.trojans.len(), expected, "{name}: expected count");
    }
    for t in &report.trojans {
        assert!(t.verified, "{name}: unverified witness (false positive?)");
        assert!(!spec.classify(t).is_empty(), "{name}: unclassifiable");
    }

    // --- 4. Codec coherence (checked before replay mutates anything). ------
    for t in &report.trojans {
        let wire = spec
            .encode(&t.witness_fields)
            .unwrap_or_else(|e| panic!("{name}: witness must encode: {e:?}"));
        let back = spec
            .decode(&wire)
            .unwrap_or_else(|e| panic!("{name}: wire must decode: {e:?}"));
        assert_eq!(back, t.witness_fields, "{name}: codec round-trip");
    }

    // --- 2. Concrete confirmation. -----------------------------------------
    let mut corpus = ReplayCorpus::new();
    let summary = validate_spec(
        spec,
        &report.trojans,
        &mut corpus,
        &ValidateConfig::default(),
    );
    assert_eq!(summary.replayed, report.trojans.len(), "{name}: all replay");
    assert_eq!(
        summary.confirmed,
        report.trojans.len(),
        "{name}: 100% of symbolic Trojans must confirm concretely"
    );
    assert!(summary
        .results
        .iter()
        .all(|r| r.verdict == ReplayVerdict::ConfirmedTrojan));
    assert!(corpus.distinct_signatures() >= 1, "{name}: no signatures");

    // --- 3. Corpus round-trip. ---------------------------------------------
    let mut reloaded = ReplayCorpus::from_text(&corpus.to_text());
    assert_eq!(
        reloaded.entries(),
        corpus.entries(),
        "{name}: corpus text round-trip"
    );
    let second = validate_spec(
        spec,
        &report.trojans,
        &mut reloaded,
        &ValidateConfig::default(),
    );
    assert_eq!(second.replayed, 0, "{name}: reloaded corpus skips all");
    assert_eq!(
        second.skipped_known,
        report.trojans.len(),
        "{name}: incremental re-validation"
    );
}
