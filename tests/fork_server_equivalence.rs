//! The fork-server differential suite: snapshot-resumed replay must be
//! bit-identical to cold-boot replay for every session-bearing spec in
//! the registry, at every worker count, under full and capped schedule
//! budgets.
//!
//! The sweep fork-server (`achilles_replay::replay_session_forked`)
//! executes a delivery-prefix trie: cells sharing a delivery prefix
//! resume from a snapshot of the deepest shared ancestor instead of
//! cold-booting. Speed is only admissible if it buys nothing else —
//! every cell's (schedule, class, signature) row, every matrix, and
//! every campaign total must match the per-cell cold-boot path exactly.
//! Symbolic discovery runs once per spec; each comparison sweeps the
//! same reports with fresh caches so every cell is genuinely replayed.

use achilles::{AchillesSession, SessionReport, TargetSpec};
use achilles_replay::{session_from_report, ForkServer};
use achilles_sweep::{
    schedule_token, sweep_report, sweep_witness_on, CampaignConfig, ScheduleClass, SchedulePlanner,
    SessionSweep, SweepCache, SweepConfig,
};
use achilles_targets::builtin_registry;

/// The scheduling-independent fingerprint of one sweep: every matrix's
/// (schedule, class, signature) rows in plan order, plus the baseline
/// signature rows.
fn sweep_key(sweep: &SessionSweep) -> Vec<Vec<(String, ScheduleClass, String)>> {
    sweep
        .matrices
        .iter()
        .map(|m| {
            let mut rows: Vec<(String, ScheduleClass, String)> = vec![(
                "baseline".to_string(),
                ScheduleClass::Armed,
                m.baseline_signature.to_line(),
            )];
            rows.extend(
                m.cells
                    .iter()
                    .map(|c| (schedule_token(&c.schedule), c.class, c.signature.to_line())),
            );
            rows
        })
        .collect()
}

/// Sweeps `report` cold and forked at workers ∈ {1, 4} under `config`,
/// asserting all four runs produce identical matrices and that the fork
/// runs actually saved boots.
fn assert_fork_equivalence(
    spec: &dyn TargetSpec,
    report: &SessionReport,
    sweep: SweepConfig,
    label: &str,
) {
    let name = format!("{}/{} [{label}]", spec.name(), report.session);
    let base = CampaignConfig {
        sweep,
        ..CampaignConfig::default()
    };
    let cold = sweep_report(
        spec,
        report,
        &base.clone().without_fork(),
        &mut SweepCache::new(),
    );
    assert_eq!(
        cold.fork.boots_saved(),
        0,
        "{name}: cold replay boots every cell"
    );
    for workers in [1usize, 4] {
        let forked = sweep_report(
            spec,
            report,
            &base.clone().with_workers(workers),
            &mut SweepCache::new(),
        );
        assert_eq!(
            sweep_key(&cold),
            sweep_key(&forked),
            "{name}: fork-server matrices must be bit-identical to \
             cold boots at workers={workers}"
        );
        assert_eq!(
            (
                cold.armed,
                cold.diverged,
                cold.disarmed,
                cold.masked,
                cold.new_signature
            ),
            (
                forked.armed,
                forked.diverged,
                forked.disarmed,
                forked.masked,
                forked.new_signature
            ),
            "{name}: campaign totals match at workers={workers}"
        );
        assert_eq!(
            cold.confirmed_fault_free, forked.confirmed_fault_free,
            "{name}: baseline confirmations match at workers={workers}"
        );
        assert!(
            forked.boots_saved() > 0,
            "{name}: prefix-sharing schedules must save boots at \
             workers={workers} ({} cells, {} boots)",
            forked.fork.plans,
            forked.fork.boots,
        );
        assert_eq!(
            forked.fork.plans,
            forked.replayed.saturating_sub(forked.discovered),
            "{name}: every fresh non-baseline cell goes through the trie"
        );
    }
}

#[test]
fn fork_server_is_bit_identical_to_cold_boot_for_every_session_spec() {
    let registry = builtin_registry();
    let mut session_specs = 0usize;
    for spec in registry.iter() {
        if spec.sessions().is_empty() {
            continue;
        }
        session_specs += 1;
        // Discovery once per spec; every comparison sweeps the same
        // reports.
        let reports = AchillesSession::new(&**spec).run_sessions();
        for report in &reports {
            // Full budget, and a deliberately tight cell budget — the
            // truncated plan must trie-share and classify identically
            // too.
            assert_fork_equivalence(&**spec, report, SweepConfig::default(), "full");
            let capped = SweepConfig {
                max_schedules: 24,
                ..SweepConfig::default()
            };
            assert_fork_equivalence(&**spec, report, capped, "capped");
        }
    }
    assert!(
        session_specs >= 2,
        "fsp and twopc both declare sessions (found {session_specs})"
    );
}

/// A *persistent* fork-server (fleetd's executor mode) keeps one live
/// session across witnesses, restoring the boot snapshot between them.
/// Restore-to-boot must be indistinguishable from a fresh boot: sweeping
/// every witness of a report through one shared server must produce the
/// matrices detached per-witness servers produce, while booting the
/// deployment only once.
#[test]
fn persistent_fork_server_reuse_across_witnesses_is_bit_identical() {
    let registry = builtin_registry();
    let mut reused = 0usize;
    for spec in registry.iter() {
        for report in AchillesSession::new(&**spec).run_sessions() {
            if report.trojans.len() < 2 {
                continue;
            }
            let target = spec.session_replay_target(&report.session);
            if target.boot_fork().is_none() {
                continue;
            }
            reused += 1;
            let scope = format!("{}/{}", spec.name(), report.session);
            let planner = SchedulePlanner::new(SweepConfig::quick());
            let witnesses: Vec<_> = report
                .trojans
                .iter()
                .enumerate()
                .map(|(i, trojan)| {
                    session_from_report(&report.layouts, i, trojan)
                        .expect("session layouts are wire-encodable")
                })
                .collect();

            let mut shared = ForkServer::new(&*target);
            let mut shared_cache = SweepCache::new();
            let mut shared_matrices = Vec::new();
            for witness in &witnesses {
                let (matrix, _) =
                    sweep_witness_on(&mut shared, &scope, witness, &planner, &mut shared_cache);
                shared_matrices.push(matrix.to_text());
            }
            assert_eq!(
                shared.lifetime_stats().boots,
                1,
                "{scope}: one boot serves every witness"
            );
            assert!(shared.lifetime_stats().snapshot_restores > 0);

            for (witness, shared_text) in witnesses.iter().zip(&shared_matrices) {
                let mut detached = ForkServer::detached(&*target, 1, true);
                let (matrix, _) = sweep_witness_on(
                    &mut detached,
                    &scope,
                    witness,
                    &planner,
                    &mut SweepCache::new(),
                );
                assert_eq!(
                    &matrix.to_text(),
                    shared_text,
                    "{scope}: restore-to-boot must equal fresh boot"
                );
            }
        }
    }
    assert!(
        reused > 0,
        "at least one snapshot-capable session spec has multiple witnesses"
    );
}
