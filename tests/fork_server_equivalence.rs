//! The fork-server differential suite: snapshot-resumed replay must be
//! bit-identical to cold-boot replay for every session-bearing spec in
//! the registry, at every worker count, under full and capped schedule
//! budgets.
//!
//! The sweep fork-server (`achilles_replay::replay_session_forked`)
//! executes a delivery-prefix trie: cells sharing a delivery prefix
//! resume from a snapshot of the deepest shared ancestor instead of
//! cold-booting. Speed is only admissible if it buys nothing else —
//! every cell's (schedule, class, signature) row, every matrix, and
//! every campaign total must match the per-cell cold-boot path exactly.
//! Symbolic discovery runs once per spec; each comparison sweeps the
//! same reports with fresh caches so every cell is genuinely replayed.

use achilles::{AchillesSession, SessionReport, TargetSpec};
use achilles_sweep::{
    schedule_token, sweep_report, CampaignConfig, ScheduleClass, SessionSweep, SweepCache,
    SweepConfig,
};
use achilles_targets::builtin_registry;

/// The scheduling-independent fingerprint of one sweep: every matrix's
/// (schedule, class, signature) rows in plan order, plus the baseline
/// signature rows.
fn sweep_key(sweep: &SessionSweep) -> Vec<Vec<(String, ScheduleClass, String)>> {
    sweep
        .matrices
        .iter()
        .map(|m| {
            let mut rows: Vec<(String, ScheduleClass, String)> = vec![(
                "baseline".to_string(),
                ScheduleClass::Armed,
                m.baseline_signature.to_line(),
            )];
            rows.extend(
                m.cells
                    .iter()
                    .map(|c| (schedule_token(&c.schedule), c.class, c.signature.to_line())),
            );
            rows
        })
        .collect()
}

/// Sweeps `report` cold and forked at workers ∈ {1, 4} under `config`,
/// asserting all four runs produce identical matrices and that the fork
/// runs actually saved boots.
fn assert_fork_equivalence(
    spec: &dyn TargetSpec,
    report: &SessionReport,
    sweep: SweepConfig,
    label: &str,
) {
    let name = format!("{}/{} [{label}]", spec.name(), report.session);
    let base = CampaignConfig {
        sweep,
        ..CampaignConfig::default()
    };
    let cold = sweep_report(
        spec,
        report,
        &base.clone().without_fork(),
        &mut SweepCache::new(),
    );
    assert_eq!(
        cold.fork.boots_saved(),
        0,
        "{name}: cold replay boots every cell"
    );
    for workers in [1usize, 4] {
        let forked = sweep_report(
            spec,
            report,
            &base.clone().with_workers(workers),
            &mut SweepCache::new(),
        );
        assert_eq!(
            sweep_key(&cold),
            sweep_key(&forked),
            "{name}: fork-server matrices must be bit-identical to \
             cold boots at workers={workers}"
        );
        assert_eq!(
            (cold.armed, cold.disarmed, cold.masked, cold.new_signature),
            (
                forked.armed,
                forked.disarmed,
                forked.masked,
                forked.new_signature
            ),
            "{name}: campaign totals match at workers={workers}"
        );
        assert_eq!(
            cold.confirmed_fault_free, forked.confirmed_fault_free,
            "{name}: baseline confirmations match at workers={workers}"
        );
        assert!(
            forked.boots_saved() > 0,
            "{name}: prefix-sharing schedules must save boots at \
             workers={workers} ({} cells, {} boots)",
            forked.fork.plans,
            forked.fork.boots,
        );
        assert_eq!(
            forked.fork.plans,
            forked.replayed.saturating_sub(forked.discovered),
            "{name}: every fresh non-baseline cell goes through the trie"
        );
    }
}

#[test]
fn fork_server_is_bit_identical_to_cold_boot_for_every_session_spec() {
    let registry = builtin_registry();
    let mut session_specs = 0usize;
    for spec in registry.iter() {
        if spec.sessions().is_empty() {
            continue;
        }
        session_specs += 1;
        // Discovery once per spec; every comparison sweeps the same
        // reports.
        let reports = AchillesSession::new(&**spec).run_sessions();
        for report in &reports {
            // Full budget, and a deliberately tight cell budget — the
            // truncated plan must trie-share and classify identically
            // too.
            assert_fork_equivalence(&**spec, report, SweepConfig::default(), "full");
            let capped = SweepConfig {
                max_schedules: 24,
                ..SweepConfig::default()
            };
            assert_fork_equivalence(&**spec, report, capped, "capped");
        }
    }
    assert!(
        session_specs >= 2,
        "fsp and twopc both declare sessions (found {session_specs})"
    );
}
