//! Integration: the two baselines (classic symbolic execution, black-box
//! fuzzing) and the a-posteriori differencing agree with Achilles on *what*
//! is Trojan while demonstrating the paper's efficiency gaps.

use achilles::{a_posteriori_diff, classic_symex, prepare_client, FieldMask, Optimizations};
use achilles_fsp::{
    expected_length_mismatch_trojans, extract_client_predicate, is_trojan, run_analysis,
    FspAnalysisConfig, FspMessage, FspServer, FspServerConfig,
};
use achilles_fuzz::{expectation, run_campaign, run_e2e_campaign, FuzzConfig};
use achilles_solver::{Solver, TermPool};
use achilles_symvm::{ExploreConfig, SymMessage};

#[test]
fn classic_symex_finds_everything_but_cannot_tell() {
    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    let server_msg = SymMessage::fresh(&mut pool, &achilles_fsp::layout(), "msg");
    let mut sc = FspServerConfig::default();
    sc.commands.truncate(1);
    let result = classic_symex(
        &mut pool,
        &mut solver,
        &FspServer::new(sc.clone()),
        &server_msg,
        &ExploreConfig::default(),
        &FieldMask::none(),
        25,
    );
    assert_eq!(result.accepting_paths, 14, "Σ_L (L+1) accepting paths");
    // Candidates mix Trojan and valid messages on the same paths.
    let mut trojan_classes = std::collections::HashSet::new();
    let mut false_positives = 0usize;
    for cand in &result.candidates {
        let msg = FspMessage::from_field_values(&cand.fields);
        if is_trojan(&msg, &sc, false) {
            let reported = msg.bb_len as usize;
            let actual = msg.buf[..reported]
                .iter()
                .position(|&b| b == 0)
                .unwrap_or(reported);
            trojan_classes.insert((reported, actual));
        } else {
            false_positives += 1;
        }
    }
    assert_eq!(trojan_classes.len(), expected_length_mismatch_trojans(1));
    assert!(false_positives > 0, "the sifting problem of Table 1");
}

#[test]
fn a_posteriori_equals_incremental() {
    let incremental = run_analysis(&FspAnalysisConfig::accuracy().with_commands(2));

    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    let config = FspAnalysisConfig::accuracy().with_commands(2);
    let client = extract_client_predicate(
        &mut pool,
        &mut solver,
        &config.commands,
        &config.client,
        &ExploreConfig::default(),
    );
    let server_msg = SymMessage::fresh(&mut pool, &achilles_fsp::layout(), "msg");
    let prepared = prepare_client(
        &mut pool,
        &mut solver,
        client,
        server_msg,
        FieldMask::none(),
        Optimizations::none(),
    );
    let ap = a_posteriori_diff(
        &mut pool,
        &mut solver,
        &FspServer::new(config.server.clone()),
        &prepared,
        &ExploreConfig::default(),
    );
    assert_eq!(ap.trojans.len(), incremental.trojans.len());
    // Same Trojan classes.
    let classes = |trojans: &[achilles::TrojanReport]| {
        let mut v: Vec<(u8, u16, usize)> = trojans
            .iter()
            .map(|t| {
                let m = FspMessage::from_field_values(&t.witness_fields);
                let reported = m.bb_len as usize;
                let actual = m.buf[..reported]
                    .iter()
                    .position(|&b| b == 0)
                    .unwrap_or(reported);
                (m.cmd, m.bb_len, actual)
            })
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(classes(&ap.trojans), classes(&incremental.trojans));
}

#[test]
fn fuzzing_finds_nothing_in_bounded_budgets() {
    // The campaign is deterministic per seed; this one is known to draw no
    // Trojan in 300k tests (the expectation is ~0.09, so some seeds do).
    let report = run_campaign(&FuzzConfig {
        budget_tests: 300_000,
        seed: 0xF022_ED12,
        ..FuzzConfig::default()
    });
    assert_eq!(report.trojans_found, 0);
    let e2e = run_e2e_campaign(&FuzzConfig {
        budget_tests: 5_000,
        ..FuzzConfig::default()
    });
    assert_eq!(e2e.trojans_found, 0);
    assert_eq!(e2e.tests_run, 5_000);
}

#[test]
fn fuzzing_expectation_is_negligible_in_achilles_window() {
    let achilles_run = run_analysis(&FspAnalysisConfig::accuracy().with_commands(2));
    let window = achilles_run.client_time + achilles_run.preprocess_time + achilles_run.server_time;
    // Even at an (optimistic) million tests per minute, the expected number
    // of Trojans fuzzing finds in Achilles' runtime window is ~zero.
    let e = expectation(1_000_000.0, false);
    let expected_in_window = e.expected_per_hour / 3600.0 * window.as_secs_f64();
    assert!(expected_in_window < 0.01, "expected {expected_in_window}");
    assert_eq!(
        achilles_run.trojans.len(),
        expected_length_mismatch_trojans(2)
    );
}
