//! The fleetd service differential suite: the resident campaign service
//! must answer exactly what the batch pipeline computes, and must replay
//! exactly what changed — nothing on a no-op re-ingest, one witness's
//! cells on a one-witness ingest, one target's scopes on an epoch bump.
//!
//! Every test drives the service through the same `handle_line` strings
//! the socket transports feed it, so the protocol surface is exercised
//! end to end; replay counters are asserted (not just results), because
//! "incremental" is a claim about work performed, not answers given.

use achilles::export::session_witness_record;
use achilles::{AchillesSession, SessionReport, TargetRegistry, TargetSpec};
use achilles_fleetd::{Fleetd, FleetdConfig, WitnessStore};
use achilles_replay::session_from_report;
use achilles_sweep::{sweep_report, CampaignConfig, SchedulePlanner, SweepCache, SweepConfig};
use achilles_targets::builtin_registry;
use std::path::PathBuf;
use std::sync::Arc;

const TARGET: &str = "gossip";

fn gossip_spec() -> (TargetRegistry, Arc<dyn TargetSpec>) {
    let registry = builtin_registry();
    let spec = registry.get(TARGET).expect("gossip is built in").clone();
    (registry, spec)
}

/// Discovery once, shared shape for every test: the session reports and
/// the canonical witness records in batch order.
fn discover(spec: &dyn TargetSpec) -> Vec<(SessionReport, Vec<String>)> {
    AchillesSession::new(spec)
        .run_sessions()
        .into_iter()
        .map(|report| {
            let records = report
                .trojans
                .iter()
                .enumerate()
                .map(|(i, trojan)| {
                    let witness = session_from_report(&report.layouts, i, trojan)
                        .expect("session layouts are wire-encodable");
                    session_witness_record(&witness.fields)
                })
                .collect();
            (report, records)
        })
        .collect()
}

/// The batch pipeline's answer: every matrix's `to_text` lines, deduped
/// by record in first-seen order (the service stores one witness per
/// canonical record).
fn batch_query_lines(
    spec: &dyn TargetSpec,
    discovered: &[(SessionReport, Vec<String>)],
    sweep: SweepConfig,
) -> Vec<String> {
    let config = CampaignConfig {
        sweep,
        ..CampaignConfig::default()
    };
    let mut cache = SweepCache::new();
    let mut lines = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (report, records) in discovered {
        let sweep = sweep_report(spec, report, &config, &mut cache);
        for (matrix, record) in sweep.matrices.iter().zip(records) {
            if seen.insert(record.clone()) {
                lines.extend(matrix.to_text().lines().map(str::to_string));
            }
        }
    }
    lines
}

/// Ingests every discovered record through the protocol, asserting each
/// reply, and drains. Returns the unique record count.
fn ingest_all(service: &Fleetd, discovered: &[(SessionReport, Vec<String>)]) -> usize {
    assert!(service
        .handle_line(&format!("REGISTER {TARGET}"))
        .starts_with("OK "));
    let mut unique = std::collections::HashSet::new();
    for (report, records) in discovered {
        for record in records {
            let reply =
                service.handle_line(&format!("INGEST {TARGET}/{} {record}", report.session));
            assert!(reply.starts_with("OK "), "ingest {record}: {reply}");
            if !unique.insert(record.clone()) {
                assert!(reply.contains("dup"), "re-ingest must dedupe: {reply}");
            }
        }
    }
    assert_eq!(service.handle_line("DRAIN"), "OK drained");
    unique.len()
}

fn query_lines(service: &Fleetd) -> Vec<String> {
    let reply = service.handle_line(&format!("QUERY {TARGET}"));
    let mut lines = reply.lines().map(str::to_string);
    let status = lines.next().expect("status line");
    assert!(status.starts_with("OK "), "{status}");
    lines.collect()
}

/// Derives a *new* canonical record by nudging `base`'s fields until the
/// session's layouts accept a value not already in `known` (field widths
/// vary per slot, so the hunt tries small deltas everywhere).
fn mutate_record(shard: &achilles_fleetd::SessionShard, known: &[String], base: &str) -> String {
    let mut fields = shard
        .witness_from_record(base)
        .expect("stored record round-trips")
        .1
        .fields;
    for slot in 0..fields.len() {
        for field in 0..fields[slot].len() {
            for delta in 1..=3u64 {
                let original = fields[slot][field];
                fields[slot][field] = original.wrapping_add(delta);
                let record = session_witness_record(&fields);
                if shard.witness_from_record(&record).is_ok() && !known.contains(&record) {
                    return record;
                }
                fields[slot][field] = original;
            }
        }
    }
    panic!("no wire-encodable mutation found");
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("achilles-fleetd-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn service_answers_bit_identical_to_the_batch_campaign() {
    let (registry, spec) = gossip_spec();
    let discovered = discover(&*spec);
    assert!(
        discovered.iter().any(|(_, r)| !r.is_empty()),
        "gossip discovery yields session trojans"
    );
    let expected = batch_query_lines(&*spec, &discovered, SweepConfig::quick());

    let service = Fleetd::start(registry, FleetdConfig::default().quick()).expect("service starts");
    let unique = ingest_all(&service, &discovered);
    assert_eq!(
        query_lines(&service),
        expected,
        "queried matrices must be bit-identical to the batch campaign"
    );

    let stats = service.stats();
    assert_eq!(stats.ingested, unique);
    assert_eq!(stats.results, unique);
    assert!(stats.replays > 0);
    assert!(
        stats.boots_saved() > 0,
        "batched executors share fork-server boots ({} plans, {} boots)",
        stats.fork_plans,
        stats.boots
    );
    assert_eq!(stats.stale_results, 0);

    // Witness-id and class filters are restrictions of the same rows.
    let one = service.handle_line(&format!("QUERY {TARGET} 0"));
    assert!(one.starts_with("OK "));
    let armed = service.handle_line(&format!("QUERY {TARGET} * armed"));
    for line in armed.lines().skip(1) {
        let is_header = line.starts_with("witness ") || line.starts_with("baseline ");
        assert!(
            is_header || line.split('|').nth(1) == Some("armed"),
            "class filter leaked {line:?}"
        );
    }
}

#[test]
fn noop_reingest_and_recampaign_replay_nothing() {
    let (registry, spec) = gossip_spec();
    let discovered = discover(&*spec);
    let service = Fleetd::start(registry, FleetdConfig::default().quick()).expect("service starts");
    ingest_all(&service, &discovered);
    let replays = service.stats().replays;
    assert!(replays > 0);

    // Re-ingesting the whole corpus is a no-op: every record is a dup.
    let mut seen = std::collections::HashSet::new();
    for (report, records) in &discovered {
        for record in records {
            let reply =
                service.handle_line(&format!("INGEST {TARGET}/{} {record}", report.session));
            if seen.insert(record.clone()) {
                assert!(reply.contains("dup"), "{reply}");
            }
        }
    }
    assert_eq!(service.handle_line("DRAIN"), "OK drained");
    assert_eq!(
        service.stats().replays,
        replays,
        "no-op re-ingest replays nothing"
    );
    assert_eq!(service.stats().duplicates, seen.len());

    // A re-campaign over an unchanged cache completes warm, inline.
    let reply = service.handle_line(&format!("RECAMPAIGN {TARGET}"));
    assert!(reply.starts_with("OK "), "{reply}");
    assert!(
        reply.contains("enqueued=0"),
        "warm re-campaign enqueues nothing: {reply}"
    );
    assert_eq!(service.handle_line("DRAIN"), "OK drained");
    let stats = service.stats();
    assert_eq!(stats.replays, replays, "warm re-campaign replays nothing");
    assert!(stats.cache_hits > 0);
}

#[test]
fn single_witness_ingest_replays_exactly_its_cells() {
    let (registry, spec) = gossip_spec();
    let discovered = discover(&*spec);
    let service = Fleetd::start(registry, FleetdConfig::default().quick()).expect("service starts");
    ingest_all(&service, &discovered);
    let replays = service.stats().replays;
    let results = service.stats().results;

    // Derive a *new* witness by nudging a stored one's fields until the
    // spec's layouts accept it (field widths vary per slot).
    let (session, base) = discovered
        .iter()
        .find_map(|(report, records)| records.first().map(|r| (report.session.clone(), r.clone())))
        .expect("at least one witness");
    let mut store = WitnessStore::new();
    store.register(&*spec);
    let shard = store
        .target(TARGET)
        .and_then(|t| t.session(&session))
        .expect("session shard");
    let planner = SchedulePlanner::new(SweepConfig::quick());
    let known: Vec<String> = discovered.iter().flat_map(|(_, rs)| rs.clone()).collect();
    let mutated = mutate_record(shard, &known, &base);
    let witness = shard
        .witness_from_record(&mutated)
        .expect("mutation validated")
        .1;
    let expected = 1 + planner.plan(&witness).len(); // baseline + every planned cell

    let reply = service.handle_line(&format!("INGEST {TARGET}/{session} {mutated}"));
    assert!(reply.starts_with("OK "), "{reply}");
    assert!(reply.contains(&format!("cells={expected}")), "{reply}");
    assert_eq!(service.handle_line("DRAIN"), "OK drained");
    let stats = service.stats();
    assert_eq!(
        stats.replays,
        replays + expected,
        "one new witness replays exactly its own cells"
    );
    assert_eq!(stats.results, results + 1);
}

#[test]
fn epoch_bump_invalidates_and_rederives_exactly_the_target() {
    let (registry, spec) = gossip_spec();
    let discovered = discover(&*spec);
    let service = Fleetd::start(registry, FleetdConfig::default().quick()).expect("service starts");
    let unique = ingest_all(&service, &discovered);
    let replays = service.stats().replays;
    let before = query_lines(&service);

    let reply = service.handle_line(&format!("EPOCH {TARGET}"));
    assert!(reply.starts_with("OK "), "{reply}");
    assert!(
        !reply.contains("invalidated=0"),
        "epoch bump drops cells: {reply}"
    );
    assert_eq!(service.handle_line("DRAIN"), "OK drained");

    let stats = service.stats();
    assert_eq!(
        stats.replays,
        replays * 2,
        "re-deriving the whole target repeats exactly the original replays"
    );
    assert_eq!(stats.results, unique);
    assert_eq!(
        query_lines(&service),
        before,
        "replay is deterministic: re-derived matrices match"
    );
}

#[test]
fn backpressure_answers_busy_at_the_cell_bound() {
    let (registry, spec) = gossip_spec();
    let discovered = discover(&*spec);
    let (session, base) = discovered
        .iter()
        .find_map(|(report, records)| records.first().map(|r| (report.session.clone(), r.clone())))
        .expect("at least one witness");

    // Size the bound to exactly one witness's campaign, so the first
    // ingest fits and the second (a synthesized sibling) must be refused
    // until a drain.
    let mut store = WitnessStore::new();
    store.register(&*spec);
    let shard = store
        .target(TARGET)
        .and_then(|t| t.session(&session))
        .expect("session shard");
    let known: Vec<String> = discovered.iter().flat_map(|(_, rs)| rs.clone()).collect();
    let records = [base.clone(), mutate_record(shard, &known, &base)];
    let planner = SchedulePlanner::new(SweepConfig::quick());
    let bound = records
        .iter()
        .map(|r| {
            let witness = shard.witness_from_record(r).expect("record parses").1;
            1 + planner.plan(&witness).len()
        })
        .max()
        .expect("two records");

    // shards = 0: no executors — work sits queued until pump(), so the
    // BUSY window is deterministic.
    let config = FleetdConfig::default()
        .quick()
        .shards(0)
        .max_queued_cells(bound);
    let service = Fleetd::start(registry, config).expect("service starts");
    assert!(service
        .handle_line(&format!("REGISTER {TARGET}"))
        .starts_with("OK "));

    let first = service.handle_line(&format!("INGEST {TARGET}/{session} {}", records[0]));
    assert!(first.starts_with("OK "), "{first}");
    let second = service.handle_line(&format!("INGEST {TARGET}/{session} {}", records[1]));
    assert!(
        second.starts_with("BUSY "),
        "queue at bound must refuse: {second}"
    );
    assert_eq!(service.stats().busy_rejections, 1);
    assert_eq!(
        service.stats().witnesses,
        1,
        "a refused ingest stores nothing"
    );

    assert_eq!(service.handle_line("DRAIN"), "OK drained");
    let retry = service.handle_line(&format!("INGEST {TARGET}/{session} {}", records[1]));
    assert!(
        retry.starts_with("OK "),
        "drained queue accepts the retry: {retry}"
    );
    assert_eq!(service.handle_line("DRAIN"), "OK drained");
    assert_eq!(service.stats().results, 2);
}

#[test]
fn shutdown_drains_persists_and_the_restart_is_replay_free() {
    let dir = temp_dir("restart");
    let (registry, spec) = gossip_spec();
    let discovered = discover(&*spec);

    let first = Fleetd::start(
        registry,
        FleetdConfig::default().quick().state_dir(dir.clone()),
    )
    .expect("service starts");
    let unique = ingest_all(&first, &discovered);
    let expected = query_lines(&first);
    let replays = first.stats().replays;
    assert!(replays > 0);
    assert_eq!(first.handle_line("SHUTDOWN"), "OK bye");
    drop(first);

    // The durable cache is a complete, loadable batch-format artifact.
    let cache = SweepCache::load(&dir.join(format!("{TARGET}.sweep")))
        .expect("persisted sweep cache loads");
    assert!(!cache.is_empty());

    // A second instance over the same state dir re-derives everything
    // from the durable cache: results present, zero replays performed.
    let second = Fleetd::start(
        builtin_registry(),
        FleetdConfig::default().quick().state_dir(dir.clone()),
    )
    .expect("restart loads state");
    assert_eq!(second.handle_line("DRAIN"), "OK drained");
    let stats = second.stats();
    assert_eq!(stats.results, unique, "restart republishes every result");
    assert_eq!(stats.replays, 0, "restart is warm: zero replays");
    assert_eq!(
        query_lines(&second),
        expected,
        "restart answers identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_are_counted_per_class() {
    let (registry, _spec) = gossip_spec();
    let service = Fleetd::start(registry, FleetdConfig::default().quick()).expect("service starts");

    // One malformed line per parse class (plus a well-formed but
    // impossible request, counted as `rejected`), each answered ERR.
    let cases: &[(&str, &str, u64)] = &[
        ("FROBNICATE", "unknown-verb", 2),
        ("FROBNICATE again", "unknown-verb", 2),
        ("HELLO now", "arity", 1),
        ("INGEST gossip 1,2", "scope", 1),
        ("QUERY gossip x", "witness-id", 1),
        ("QUERY gossip * bogus", "schedule-class", 1),
        ("", "empty", 1),
        ("QUERY unregistered-target", "rejected", 1),
    ];
    for (line, _, _) in cases {
        let reply = service.handle_line(line);
        assert!(reply.starts_with("ERR "), "{line:?}: {reply}");
    }

    let reply = service.handle_line("METRICS");
    assert!(reply.starts_with("OK "), "{reply}");
    let count = |class: &str| -> u64 {
        let needle = format!("achilles_fleetd_errors_total{{class=\"{class}\"}} ");
        reply
            .lines()
            .find_map(|l| l.strip_prefix(&needle))
            .map(|v| v.parse().expect("counter value"))
            .unwrap_or(0)
    };
    for (line, class, expected) in cases {
        assert_eq!(count(class), *expected, "{line:?} counts under {class:?}");
    }
    // A well-formed, successful request counts no error class.
    assert!(service.handle_line("HELLO").starts_with("OK "));
}

#[test]
fn metrics_snapshot_is_framed_sectioned_and_covers_the_stack() {
    let (registry, spec) = gossip_spec();
    let discovered = discover(&*spec);
    let service = Fleetd::start(registry, FleetdConfig::default().quick()).expect("service starts");
    ingest_all(&service, &discovered);

    let reply = service.handle_line("METRICS");
    let mut lines = reply.lines();
    let status = lines.next().expect("status line");
    assert!(status.starts_with("OK "), "{status}");
    let framed: usize = status
        .split_whitespace()
        .nth(1)
        .expect("frame count")
        .parse()
        .expect("frame count is numeric");
    let payload: Vec<&str> = lines.collect();
    assert_eq!(framed, payload.len(), "frame count matches payload");

    // Sections: `# deterministic` first, `# wall` second, each sorted.
    let det_at = payload
        .iter()
        .position(|l| *l == "# deterministic")
        .expect("deterministic section header");
    let wall_at = payload
        .iter()
        .position(|l| *l == "# wall")
        .expect("wall section header");
    assert!(det_at < wall_at, "deterministic section renders first");
    for section in [&payload[det_at + 1..wall_at], &payload[wall_at + 1..]] {
        let mut sorted = section.to_vec();
        sorted.sort_unstable();
        assert_eq!(section, &sorted[..], "series sort within their section");
    }

    // The snapshot is rich: solver, shared-cache, fork, sweep, queue, and
    // latency series all present, ≥ 25 distinct series in total.
    let series: Vec<&str> = payload
        .iter()
        .copied()
        .filter(|l| !l.starts_with('#'))
        .collect();
    assert!(
        series.len() >= 25,
        "expected ≥ 25 series, got {}: {series:#?}",
        series.len()
    );
    for prefix in [
        "achilles_solver_",
        "achilles_shared_cache_",
        "achilles_fork_",
        "achilles_sweep_",
        "achilles_fleetd_queue_depth_cells{shard=\"0\"}",
        "achilles_fleetd_request_latency_ns",
        "achilles_fleetd_requests_total{verb=\"INGEST\"}",
    ] {
        assert!(
            series.iter().any(|l| l.starts_with(prefix)),
            "no series under {prefix:?}"
        );
    }

    // STATS stays the bit-compatible one-line form next to METRICS.
    let stats = service.handle_line("STATS");
    assert!(stats.starts_with("OK targets="), "{stats}");
    assert_eq!(stats.lines().count(), 1, "STATS is one line");
}
